#!/usr/bin/env python
"""Validate metrics JSONL files and bench manifests against their schemas.

Usage::

    PYTHONPATH=src python scripts/check_metrics_schema.py FILE [FILE ...]

Five file kinds are recognized:

- **JSONL event streams** as produced by ``repro.obs.JsonlSink`` (the
  CLI's ``--metrics-out``, the benchmark harness's session sink, or any
  observer-equipped run) — validated line by line against
  :data:`repro.obs.schema.EVENT_SCHEMAS` (including the ``bench.run`` /
  ``bench.summary`` mirror events);
- **run manifests** (``BENCH_<n>.json`` or any JSON object tagged
  ``"schema": "repro.bench.manifest"``) — validated by
  :func:`repro.bench.validate_manifest_file`;
- **telemetry exports** (JSON objects tagged ``"schema":
  "repro.obs.telemetry"``, as written by ``repro serve-batch
  --telemetry-out``) — windows and alerts validated against the
  ``telemetry.window`` / ``telemetry.alert`` event schemas by
  :func:`repro.obs.telemetry.validate_export`;
- **explain reports** (JSON objects tagged ``"schema":
  "repro.obs.explain"``, as written by ``repro explain analyze
  --json``) — the flat summary re-validated as an ``explain.report``
  event and the totals/spans/per-vertex rows checked by
  :func:`repro.obs.schema.validate_explain_report`;
- **lint reports** (JSON objects tagged ``"schema": "repro.lint"``, as
  written by ``repro lint --format json``) — findings array and run
  summary checked by :func:`repro.lint.validate_lint_report`.

See ``docs/observability.md`` for the event field tables and
``docs/benchmarks.md`` for the manifest format.

Exit status: 0 if every file validates, 1 otherwise (all errors are
printed, not just the first file's).
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.obs.schema import validate_jsonl
except ImportError:  # direct invocation without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs.schema import validate_jsonl

from repro.bench.manifest import MANIFEST_SCHEMA, manifest_index, validate_manifest_file
from repro.lint import LINT_SCHEMA, validate_lint_report
from repro.obs.schema import EXPLAIN_SCHEMA, validate_explain_report
from repro.obs.telemetry import TELEMETRY_SCHEMA, validate_export


def _is_single_object_with_tag(path: Path, tag: str) -> bool:
    """True when ``path`` parses as one JSON object carrying ``tag``
    (JSONL streams never do — every line is its own object)."""
    try:
        head = path.read_text(encoding="utf-8")
    except OSError:
        return False
    head = head.lstrip()
    return head.startswith("{") and f'"{tag}"' in head and "\n{" not in head.rstrip()


def is_manifest(path: Path) -> bool:
    """Manifest detection: the BENCH_<n>.json name, or the schema tag."""
    if manifest_index(path) is not None:
        return True
    return _is_single_object_with_tag(path, MANIFEST_SCHEMA)


def is_telemetry_export(path: Path) -> bool:
    """Telemetry-export detection: the ``repro.obs.telemetry`` tag."""
    return _is_single_object_with_tag(path, TELEMETRY_SCHEMA)


def is_explain_report(path: Path) -> bool:
    """Explain-report detection: the ``repro.obs.explain`` tag."""
    return _is_single_object_with_tag(path, EXPLAIN_SCHEMA)


def is_lint_report(path: Path) -> bool:
    """Lint-report detection: the ``repro.lint`` tag (the baseline file's
    ``repro.lint.baseline`` tag does not match — the closing quote is
    part of the probe)."""
    return _is_single_object_with_tag(path, LINT_SCHEMA)


def validate_lint_report_file(path: Path) -> list[str]:
    import json

    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable lint report: {exc}"]
    return validate_lint_report(payload)


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for name in argv:
        path = Path(name)
        if not path.is_file():
            print(f"{name}: no such file", file=sys.stderr)
            failed = True
            continue
        if is_manifest(path):
            errors = validate_manifest_file(path)
            kind = "manifest"
        elif is_telemetry_export(path):
            errors = validate_export(path)
            kind = "telemetry"
        elif is_explain_report(path):
            errors = validate_explain_report(path)
            kind = "explain"
        elif is_lint_report(path):
            errors = validate_lint_report_file(path)
            kind = "lint"
        else:
            errors = validate_jsonl(path)
            kind = "events"
        if errors:
            failed = True
            for error in errors:
                print(f"{name}: {error}", file=sys.stderr)
        else:
            print(f"{name}: ok ({kind})")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
