#!/usr/bin/env python
"""Validate metrics JSONL files against the repro.obs event schema.

Usage::

    PYTHONPATH=src python scripts/check_metrics_schema.py FILE [FILE ...]

Each file must be a JSONL event stream as produced by
``repro.obs.JsonlSink`` (the CLI's ``--metrics-out``, the benchmark
harness's session sink, or any observer-equipped run).  The schema is
the single source of truth in :data:`repro.obs.schema.EVENT_SCHEMAS`;
see ``docs/observability.md`` for the derived field tables.

Exit status: 0 if every file validates, 1 otherwise (all errors are
printed, not just the first file's).
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.obs.schema import validate_jsonl
except ImportError:  # direct invocation without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs.schema import validate_jsonl


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for name in argv:
        path = Path(name)
        if not path.is_file():
            print(f"{name}: no such file", file=sys.stderr)
            failed = True
            continue
        errors = validate_jsonl(path)
        if errors:
            failed = True
            for error in errors:
                print(f"{name}: {error}", file=sys.stderr)
        else:
            print(f"{name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
