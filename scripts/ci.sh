#!/usr/bin/env sh
# CI entry point: tier-1 suite + the fault-injection suite, each under a
# global wall-clock cap (coreutils `timeout`, so a wedged supervisor or a
# leaked worker process fails the build instead of hanging it).
#
# Usage: scripts/ci.sh            (from the repository root)
#   TIER1_TIMEOUT / FAULTS_TIMEOUT / OBS_TIMEOUT / BENCH_TIMEOUT /
#   LINT_TIMEOUT / CHAOS_TIMEOUT override the caps (seconds).

set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

TIER1_TIMEOUT="${TIER1_TIMEOUT:-900}"
FAULTS_TIMEOUT="${FAULTS_TIMEOUT:-300}"
OBS_TIMEOUT="${OBS_TIMEOUT:-120}"
BENCH_TIMEOUT="${BENCH_TIMEOUT:-600}"
LINT_TIMEOUT="${LINT_TIMEOUT:-120}"
CHAOS_TIMEOUT="${CHAOS_TIMEOUT:-300}"

echo "==> static analysis (cap: ${LINT_TIMEOUT}s)"
# AST invariant checkers (docs/static-analysis.md): schema drift,
# unseeded randomness, budget polls, Matcher protocol, CLI docs, plus
# the flow-aware checks.  Baseline-aware: findings grandfathered in
# .lint-baseline.json are suppressed, stale entries fail the build.
timeout --kill-after=30 "$LINT_TIMEOUT" \
    python -m repro lint --format text --jobs 2 \
    --baseline .lint-baseline.json

echo "==> static analysis, strict flow checks (cap: ${LINT_TIMEOUT}s)"
# The flow checkers guard the bug classes that silently corrupt a
# reproduction's numbers (unmetered search, nondeterministic
# comparisons, fork corruption, schema drift at emit sites); they run
# again with no baseline so they can never be grandfathered away.
timeout --kill-after=30 "$LINT_TIMEOUT" \
    python -m repro lint --format text \
    --select FRK001,SCH002,DET002,BUD002

echo "==> tier-1 suite (cap: ${TIER1_TIMEOUT}s)"
timeout --kill-after=30 "$TIER1_TIMEOUT" \
    python -m pytest -x -q -m "not faults"

echo "==> fault-injection suite (cap: ${FAULTS_TIMEOUT}s)"
timeout --kill-after=30 "$FAULTS_TIMEOUT" \
    python -m pytest -x -q -m faults

echo "==> chaos smoke (cap: ${CHAOS_TIMEOUT}s)"
# Seeded end-to-end fault sweep (docs/robustness.md#the-chaos-harness):
# every site x kind scenario must recover to the exact fault-free
# answer. Exit code is the gate; the payload goes to stdout for triage.
timeout --kill-after=30 "$CHAOS_TIMEOUT" \
    python -m repro chaos --seed 0 --workers 2

echo "==> metrics schema round-trip (cap: ${OBS_TIMEOUT}s)"
# Emit a real metrics stream through the CLI, then validate it against
# the repro.obs event schema (docs/observability.md).
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
timeout --kill-after=30 "$OBS_TIMEOUT" sh -ec "
    python -m repro generate dataset yeast '$OBS_TMP/yeast.graph' >/dev/null
    python -m repro generate queries '$OBS_TMP/yeast.graph' '$OBS_TMP/q' \
        --size 8 --count 1 --seed 7 >/dev/null
    python -m repro match \"\$(ls '$OBS_TMP'/q/*.graph | head -1)\" \
        '$OBS_TMP/yeast.graph' --limit 1000 --count-only \
        --metrics-out '$OBS_TMP/metrics.jsonl' >/dev/null
    python scripts/check_metrics_schema.py '$OBS_TMP/metrics.jsonl'
"

echo "==> batch serving smoke (cap: ${OBS_TIMEOUT}s)"
# Round-trip the serving layer (docs/serving.md): two rounds of the same
# tiny batch through `repro serve-batch` must produce warm-cache hits
# (hit-rate > 0), no failures, a schema-valid metrics sidecar, and a
# telemetry summary with windowed latency percentiles and hit-rate
# (docs/observability.md#live-telemetry).
timeout --kill-after=30 "$OBS_TIMEOUT" sh -ec "
    python -m repro serve-batch '$OBS_TMP/yeast.graph' '$OBS_TMP/q' \
        --limit 1000 --count-only --rounds 2 \
        --metrics-out '$OBS_TMP/serve_metrics.jsonl' \
        --telemetry-out '$OBS_TMP/serve_telemetry.json' > '$OBS_TMP/serve.json'
    python scripts/check_metrics_schema.py '$OBS_TMP/serve_metrics.jsonl' \
        '$OBS_TMP/serve_telemetry.json'
    python - '$OBS_TMP/serve.json' <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload[\"failed\"] == 0, payload
assert payload[\"cache\"][\"hit_rate\"] > 0, payload[\"cache\"]
assert payload[\"per_round\"][-1][\"cache_misses\"] == 0, payload[\"per_round\"]
telemetry = payload[\"telemetry\"]
assert telemetry[\"cache_hit_rate\"] > 0, telemetry
assert telemetry[\"p95_seconds\"] > 0, telemetry
assert telemetry[\"requests\"] > 0 and telemetry[\"errors\"] == 0, telemetry
EOF
"

echo "==> dynamic smoke (cap: ${OBS_TIMEOUT}s)"
# Dynamic graphs and continuous queries (docs/serving.md): a scripted
# delta sequence through `repro update` must stream the exact
# appeared/disappeared embedding sets, pass --cross-validate (the
# incremental candidate space is compared bit-for-bit against a cold
# rebuild after every batch), and emit a schema-valid metrics sidecar.
timeout --kill-after=30 "$OBS_TIMEOUT" sh -ec "
    python - '$OBS_TMP' <<'EOF'
import json, sys
from pathlib import Path
from repro.graph import Graph
from repro.graph.io import write_cfl
tmp = Path(sys.argv[1])
write_cfl(Graph(labels=['A', 'B', 'B'], edges=[(0, 1)]), tmp / 'dyn_data.graph')
write_cfl(Graph(labels=['A', 'B'], edges=[(0, 1)]), tmp / 'dyn_query.graph')
lines = [
    json.dumps({'op': 'insert-edge', 'u': 0, 'v': 2}),
    json.dumps([{'op': 'delete-edge', 'u': 0, 'v': 1}]),
]
(tmp / 'dyn_updates.jsonl').write_text('\n'.join(lines) + '\n')
EOF
    python -m repro update '$OBS_TMP/dyn_data.graph' '$OBS_TMP/dyn_updates.jsonl' \
        --queries '$OBS_TMP/dyn_query.graph' --cross-validate \
        --metrics-out '$OBS_TMP/dyn_metrics.jsonl' > '$OBS_TMP/dyn.json'
    python scripts/check_metrics_schema.py '$OBS_TMP/dyn_metrics.jsonl'
    python - '$OBS_TMP/dyn.json' <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload[\"graph_version\"] == 2, payload
assert payload[\"cross_validated\"], payload
batches = payload[\"batches\"]
first = [(e[\"kind\"], tuple(e[\"embedding\"])) for e in batches[0][\"events\"]]
second = [(e[\"kind\"], tuple(e[\"embedding\"])) for e in batches[1][\"events\"]]
assert first == [('appeared', (0, 2))], first
assert second == [('disappeared', (0, 1))], second
assert payload[\"standing\"][\"dyn_query.graph\"] == [[0, 2]], payload[\"standing\"]
assert all(b[\"cache_invalidated\"] == 0 for b in batches), batches
EOF
"

echo "==> telemetry smoke (cap: ${OBS_TIMEOUT}s)"
# End-to-end observability round-trip (docs/observability.md): a traced
# batch run must yield (a) a trace listing and a renderable span tree
# via `repro trace show`, (b) windowed percentiles/hit-rate via
# `repro top` with a deliberately unmeetable p95 SLO firing an ALERT,
# and (c) zero-overhead invariance when metrics are disabled.
timeout --kill-after=30 "$OBS_TIMEOUT" sh -ec "
    python -m repro serve-batch '$OBS_TMP/yeast.graph' '$OBS_TMP/q' \
        --limit 1000 --count-only --rounds 2 --window 1 \
        --metrics-out '$OBS_TMP/telemetry_events.jsonl' >/dev/null
    python -m repro trace show '$OBS_TMP/telemetry_events.jsonl' \
        | grep -q 't000001'
    python -m repro trace show '$OBS_TMP/telemetry_events.jsonl' \
        --trace t000001 | grep -q 'status=ok'
    python -m repro top '$OBS_TMP/telemetry_events.jsonl' \
        --window 1 --slo-p95 0.0000001 > '$OBS_TMP/top.txt'
    grep -q 'ALERT' '$OBS_TMP/top.txt'
    grep -q 'p95' '$OBS_TMP/top.txt'
    python -m pytest -q tests/test_obs.py -k ZeroOverhead
"

echo "==> explain smoke (cap: ${OBS_TIMEOUT}s)"
# Post-run forensics round-trip (docs/explain.md): EXPLAIN ANALYZE a
# seed query, validate the JSON report as the fourth schema-checked
# file kind, and self-diff it — a report diffed against itself must
# classify zero differences, so the --gate exit code is the assertion.
timeout --kill-after=30 "$OBS_TIMEOUT" sh -ec "
    python -m repro explain analyze \"\$(ls '$OBS_TMP'/q/*.graph | head -1)\" \
        '$OBS_TMP/yeast.graph' --limit 1000 \
        --json '$OBS_TMP/explain.json' >/dev/null
    python scripts/check_metrics_schema.py '$OBS_TMP/explain.json'
    python -m repro explain diff '$OBS_TMP/explain.json' \
        '$OBS_TMP/explain.json' --gate \
        | grep -q '0 per-vertex difference(s), 0 regression(s)'
"

echo "==> perf gate: smoke bench vs BENCH_0.json (cap: ${BENCH_TIMEOUT}s)"
# Re-run the smoke-profile benchmark, write a fresh manifest, validate
# both against the manifest schema, then diff: deterministic counters
# (recursive calls, candidate sizes, solved counts) must not regress
# beyond threshold vs the committed baseline; wall clock never gates
# (docs/benchmarks.md).
timeout --kill-after=30 "$BENCH_TIMEOUT" sh -ec "
    python -m repro bench run --profile smoke --figures fig10 \
        --out '$OBS_TMP' --metrics-out '$OBS_TMP/bench_events.jsonl' --quiet
    python scripts/check_metrics_schema.py BENCH_0.json \
        '$OBS_TMP/BENCH_0.json' '$OBS_TMP/bench_events.jsonl'
    python -m repro bench compare BENCH_0.json '$OBS_TMP/BENCH_0.json' --gate
"

echo "==> CI green"
