#!/usr/bin/env sh
# CI entry point: tier-1 suite + the fault-injection suite, each under a
# global wall-clock cap (coreutils `timeout`, so a wedged supervisor or a
# leaked worker process fails the build instead of hanging it).
#
# Usage: scripts/ci.sh            (from the repository root)
#   TIER1_TIMEOUT / FAULTS_TIMEOUT override the caps (seconds).

set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

TIER1_TIMEOUT="${TIER1_TIMEOUT:-900}"
FAULTS_TIMEOUT="${FAULTS_TIMEOUT:-300}"

echo "==> tier-1 suite (cap: ${TIER1_TIMEOUT}s)"
timeout --kill-after=30 "$TIER1_TIMEOUT" \
    python -m pytest -x -q -m "not faults"

echo "==> fault-injection suite (cap: ${FAULTS_TIMEOUT}s)"
timeout --kill-after=30 "$FAULTS_TIMEOUT" \
    python -m pytest -x -q -m faults

echo "==> CI green"
