"""Quickstart: find subgraph embeddings with DAF in five minutes.

Run:  python examples/quickstart.py
"""

from repro import (
    DAFMatcher,
    MatchConfig,
    MatchOptions,
    MatchRequest,
    count_embeddings,
    find_embeddings,
    has_embedding,
)
from repro.graph import Graph


def main() -> None:
    # 1. Build a labeled data graph.  Vertices get dense integer ids in
    #    insertion order; labels are arbitrary hashable values.
    data = Graph()
    alice = data.add_vertex("person")
    bob = data.add_vertex("person")
    carol = data.add_vertex("person")
    acme = data.add_vertex("company")
    data.add_edge(alice, bob)
    data.add_edge(bob, carol)
    data.add_edge(alice, carol)
    data.add_edge(alice, acme)
    data.add_edge(bob, acme)
    data.freeze()  # graphs are frozen before matching

    # 2. Build a query: two connected people who share an employer.
    query = Graph(
        labels=["person", "person", "company"],
        edges=[(0, 1), (0, 2), (1, 2)],
    )

    # 3. One-call API.
    print("embeddings:", find_embeddings(query, data))
    print("count     :", count_embeddings(query, data))
    print("exists    :", has_embedding(query, data))

    # 4. The full API: a matcher object exposes the paper's knobs and
    #    detailed statistics.
    matcher = DAFMatcher(
        MatchConfig(
            order="path",  # or "candidate" (§5.2 adaptive orders)
            use_failing_sets=True,  # §6 pruning; False reproduces "DA"
            refinement_steps=3,  # DAG-graph DP passes (§4)
        )
    )
    result = matcher.match(MatchRequest(query, data, options=MatchOptions(limit=1000)))
    print(f"\n{matcher.name}: {result.count} embeddings, "
          f"{result.stats.recursive_calls} recursive calls, "
          f"CS size {result.stats.candidates_total}")
    for embedding in result.embeddings:
        named = {f"u{u}": v for u, v in enumerate(embedding)}
        print("  ", named)

    # 5. Reuse the preprocessing across searches (Algorithm 1 lines 1-2
    #    once, line 4 many times).
    prepared = matcher.prepare(query, data)
    first = matcher.search(prepared, limit=1)
    print("\nfirst embedding only:", first.embeddings)


if __name__ == "__main__":
    main()
