"""Chemical substructure search (paper §1 cites graph indexing [45]).

Molecules are vertex-labeled graphs (atoms as labels, bonds as edges);
substructure search asks which molecules in a library contain a query
fragment.  This example builds a small molecule library, serializes it in
the community ``t/v/e`` file format, and screens it for functional groups
with ``has_embedding`` — the boolean form of subgraph matching that
dominates chemical screening.

Run:  python examples/chemical_substructure.py
"""

import io

from repro import count_embeddings, has_embedding
from repro.graph import Graph, read_cfl, write_cfl


def molecule(atoms: str, bonds: list[tuple[int, int]]) -> Graph:
    """A molecule from an atom string ('CCO' = two carbons + oxygen)."""
    return Graph(labels=list(atoms), edges=bonds)


def make_library() -> dict[str, Graph]:
    ring6 = [(i, (i + 1) % 6) for i in range(6)]
    return {
        "benzene": molecule("CCCCCC", ring6),
        "phenol": molecule("CCCCCCO", ring6 + [(0, 6)]),
        "cyclohexanol": molecule("CCCCCCO", ring6 + [(0, 6)]),  # same skeleton here
        "ethanol": molecule("CCO", [(0, 1), (1, 2)]),
        "acetic acid": molecule("CCOO", [(0, 1), (1, 2), (1, 3)]),
        "glycine": molecule("NCCOO", [(0, 1), (1, 2), (2, 3), (2, 4)]),
        "cyclopropane": molecule("CCC", [(0, 1), (1, 2), (0, 2)]),
    }


def make_fragments() -> dict[str, Graph]:
    return {
        "hydroxyl (C-O)": molecule("CO", [(0, 1)]),
        "carboxyl (O-C-O)": molecule("OCO", [(0, 1), (1, 2)]),
        "C3 ring": molecule("CCC", [(0, 1), (1, 2), (0, 2)]),
        "C6 ring": molecule("CCCCCC", [(i, (i + 1) % 6) for i in range(6)]),
        "amine (N-C)": molecule("NC", [(0, 1)]),
    }


def main() -> None:
    library = make_library()

    # Round-trip the library through the community file format, as a real
    # screening pipeline would store it.
    stored: dict[str, str] = {}
    for name, mol in library.items():
        buffer = io.StringIO()
        write_cfl(mol, buffer)
        stored[name] = buffer.getvalue()
    library = {name: read_cfl(io.StringIO(text)) for name, text in stored.items()}

    fragments = make_fragments()
    names = list(library)
    width = max(len(n) for n in fragments) + 2
    print("fragment".ljust(width) + "  ".join(f"{n[:12]:>12}" for n in names))
    print("-" * (width + 14 * len(names)))
    for frag_name, fragment in fragments.items():
        row = []
        for mol_name in names:
            hit = has_embedding(fragment, library[mol_name])
            row.append("  hit" if hit else "    -")
        print(frag_name.ljust(width) + "  ".join(f"{c:>12}" for c in row))

    # Occurrence counting: how many distinct ways does the C6 ring map
    # into benzene?  12 = 6 rotations x 2 reflections (automorphisms).
    ring = fragments["C6 ring"]
    count = count_embeddings(ring, library["benzene"])
    print(f"\nC6 ring has {count} embeddings in benzene "
          "(12 automorphic images of one ring)")


if __name__ == "__main__":
    main()
