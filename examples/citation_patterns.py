"""Directed pattern search in a citation network (the §2 extension).

Citation graphs are inherently directed: "A cites B" is not "B cites A".
This example builds a synthetic citation network (papers labeled by
field, edges pointing at the cited paper) and runs directed pattern
queries — co-citation, bibliographic coupling, and citation chains —
with :class:`repro.directed.DirectedDAFMatcher`.  Orientation matters:
the same underlying undirected shape gives different answers per
direction.

Run:  python examples/citation_patterns.py
"""

import random

from repro.directed import DirectedDAFMatcher, DirectedGraph


def build_citation_network(
    num_papers: int = 400, num_citations: int = 1600, seed: int = 7
) -> DirectedGraph:
    """Papers cite earlier papers, preferentially well-cited ones."""
    rng = random.Random(seed)
    fields = ["ml", "db", "systems", "theory"]
    g = DirectedGraph()
    for _ in range(num_papers):
        g.add_vertex(rng.choice(fields))
    popularity = list(range(num_papers))  # repeated-endpoint pool
    added = set()
    while len(added) < num_citations:
        citing = rng.randrange(1, num_papers)
        cited = popularity[rng.randrange(len(popularity))]
        if cited >= citing or (citing, cited) in added:  # cite the past only
            continue
        added.add((citing, cited))
        g.add_edge(citing, cited)
        popularity.append(cited)  # rich get richer
    return g.freeze()


def main() -> None:
    data = build_citation_network()
    print(f"citation network: {data.num_vertices} papers, {data.num_edges} citations\n")
    matcher = DirectedDAFMatcher()

    # Co-citation: one paper citing two others (both edges point away).
    co_citation = DirectedGraph(labels=["ml", "db", "db"], edges=[(0, 1), (0, 2)])
    # Bibliographic coupling: two papers cited by the same two papers.
    coupling = DirectedGraph(
        labels=["ml", "ml", "db"], edges=[(0, 2), (1, 2)]
    )
    # A citation chain across three fields.
    chain = DirectedGraph(
        labels=["ml", "db", "theory"], edges=[(0, 1), (1, 2)]
    )
    # The reversed chain: same undirected shape, different semantics.
    reversed_chain = DirectedGraph(
        labels=["ml", "db", "theory"], edges=[(1, 0), (2, 1)]
    )

    patterns = {
        "co-citation (ml cites 2 db)": co_citation,
        "coupling (2 ml cite 1 db)": coupling,
        "chain ml->db->theory": chain,
        "chain ml<-db<-theory": reversed_chain,
    }
    for name, pattern in patterns.items():
        # DirectedDAFMatcher's positional match() is the directed
        # subsystem's own surface, not the deprecated interfaces shim.
        result = matcher.match(pattern, data, limit=5000, time_limit=10.0)  # lint: ignore[IFC003]
        print(f"{name:30} {result.count:>6} matches "
              f"({result.stats.recursive_calls} calls, CS {result.stats.candidates_total})")

    forward = matcher.count(chain, data, limit=10**6)
    backward = matcher.count(reversed_chain, data, limit=10**6)
    print(f"\norientation check: forward chain {forward} vs reversed {backward} "
          "(different, as direction demands)")


if __name__ == "__main__":
    main()
