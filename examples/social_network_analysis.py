"""Social-network pattern analysis (the paper's Email/DBLP/Twitter setting).

Subgraph matching is a primitive of social-network analysis (paper §1
cites [12, 37]): finding role patterns such as brokers between
communities, co-follower diamonds, and influencer hubs.  This example
runs such pattern queries over the Email stand-in, demonstrates the
streaming callback and time-limit APIs, shows a negative query being
dismissed by preprocessing alone (Appendix A.3), and finishes with
parallel DAF (Appendix A.4).

Run:  python examples/social_network_analysis.py
"""

from repro import DAFMatcher, MatchConfig, MatchOptions, MatchRequest
from repro.datasets import load
from repro.extensions import ParallelDAFMatcher
from repro.graph import Graph


def main() -> None:
    data = load("email")
    print(f"data graph: email stand-in |V|={data.num_vertices} "
          f"|E|={data.num_edges} labels={data.num_labels}\n")
    labels = sorted(data.distinct_labels(), key=data.label_frequency, reverse=True)
    a, b, c = labels[0], labels[1], labels[2]

    # --- Broker pattern: one account bridging two otherwise-unlinked
    #     accounts that each have their own contact.
    broker = Graph(
        labels=[a, b, b, c, c],
        edges=[(0, 1), (0, 2), (1, 3), (2, 4)],
    )
    matcher = DAFMatcher()
    result = matcher.match(
        MatchRequest(broker, data, options=MatchOptions(limit=5, time_limit=10.0))
    )
    print(f"broker pattern: first {result.count} of many; "
          f"{result.stats.recursive_calls} recursive calls")
    for embedding in result.embeddings:
        print("   broker =", embedding[0], "contacts =", embedding[1:])

    # --- Streaming: process embeddings as they are found, stop via limit.
    print("\nco-follower diamonds (streaming):")
    diamond = Graph(labels=[a, b, a, b], edges=[(0, 1), (1, 2), (2, 3), (3, 0)])

    def on_match(embedding):
        print("   found", embedding)

    matcher.match(
        MatchRequest(diamond, data, options=MatchOptions(limit=3, on_embedding=on_match))
    )

    # --- Negative query: a label that does not exist is rejected during
    #     preprocessing with zero search (Appendix A.3).
    ghost = Graph(labels=[a, "no-such-community"], edges=[(0, 1)])
    negative = matcher.match(MatchRequest(ghost, data))
    print(f"\nnegative query: {negative.count} embeddings, "
          f"{negative.stats.recursive_calls} search calls "
          f"(CS size {negative.stats.candidates_total} -> proven impossible)")

    # --- Parallel DAF: partition the root candidates across workers.
    parallel = ParallelDAFMatcher(num_workers=2, config=MatchConfig(collect_embeddings=False))
    par_result = parallel.match(
        MatchRequest(broker, data, options=MatchOptions(limit=1000, time_limit=20.0))
    )
    print(f"\nparallel ({parallel.name}): {par_result.count} embeddings, "
          f"{par_result.stats.recursive_calls} total recursive calls across workers")


if __name__ == "__main__":
    main()
