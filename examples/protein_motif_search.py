"""Protein-interaction motif search (the paper's Yeast/Human/HPRD setting).

Subgraph matching powers motif analysis in protein-protein-interaction
networks (paper §1 cites [31]): a *motif* is a small labeled pattern whose
occurrence count in the PPI network is biologically meaningful.  This
example searches the Yeast stand-in dataset for classic motifs — labeled
triangles, stars and a bi-fan — and compares DAF against VF2 on the same
workload.

Run:  python examples/protein_motif_search.py
"""

import time

from repro import DAFMatcher, MatchConfig, MatchOptions, MatchRequest
from repro.baselines import VF2Matcher
from repro.datasets import load
from repro.graph import Graph


def most_common_labels(data, k: int) -> list:
    labels = sorted(data.distinct_labels(), key=data.label_frequency, reverse=True)
    return labels[:k]


def make_motifs(data) -> dict[str, Graph]:
    """Small labeled motifs over the dataset's most frequent labels."""
    a, b, c = most_common_labels(data, 3)
    return {
        "labeled triangle": Graph(labels=[a, b, c], edges=[(0, 1), (1, 2), (0, 2)]),
        "3-star": Graph(labels=[a, b, b, c], edges=[(0, 1), (0, 2), (0, 3)]),
        "bi-fan": Graph(
            labels=[a, a, b, b],
            edges=[(0, 2), (0, 3), (1, 2), (1, 3)],
        ),
        "tailed triangle": Graph(
            labels=[a, b, c, b],
            edges=[(0, 1), (1, 2), (0, 2), (2, 3)],
        ),
    }


def main() -> None:
    data = load("yeast")
    print(f"data graph: yeast stand-in |V|={data.num_vertices} "
          f"|E|={data.num_edges} labels={data.num_labels}\n")

    daf = DAFMatcher(MatchConfig(collect_embeddings=False))
    vf2 = VF2Matcher()
    limit = 10_000

    header = f"{'motif':18} {'count':>8} {'DAF ms':>9} {'DAF calls':>10} {'VF2 ms':>9} {'VF2 calls':>10}"
    print(header)
    print("-" * len(header))
    for name, motif in make_motifs(data).items():
        start = time.perf_counter()
        daf_result = daf.match(
            MatchRequest(motif, data, options=MatchOptions(limit=limit, time_limit=10.0))
        )
        daf_ms = 1000 * (time.perf_counter() - start)

        start = time.perf_counter()
        vf2_result = vf2.match(
            MatchRequest(motif, data, options=MatchOptions(limit=limit, time_limit=10.0))
        )
        vf2_ms = 1000 * (time.perf_counter() - start)

        assert daf_result.count == vf2_result.count, "matchers disagree!"
        print(
            f"{name:18} {daf_result.count:>8} {daf_ms:>9.1f} "
            f"{daf_result.stats.recursive_calls:>10} {vf2_ms:>9.1f} "
            f"{vf2_result.stats.recursive_calls:>10}"
        )

    print("\ncounts capped at", limit, "(the paper's k-limit protocol, §7)")


if __name__ == "__main__":
    main()
