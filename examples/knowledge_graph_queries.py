"""Knowledge-graph pattern queries (the paper's YAGO/RDF setting).

The paper motivates subgraph matching with RDF query processing (§1 cites
[21]): after type-aware transformation, an RDF basic graph pattern
becomes a labeled subgraph-matching query.  This example treats the YAGO
stand-in as a typed entity graph and runs star / path / cycle patterns of
the kind SPARQL engines push into a matcher.  It also uses ``explain()``
to show what the DAF planner decided, and the CLI-compatible JSON output
shape.

Run:  python examples/knowledge_graph_queries.py
"""

import json

from repro import DAFMatcher, MatchConfig, MatchOptions, MatchRequest
from repro.core import explain
from repro.datasets import load
from repro.graph import Graph


def typed(labels, edges):
    return Graph(labels=labels, edges=edges)


def main() -> None:
    data = load("yago")
    print(f"data graph: yago stand-in |V|={data.num_vertices} "
          f"|E|={data.num_edges} types={data.num_labels}\n")

    # Pick frequent "types" so patterns actually occur.
    types = sorted(data.distinct_labels(), key=data.label_frequency, reverse=True)
    person, place, org = types[0], types[1], types[2]

    patterns = {
        # ?p1 -knows- ?p2 ; both -locatedIn- the same ?place
        "co-located pair": typed(
            [person, person, place], [(0, 1), (0, 2), (1, 2)]
        ),
        # ?p -memberOf- ?org -basedIn- ?place -neighbors- ?place2
        "affiliation chain": typed(
            [person, org, place, place], [(0, 1), (1, 2), (2, 3)]
        ),
        # a 4-cycle of alternating person/org (joint ventures)
        "joint venture ring": typed(
            [person, org, person, org], [(0, 1), (1, 2), (2, 3), (3, 0)]
        ),
    }

    matcher = DAFMatcher(MatchConfig(collect_embeddings=False))
    for name, pattern in patterns.items():
        result = matcher.match(
            MatchRequest(pattern, data, options=MatchOptions(limit=1000, time_limit=10.0))
        )
        payload = {
            "pattern": name,
            "matches": result.count,
            "capped": result.limit_reached,
            "recursive_calls": result.stats.recursive_calls,
            "cs_size": result.stats.candidates_total,
        }
        print(json.dumps(payload))

    # Planner diagnostics for the most selective pattern.
    print("\nquery plan for 'co-located pair':")
    print(explain(patterns["co-located pair"], data).render())


if __name__ == "__main__":
    main()
