"""Live progress for long searches (heartbeats, rates, ETA).

The paper's protocol happily lets a query run for ten minutes; a service
operator (and anyone reproducing Fig. 10 on the Twitter graph) needs to
see *where* a search is without attaching a debugger.  The reporter is
driven from the engine's hot loop but keeps the common case to a single
integer decrement: every ``every_calls`` recursive calls it looks at the
clock, and only when ``min_interval_seconds`` have also passed does it
emit a ``progress`` event (and optionally a human-readable line).

The parallel dispatcher reuses the same reporter inside each worker with
a pipe-backed sink, so the supervisor can surface per-slice live depth
and calls/sec, plus its own slice-completion ETA — see
``repro.extensions.parallel``.
"""

from __future__ import annotations

import time
from typing import IO, Optional

from .sinks import EventSink


class ProgressReporter:
    """Emits throttled heartbeat events from a search hot loop.

    Parameters
    ----------
    every_calls:
        Recursive calls between clock checks (the only per-call cost is
        one decrement + compare).
    min_interval_seconds:
        Heartbeats are additionally rate-limited to one per this many
        seconds, so a fast search does not flood the sink.
    sink:
        Receives ``{"event": "progress", "scope": "search", ...}`` dicts.
    stream:
        Optional text stream for human-readable one-line updates
        (the CLI passes ``sys.stderr`` under ``--progress``).
    scope:
        Tag for the emitted events (``"search"`` for sequential engines;
        workers tag their slice).
    """

    __slots__ = (
        "every_calls",
        "min_interval_seconds",
        "sink",
        "stream",
        "scope",
        "trace",
        "_countdown",
        "_start",
        "_last_time",
        "_last_calls",
        "beats",
    )

    def __init__(
        self,
        every_calls: int = 4096,
        min_interval_seconds: float = 0.5,
        sink: Optional[EventSink] = None,
        stream: Optional[IO[str]] = None,
        scope: str = "search",
    ) -> None:
        if every_calls < 1:
            raise ValueError("every_calls must be >= 1")
        self.every_calls = every_calls
        self.min_interval_seconds = min_interval_seconds
        self.sink = sink
        self.stream = stream
        self.scope = scope
        # Set by MetricsRegistry's trace setter; heartbeats then carry
        # the request's correlation fields like every other event.
        self.trace = None
        self._countdown = every_calls
        now = time.perf_counter()
        self._start = now
        self._last_time = now
        self._last_calls = 0
        self.beats = 0

    def reset(self) -> None:
        """Re-arm for a new search (rates restart from zero)."""
        self._countdown = self.every_calls
        now = time.perf_counter()
        self._start = now
        self._last_time = now
        self._last_calls = 0

    def tick(self, calls: int, depth: int) -> None:
        """Hot-loop entry point: cheap until the countdown hits zero."""
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.every_calls
        now = time.perf_counter()
        window = now - self._last_time
        if window < self.min_interval_seconds:
            return
        rate = (calls - self._last_calls) / window if window > 0 else 0.0
        self._last_time = now
        self._last_calls = calls
        self.beats += 1
        self._emit(
            {
                "event": "progress",
                "scope": self.scope,
                "calls": calls,
                "depth": depth,
                "calls_per_sec": round(rate, 1),
                "elapsed_seconds": round(now - self._start, 3),
            }
        )

    def _emit(self, payload: dict) -> None:
        if self.sink is not None:
            if self.trace is not None:
                self.trace.stamp(payload)
            self.sink.emit(payload)
        if self.stream is not None:
            line = (
                f"[{self.scope}] {payload['elapsed_seconds']:8.1f}s  "
                f"calls={payload['calls']:<12d} depth={payload['depth']:<4d} "
                f"{payload['calls_per_sec']:,.0f} calls/s"
            )
            self.stream.write(line + "\n")
            self.stream.flush()


def slice_eta(done: int, total: int, elapsed_seconds: float) -> Optional[float]:
    """ETA for the parallel supervisor from its slice completion rate.

    Returns ``None`` until at least one slice has finished (no rate to
    extrapolate from).
    """
    if done <= 0 or total <= 0 or elapsed_seconds <= 0:
        return None
    remaining = max(0, total - done)
    return remaining * (elapsed_seconds / done)
