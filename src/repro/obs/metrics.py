"""The metrics registry: cheap counters, phase spans, candidate histograms.

Design rules, in order of importance:

1. **Disabled means absent.**  Engines hold ``observer = None`` when
   metrics are off and guard every touch with ``if obs is not None`` —
   there is no no-op object, no dynamic dispatch, and therefore no
   attribute lookups on the hot path of an un-instrumented search
   (tested by ``tests/test_obs.py::TestZeroOverhead``).
2. **Enabled means plain int adds.**  Counters are slot-backed ints on
   the registry, incremented directly (``obs.prune_conflict += 1``).
   No locks: a registry belongs to one search at a time; the parallel
   dispatcher gives every worker its own registry and merges snapshots
   through :meth:`repro.interfaces.SearchStats.merge`.
3. **Events are rare.**  Only phase boundaries, heartbeats and sampled
   trace nodes reach the sink; counters travel once, in the final
   ``counters`` event / ``SearchStats.metrics`` snapshot.

The counter catalogue (why did a candidate or subtree die?):

=====================  ==========================================================
counter                 meaning
=====================  ==========================================================
prune_label_degree      candidates rejected by label/degree filters — C_ini and
                        the local MND/NLF filters (paper §4.1); for baselines,
                        their own candidate-pool filters at search time
prune_cs_edge           candidates rejected for lacking a required edge: DP
                        refinement removals during CS construction (Recurrence
                        (1)); for baselines, backward-edge probes of the data
                        graph that failed (DAF never pays these at search time —
                        Theorem 4.1)
prune_conflict          conflict-class leaves: the candidate was already used by
                        another query vertex (injectivity), incl. induced-mode
                        non-edge violations
prune_empty             emptyset-class leaves: an extendable vertex with no
                        usable candidate
prune_failing_set       sibling candidates skipped by failing-set pruning
                        (Lemma 6.1) — subtrees never entered
fs_cuts                 number of Lemma 6.1 cut events (each skips >= 0 siblings)
candidates_examined     candidate slots the search loop actually inspected
children_entered        recursive descents (candidates that survived all checks)
=====================  ==========================================================

Per-run consistency invariants (asserted in the test suite)::

    candidates_examined == prune_conflict + children_entered      (FS engine)
    recursive_calls     == children_entered + number of run() roots
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, Optional

from .progress import ProgressReporter
from .sinks import EventSink

#: Counter slot names, in reporting order.  Adding a counter here is all
#: that is needed for it to appear in snapshots, events and the docs'
#: catalogue check.
COUNTERS: tuple[str, ...] = (
    "prune_label_degree",
    "prune_cs_edge",
    "prune_conflict",
    "prune_empty",
    "prune_failing_set",
    "fs_cuts",
    "candidates_examined",
    "children_entered",
)

#: Phase-span names used by the DAF pipeline (baselines reuse the
#: applicable subset).  ``cs_refine`` nests inside ``cs_construct``.
PHASES: tuple[str, ...] = ("dag_build", "cs_construct", "cs_refine", "order", "search")


class MetricsRegistry:
    """Per-search observability state: counters, spans, histograms.

    A registry is cheap to construct and single-owner by design.  Attach
    one to any :class:`repro.interfaces.Matcher` via the ``observer``
    attribute (or the ``observer=`` constructor/keyword arguments of the
    DAF stack) and read :meth:`snapshot` — or the same payload from
    ``result.stats.metrics`` — afterwards.

    Parameters
    ----------
    sink:
        Optional :class:`~repro.obs.EventSink` receiving span, counters,
        histogram, progress and trace events as they happen.
    progress:
        Optional :class:`~repro.obs.ProgressReporter` the engines drive
        from their hot loops (heartbeats).
    """

    __slots__ = COUNTERS + ("spans", "candidate_sizes", "sink", "progress")

    def __init__(
        self,
        sink: Optional[EventSink] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        for name in COUNTERS:
            setattr(self, name, 0)
        self.spans: dict[str, float] = {}
        self.candidate_sizes: list[int] = []
        self.sink = sink
        self.progress = progress
        if progress is not None and progress.sink is None:
            progress.sink = sink

    # -- counters -------------------------------------------------------
    def counters(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in COUNTERS}

    def reset(self) -> None:
        """Zero all counters, spans and histograms (sink stays attached)."""
        for name in COUNTERS:
            setattr(self, name, 0)
        self.spans = {}
        self.candidate_sizes = []
        if self.progress is not None:
            self.progress.reset()

    # -- spans ----------------------------------------------------------
    def record_span(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into phase ``name`` and emit the event."""
        self.spans[name] = self.spans.get(name, 0.0) + seconds
        if self.sink is not None:
            self.sink.emit(
                {"event": "span", "name": name, "seconds": round(seconds, 6)}
            )

    @contextmanager
    def span(self, name: str):
        """``with registry.span("cs_construct"): ...`` — timed phase."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record_span(name, time.perf_counter() - start)

    # -- histograms -----------------------------------------------------
    def observe_candidate_sizes(self, sizes: Iterable[int]) -> None:
        """Record the per-query-vertex candidate-set sizes |C(u)|."""
        self.candidate_sizes = list(sizes)
        if self.sink is not None:
            self.sink.emit(
                {
                    "event": "histogram",
                    "name": "candidates_per_vertex",
                    "values": self.candidate_sizes,
                }
            )

    # -- events / snapshots ---------------------------------------------
    def emit(self, event: dict) -> None:
        """Forward an arbitrary event to the sink (no-op without one)."""
        if self.sink is not None:
            self.sink.emit(event)

    def snapshot(self) -> dict:
        """The JSON-serializable payload stored in ``SearchStats.metrics``."""
        return {
            "counters": self.counters(),
            "spans": {k: round(v, 6) for k, v in self.spans.items()},
            "candidate_sizes": list(self.candidate_sizes),
        }

    def emit_counters(self) -> None:
        """Emit the final ``counters`` event (end of a search)."""
        if self.sink is not None:
            self.sink.emit({"event": "counters", "counters": self.counters()})

    def render_summary(self) -> str:
        """Human-readable profile block (the CLI's ``--profile`` output)."""
        return render_snapshot(self.snapshot())


def render_snapshot(snapshot: dict) -> str:
    """Render any :meth:`MetricsRegistry.snapshot` payload (including one
    merged across parallel workers) as the ``--profile`` text block."""
    spans = snapshot.get("spans", {})
    counters = snapshot.get("counters", {})
    sizes = snapshot.get("candidate_sizes", [])
    lines = ["phase timings:"]
    for name in PHASES:
        if name in spans:
            lines.append(f"  {name:<12s} {spans[name] * 1000.0:10.2f} ms")
    for name, seconds in spans.items():
        if name not in PHASES:
            lines.append(f"  {name:<12s} {seconds * 1000.0:10.2f} ms")
    lines.append("prune accounting:")
    for name in COUNTERS:
        lines.append(f"  {name:<20s} {counters.get(name, 0):>12d}")
    if sizes:
        lines.append(
            "candidates/vertex:    "
            f"min={min(sizes)} max={max(sizes)} "
            f"total={sum(sizes)} n={len(sizes)}"
        )
    return "\n".join(lines)
