"""The metrics registry: cheap counters, phase spans, candidate histograms.

Design rules, in order of importance:

1. **Disabled means absent.**  Engines hold ``observer = None`` when
   metrics are off and guard every touch with ``if obs is not None`` —
   there is no no-op object, no dynamic dispatch, and therefore no
   attribute lookups on the hot path of an un-instrumented search
   (tested by ``tests/test_obs.py::TestZeroOverhead``).
2. **Enabled means plain int adds.**  Counters are slot-backed ints on
   the registry, incremented directly (``obs.prune_conflict += 1``).
   No locks: a registry belongs to one search at a time; the parallel
   dispatcher gives every worker its own registry and merges snapshots
   through :meth:`repro.interfaces.SearchStats.merge`.
3. **Events are rare.**  Only phase boundaries, heartbeats and sampled
   trace nodes reach the sink; counters travel once, in the final
   ``counters`` event / ``SearchStats.metrics`` snapshot.

The counter catalogue (why did a candidate or subtree die?):

=====================  ==========================================================
counter                 meaning
=====================  ==========================================================
prune_label_degree      candidates rejected by label/degree filters — C_ini and
                        the local MND/NLF filters (paper §4.1); for baselines,
                        their own candidate-pool filters at search time
prune_cs_edge           candidates rejected for lacking a required edge: DP
                        refinement removals during CS construction (Recurrence
                        (1)); for baselines, backward-edge probes of the data
                        graph that failed (DAF never pays these at search time —
                        Theorem 4.1)
prune_conflict          conflict-class leaves: the candidate was already used by
                        another query vertex (injectivity), incl. induced-mode
                        non-edge violations
prune_empty             emptyset-class leaves: an extendable vertex with no
                        usable candidate
prune_failing_set       sibling candidates skipped by failing-set pruning
                        (Lemma 6.1) — subtrees never entered
fs_cuts                 number of Lemma 6.1 cut events (each skips >= 0 siblings)
candidates_examined     candidate slots the search loop actually inspected
children_entered        recursive descents (candidates that survived all checks)
cache_hit               serving layer: prepared-query cache hits (preprocessing
                        skipped entirely)
cache_miss              serving layer: cache misses (full BuildDAG + BuildCS run)
cache_eviction          serving layer: LRU evictions from the prepared cache
cache_invalidation      serving layer: cached prepared queries dropped because a
                        data-graph update batch made them unrefreshable (the
                        delta re-oriented the query's DAG) — churn-driven loss,
                        as opposed to the capacity-driven ``cache_eviction``
resumes                 searches continued from a ``SearchCheckpoint`` (mirrors
                        the ``checkpoint.resume`` event into snapshots, so resume
                        frequency is visible without replaying the event stream)
=====================  ==========================================================

Per-run consistency invariants (asserted in the test suite)::

    candidates_examined == prune_conflict + children_entered      (FS engine)
    recursive_calls     == children_entered + number of run() roots

**Per-vertex attribution** (PR 3): four of the counters are additionally
attributed to the query vertex that burned them — ``entered`` (recursive
descents made while expanding ``u``), ``conflict``, ``empty`` and
``fs_pruned``.  Engines size the arrays via :meth:`ensure_vertices` and
increment ``obs.vertex_entered[u]`` etc. inside the same
``if obs is not None`` guards, so the zero-overhead-when-off contract is
untouched and the per-vertex sums always equal the corresponding global
counters::

    sum(vertex_entered)   == children_entered
    sum(vertex_conflict)  == prune_conflict
    sum(vertex_empty)     == prune_empty
    sum(vertex_fs_pruned) == prune_failing_set

(The leaf-combinatorics path attributes a failing label group's
``empty`` to the group's first leaf.)  Snapshots carry the attribution
as sparse ``{"vertex": count}`` maps so parallel-worker snapshots merge
by summation; :func:`hotspot_rows` / :func:`render_hotspots` turn a
snapshot into the "which vertex burns the search" report.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, Optional

from .progress import ProgressReporter
from .sinks import EventSink

#: Counter slot names, in reporting order.  Adding a counter here is all
#: that is needed for it to appear in snapshots, events and the docs'
#: catalogue check.
COUNTERS: tuple[str, ...] = (
    "prune_label_degree",
    "prune_cs_edge",
    "prune_conflict",
    "prune_empty",
    "prune_failing_set",
    "fs_cuts",
    "candidates_examined",
    "children_entered",
    # Serving layer (repro.service): prepared-query cache traffic.
    "cache_hit",
    "cache_miss",
    "cache_eviction",
    "cache_invalidation",
    # Checkpointable search (repro.resilience.checkpoint): searches
    # continued from a suspended checkpoint.
    "resumes",
)

#: Phase-span names used by the DAF pipeline (baselines reuse the
#: applicable subset).  ``cs_refine`` nests inside ``cs_construct``;
#: ``cache_lookup`` is the serving layer's prepared-query probe.
PHASES: tuple[str, ...] = (
    "dag_build",
    "cs_construct",
    "cs_refine",
    "order",
    "search",
    "cache_lookup",
)

#: Per-query-vertex attribution dimensions; ``vertex_<name>`` is the
#: registry's int array for each, and snapshots carry them as sparse
#: ``{"vertex": count}`` maps under ``"vertex_counters"``.
VERTEX_COUNTERS: tuple[str, ...] = ("entered", "conflict", "empty", "fs_pruned")


class MetricsRegistry:
    """Per-search observability state: counters, spans, histograms.

    A registry is cheap to construct and single-owner by design.  Attach
    one to any :class:`repro.interfaces.Matcher` via the ``observer``
    attribute (or the ``observer=`` constructor/keyword arguments of the
    DAF stack) and read :meth:`snapshot` — or the same payload from
    ``result.stats.metrics`` — afterwards.

    Parameters
    ----------
    sink:
        Optional :class:`~repro.obs.EventSink` receiving span, counters,
        histogram, progress and trace events as they happen.
    progress:
        Optional :class:`~repro.obs.ProgressReporter` the engines drive
        from their hot loops (heartbeats).
    """

    __slots__ = (
        COUNTERS
        + tuple(f"vertex_{name}" for name in VERTEX_COUNTERS)
        + ("spans", "candidate_sizes", "sink", "progress", "_trace")
    )

    def __init__(
        self,
        sink: Optional[EventSink] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        for name in COUNTERS:
            setattr(self, name, 0)
        for name in VERTEX_COUNTERS:
            setattr(self, f"vertex_{name}", [])
        self.spans: dict[str, float] = {}
        self.candidate_sizes: list[int] = []
        self.sink = sink
        self.progress = progress
        self._trace = None
        if progress is not None and progress.sink is None:
            progress.sink = sink

    # -- tracing --------------------------------------------------------
    @property
    def trace(self):
        """The active :class:`~repro.obs.telemetry.TraceContext` (or
        ``None``).  While set, every event this registry emits — spans,
        counters, histograms, progress heartbeats, arbitrary
        :meth:`emit` payloads — is stamped with the correlation triple."""
        return self._trace

    @trace.setter
    def trace(self, context) -> None:
        self._trace = context
        if self.progress is not None:
            self.progress.trace = context

    def adopt_trace(self, payload: Optional[dict], name: str = "resume") -> None:
        """Adopt the trace a checkpoint was captured under (resume
        lineage): same ``trace_id``, a ``.resume`` child span.  No-op for
        ``None``/empty payloads or when a trace is already active (the
        caller — session, worker, CLI — then owns the context)."""
        if not payload or self._trace is not None:
            return
        from .telemetry import resumed_context

        self.trace = resumed_context(payload, name)

    # -- counters -------------------------------------------------------
    def counters(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in COUNTERS}

    def ensure_vertices(self, n: int) -> None:
        """Grow the per-vertex attribution arrays to cover ``n`` query
        vertices.  Engines call this once at setup (inside their
        ``observer is not None`` branch) so the hot loop can use plain
        ``obs.vertex_entered[u] += 1`` list indexing."""
        for name in VERTEX_COUNTERS:
            array = getattr(self, f"vertex_{name}")
            if len(array) < n:
                array.extend([0] * (n - len(array)))

    def vertex_counters(self) -> dict[str, dict[str, int]]:
        """Sparse per-vertex attribution: ``{dim: {str(vertex): count}}``.

        String keys + numeric leaves are what
        :func:`repro.interfaces._merge_metrics` sums element-wise when
        parallel-worker snapshots merge (lists would concatenate).
        """
        out: dict[str, dict[str, int]] = {}
        for name in VERTEX_COUNTERS:
            array = getattr(self, f"vertex_{name}")
            sparse = {str(u): c for u, c in enumerate(array) if c}
            if sparse:
                out[name] = sparse
        return out

    def reset(self) -> None:
        """Zero all counters, spans and histograms (sink stays attached)."""
        for name in COUNTERS:
            setattr(self, name, 0)
        for name in VERTEX_COUNTERS:
            setattr(self, f"vertex_{name}", [])
        self.spans = {}
        self.candidate_sizes = []
        if self.progress is not None:
            self.progress.reset()

    # -- spans ----------------------------------------------------------
    def record_span(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into phase ``name`` and emit the event."""
        self.spans[name] = self.spans.get(name, 0.0) + seconds
        if self.sink is not None:
            event = {"event": "span", "name": name, "seconds": round(seconds, 6)}
            if self._trace is not None:
                self._trace.stamp(event)
            self.sink.emit(event)

    @contextmanager
    def span(self, name: str):
        """``with registry.span("cs_construct"): ...`` — timed phase."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record_span(name, time.perf_counter() - start)

    # -- histograms -----------------------------------------------------
    def observe_candidate_sizes(self, sizes: Iterable[int]) -> None:
        """Record the per-query-vertex candidate-set sizes |C(u)|."""
        self.candidate_sizes = list(sizes)
        if self.sink is not None:
            event = {
                "event": "histogram",
                "name": "candidates_per_vertex",
                "values": self.candidate_sizes,
            }
            if self._trace is not None:
                self._trace.stamp(event)
            self.sink.emit(event)

    # -- events / snapshots ---------------------------------------------
    def emit(self, event: dict) -> None:
        """Forward an arbitrary event to the sink (no-op without one),
        stamping the active trace context (existing stamps win, so a
        worker-stamped event re-emitted by the supervisor keeps the
        worker's span)."""
        if self.sink is not None:
            if self._trace is not None:
                self._trace.stamp(event)
            self.sink.emit(event)

    def snapshot(self) -> dict:
        """The JSON-serializable payload stored in ``SearchStats.metrics``."""
        payload = {
            "counters": self.counters(),
            "spans": {k: round(v, 6) for k, v in self.spans.items()},
            "candidate_sizes": list(self.candidate_sizes),
        }
        vertex = self.vertex_counters()
        if vertex:
            payload["vertex_counters"] = vertex
        return payload

    def hotspots(self, top: Optional[int] = None) -> list[dict]:
        """Per-vertex attribution rows, hottest first (see
        :func:`hotspot_rows`)."""
        return hotspot_rows(self.snapshot(), top=top)

    def emit_counters(self) -> None:
        """Emit the final ``counters`` event (end of a search)."""
        if self.sink is not None:
            event = {"event": "counters", "counters": self.counters()}
            if self._trace is not None:
                self._trace.stamp(event)
            self.sink.emit(event)

    def render_summary(self) -> str:
        """Human-readable profile block (the CLI's ``--profile`` output)."""
        return render_snapshot(self.snapshot())


def render_snapshot(snapshot: dict) -> str:
    """Render any :meth:`MetricsRegistry.snapshot` payload (including one
    merged across parallel workers) as the ``--profile`` text block."""
    spans = snapshot.get("spans", {})
    counters = snapshot.get("counters", {})
    sizes = snapshot.get("candidate_sizes", [])
    lines = ["phase timings:"]
    for name in PHASES:
        if name in spans:
            lines.append(f"  {name:<12s} {spans[name] * 1000.0:10.2f} ms")
    for name, seconds in spans.items():
        if name not in PHASES:
            lines.append(f"  {name:<12s} {seconds * 1000.0:10.2f} ms")
    lines.append("prune accounting:")
    for name in COUNTERS:
        lines.append(f"  {name:<20s} {counters.get(name, 0):>12d}")
    if sizes:
        lines.append(
            "candidates/vertex:    "
            f"min={min(sizes)} max={max(sizes)} "
            f"total={sum(sizes)} n={len(sizes)}"
        )
    if snapshot.get("vertex_counters"):
        lines.append("search-effort hotspots:")
        for line in render_hotspots(snapshot, top=3).splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines)


def hotspot_rows(snapshot: dict, top: Optional[int] = None) -> list[dict]:
    """Per-query-vertex search-effort attribution from any snapshot.

    One row per vertex that burned anything, sorted by descending
    recursive-descent count (``entered``), each with the vertex's share
    of every attribution dimension — the Arai-et-al-style "where does
    the search effort concentrate" view.  Works on merged parallel
    snapshots too (the sparse maps sum across workers).
    """
    vertex = snapshot.get("vertex_counters", {})
    if not vertex:
        return []
    vertices: set[int] = set()
    for sparse in vertex.values():
        vertices.update(int(u) for u in sparse)
    totals = {name: sum(vertex.get(name, {}).values()) for name in VERTEX_COUNTERS}
    rows = []
    for u in sorted(vertices):
        row: dict = {"vertex": u}
        for name in VERTEX_COUNTERS:
            count = vertex.get(name, {}).get(str(u), 0)
            row[name] = count
            row[f"{name}_%"] = round(100.0 * count / totals[name], 1) if totals[name] else 0.0
        rows.append(row)
    rows.sort(key=lambda r: (-r["entered"], r["vertex"]))
    return rows[:top] if top is not None else rows


def render_hotspots(snapshot: dict, top: int = 5) -> str:
    """Human-readable hotspot lines ("u3 accounts for 78% of emptyset
    failures") for the CLI and the ``--profile`` block."""
    rows = hotspot_rows(snapshot, top=top)
    if not rows:
        return "(no per-vertex attribution recorded)"
    lines = []
    for row in rows:
        parts = [f"{row['entered_%']:.1f}% of recursive descents ({row['entered']})"]
        for name, label in (
            ("empty", "emptyset failures"),
            ("conflict", "conflicts"),
            ("fs_pruned", "failing-set prunes"),
        ):
            if row[name]:
                parts.append(f"{row[f'{name}_%']:.1f}% of {label} ({row[name]})")
        lines.append(f"u{row['vertex']}: " + ", ".join(parts))
    return "\n".join(lines)
