"""Event sinks: where structured observability events go.

Every event is one JSON-serializable dict with at least an ``"event"``
type tag and a ``"ts"`` wall-clock timestamp (added by the sink when the
producer did not set one).  Sinks are deliberately tiny: the hot paths
never talk to a sink directly — the :class:`~repro.obs.MetricsRegistry`
batches counters and only phase boundaries, heartbeats and sampled trace
nodes reach ``emit``.

The JSONL format (one event object per line) is documented in
``docs/observability.md`` and validated by
``scripts/check_metrics_schema.py``.
"""

from __future__ import annotations

import json
import time
from typing import IO, Optional


class EventSink:
    """Base sink: drops everything.  Subclasses override :meth:`emit`.

    A ``None`` sink and an ``EventSink()`` behave identically from the
    producer side; producers still guard with ``if sink is not None`` so
    the disabled path performs no calls at all.
    """

    def emit(self, event: dict) -> None:  # pragma: no cover - trivial
        pass

    def close(self) -> None:  # pragma: no cover - trivial
        pass

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _stamp(event: dict) -> dict:
    if "ts" not in event:
        event["ts"] = round(time.time(), 6)
    return event


class MemorySink(EventSink):
    """Collects events in a list — tests and in-process inspection."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(_stamp(dict(event)))

    def of_type(self, event_type: str) -> list[dict]:
        return [e for e in self.events if e.get("event") == event_type]


class JsonlSink(EventSink):
    """Appends one JSON object per line to a file (or open stream).

    Writes are line-buffered-ish (flushed per event) so a crashed or
    killed process leaves a readable prefix; partial trailing lines are
    tolerated by the schema validator.
    """

    def __init__(self, path_or_stream) -> None:
        self._owns_stream = isinstance(path_or_stream, (str, bytes)) or hasattr(
            path_or_stream, "__fspath__"
        )
        if self._owns_stream:
            self._stream: Optional[IO[str]] = open(path_or_stream, "a", encoding="utf-8")
        else:
            self._stream = path_or_stream

    def emit(self, event: dict) -> None:
        stream = self._stream
        if stream is None:
            return
        stream.write(json.dumps(_stamp(dict(event)), separators=(",", ":")) + "\n")
        stream.flush()

    def close(self) -> None:
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None


class TeeSink(EventSink):
    """Fans one event stream out to several sinks."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
