"""Request-scoped tracing, live telemetry aggregation, SLO watchdog.

Three layers on top of the flat event stream (docs/observability.md):

- **Correlated tracing** — :class:`TraceContext` carries a ``trace_id``
  plus hierarchical ``span_id`` / ``parent_span_id`` strings and stamps
  them onto every event a :class:`~repro.obs.MetricsRegistry` emits.
  Ids are deterministic: trace ids come from a session-scoped
  :class:`TraceIdAllocator` counter and span ids are derived purely from
  the request *structure* (``s0`` → ``s0.w2a1`` for worker slice 2,
  attempt 1; ``.resume`` for a checkpoint continuation; ``.dup<i>`` for
  a batch-dedup follower) — never from wall clock or randomness, so
  same-seed reruns produce bit-identical ids and forked workers can
  stamp their own spans without coordination (the DET001 invariant).
  The context travels the parallel result pipe inside
  ``_shared["observe"]`` and rides :class:`SearchCheckpoint.trace`
  payloads, so one ``trace_id`` reconstructs the full request tree
  including crash-retry and resume lineage.
- **Streaming aggregation** — :class:`TelemetryAggregator` is an
  :class:`~repro.obs.EventSink` that folds the stream into rolling
  windows keyed on *completed requests* (deterministic, unlike
  wall-clock windows): fixed-bucket :class:`StreamingHistogram` latency
  percentiles (p50/p95/p99), cache hit-rate, recursive-calls-per-
  embedding, worker crash/retry/resume rates.  Every closed window emits
  one schema'd ``telemetry.window`` event; :meth:`export` returns the
  JSON document ``scripts/check_metrics_schema.py`` validates.
- **SLO watchdog** — :class:`SloWatchdog` evaluates declarative
  :class:`SloRule` thresholds against each closed window, emits
  ``telemetry.alert`` events, and invokes subscribed callbacks (the hook
  ``ResilientMatcher``/``BatchEngine`` can attach ops reactions to).

The CLI surfaces are ``repro trace show`` (tree-rendered request
timeline, :func:`render_trace_tree`) and ``repro top`` (live window /
alert summary, :func:`render_top`).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from .schema import validate_event
from .sinks import EventSink

#: Schema tag of the JSON document :meth:`TelemetryAggregator.export`
#: produces (recognized by ``scripts/check_metrics_schema.py``).
TELEMETRY_SCHEMA = "repro.obs.telemetry"

#: Default latency bucket upper bounds (seconds), geometric from 0.1 ms
#: to one minute.  Percentile estimates report a bucket's upper edge, so
#: they are conservative and monotone; values past the last bound fall
#: into an overflow bucket that reports the observed maximum.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


# ----------------------------------------------------------------------
# Correlated tracing
# ----------------------------------------------------------------------
class TraceContext:
    """One span of one request: ``trace_id`` + hierarchical span ids.

    Contexts are cheap immutable-by-convention triples.  :meth:`child`
    derives a sub-span by appending a *structural* name segment to the
    span id (worker slice, attempt, resume, dedup follower), which keeps
    ids deterministic and fork-safe; :meth:`stamp` writes the three
    correlation fields onto an event with ``setdefault`` semantics so a
    supervisor re-emitting a worker's already-stamped event never
    overwrites the worker's span.
    """

    __slots__ = ("trace_id", "span_id", "parent_span_id")

    def __init__(
        self,
        trace_id: str,
        span_id: str = "s0",
        parent_span_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_span_id = parent_span_id

    def child(self, name: str) -> "TraceContext":
        """A sub-span named by request structure (e.g. ``w0a1``)."""
        return TraceContext(self.trace_id, f"{self.span_id}.{name}", self.span_id)

    def stamp(self, event: dict) -> dict:
        """Add the correlation fields to ``event`` (existing ones win)."""
        event.setdefault("trace_id", self.trace_id)
        event.setdefault("span_id", self.span_id)
        if self.parent_span_id is not None:
            event.setdefault("parent_span_id", self.parent_span_id)
        return event

    # -- serialization (worker pipes, checkpoint payloads) --------------
    def to_dict(self) -> dict:
        payload = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_span_id is not None:
            payload["parent_span_id"] = self.parent_span_id
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload.get("span_id", "s0")),
            parent_span_id=(
                str(payload["parent_span_id"])
                if payload.get("parent_span_id") is not None
                else None
            ),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.parent_span_id == other.parent_span_id
        )

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id!r}, {self.span_id!r})"


class TraceIdAllocator:
    """Session-scoped deterministic trace-id source (``t000001``, ...).

    A plain counter — never wall clock, never randomness — so the same
    request sequence against the same session yields the same ids on
    every rerun (DET001).
    """

    __slots__ = ("prefix", "_next")

    def __init__(self, prefix: str = "t") -> None:
        self.prefix = prefix
        self._next = 0

    def allocate(self) -> TraceContext:
        """The next request's root context (span ``s0``)."""
        self._next += 1
        return TraceContext(f"{self.prefix}{self._next:06d}")


def resumed_context(payload: Optional[dict], name: str = "resume") -> Optional[TraceContext]:
    """The context a resumed run should adopt from a checkpoint's stored
    trace payload: same ``trace_id``, a ``.resume`` child of the span the
    checkpoint was captured under — which is how retry/resume lineage
    stays inside one trace.  ``None`` in, ``None`` out."""
    if not payload:
        return None
    return TraceContext.from_dict(payload).child(name)


# ----------------------------------------------------------------------
# Streaming histograms
# ----------------------------------------------------------------------
class StreamingHistogram:
    """Fixed-bucket histogram for percentile estimation over a stream.

    O(1) memory, O(log buckets) per observation, deterministic: the
    estimate for a quantile is the upper edge of the bucket holding it
    (the overflow bucket reports the observed maximum), so estimates
    never understate and are monotone in the quantile.
    """

    __slots__ = ("bounds", "counts", "total", "_max")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS) -> None:
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # + overflow bucket
        self.total = 0
        self._max = 0.0

    def add(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        if value > self._max:
            self._max = value

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile estimate (``q`` in [0, 100])."""
        if self.total == 0:
            return None
        rank = max(1, -(-int(q * self.total) // 100))  # ceil(q/100 * total)
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                if index < len(self.bounds):
                    return min(self.bounds[index], self._max) or self.bounds[index]
                return self._max
        return self._max  # pragma: no cover - rank <= total by construction

    @property
    def max_value(self) -> float:
        return self._max


# ----------------------------------------------------------------------
# SLO watchdog
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SloRule:
    """One declarative threshold over a window summary metric.

    ``op`` is the *allowed* relation: ``"<="`` means the metric must stay
    at or below ``threshold`` (a ceiling — p95 latency, crash rate);
    ``">="`` means it must stay at or above (a floor — cache hit-rate).
    A window missing the metric (e.g. no cache lookups yet) never fires.
    """

    name: str
    metric: str
    op: str  # "<=" (ceiling) | ">=" (floor)
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ValueError(f"SloRule op must be '<=' or '>=', got {self.op!r}")

    def breached(self, window: dict) -> bool:
        value = window.get(self.metric)
        if value is None:
            return False
        return value > self.threshold if self.op == "<=" else value < self.threshold


def default_slo_rules(
    p95_seconds: Optional[float] = None,
    hit_rate_floor: Optional[float] = None,
    crash_rate_ceiling: Optional[float] = None,
) -> list[SloRule]:
    """Rules for the three thresholds the serving stack cares about;
    ``None`` thresholds are simply omitted."""
    rules = []
    if p95_seconds is not None:
        rules.append(SloRule("p95_latency", "p95_seconds", "<=", p95_seconds))
    if hit_rate_floor is not None:
        rules.append(SloRule("cache_hit_rate", "cache_hit_rate", ">=", hit_rate_floor))
    if crash_rate_ceiling is not None:
        rules.append(SloRule("worker_crash_rate", "crash_rate", "<=", crash_rate_ceiling))
    return rules


class SloWatchdog:
    """Evaluates :class:`SloRule` thresholds against each closed window.

    Alerts are returned (and kept in :attr:`alerts`) as ready-to-emit
    ``telemetry.alert`` event dicts; :meth:`subscribe` registers
    callbacks invoked with each alert — the hook a self-driving ops loop
    (or ``ResilientMatcher``/``BatchEngine``) attaches reactions to.
    """

    def __init__(self, rules: Iterable[SloRule] = ()) -> None:
        self.rules: list[SloRule] = list(rules)
        self.alerts: list[dict] = []
        self._callbacks: list[Callable[[dict], None]] = []

    def subscribe(self, callback: Callable[[dict], None]) -> None:
        self._callbacks.append(callback)

    def evaluate(self, window: dict) -> list[dict]:
        fired: list[dict] = []
        for rule in self.rules:
            if not rule.breached(window):
                continue
            alert = {
                "event": "telemetry.alert",
                "rule": rule.name,
                "metric": rule.metric,
                "value": round(float(window[rule.metric]), 6),
                "threshold": rule.threshold,
                "op": rule.op,
                "window": int(window.get("index", 0)),
            }
            fired.append(alert)
        self.alerts.extend(fired)
        for alert in fired:
            for callback in self._callbacks:
                callback(alert)
        return fired


# ----------------------------------------------------------------------
# Streaming aggregation
# ----------------------------------------------------------------------
class _WindowState:
    """Accumulators for one telemetry window (and for the totals)."""

    __slots__ = (
        "requests", "errors", "latency", "cache_hits", "cache_misses",
        "recursive_calls", "embeddings", "worker_outcomes", "worker_crashes",
        "worker_retries", "resumes",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.latency = StreamingHistogram()
        self.cache_hits = 0
        self.cache_misses = 0
        self.recursive_calls = 0
        self.embeddings = 0
        self.worker_outcomes = 0
        self.worker_crashes = 0
        self.worker_retries = 0
        self.resumes = 0

    @property
    def busy(self) -> bool:
        return bool(
            self.requests or self.worker_outcomes or self.resumes or self.errors
        )

    def summary(self, index: int) -> dict:
        out: dict = {"index": index, "requests": self.requests, "errors": self.errors}
        for q, key in ((50, "p50_seconds"), (95, "p95_seconds"), (99, "p99_seconds")):
            value = self.latency.percentile(q)
            if value is not None:
                out[key] = round(value, 6)
        out["cache_hits"] = self.cache_hits
        out["cache_misses"] = self.cache_misses
        lookups = self.cache_hits + self.cache_misses
        if lookups:
            out["cache_hit_rate"] = round(self.cache_hits / lookups, 6)
        out["recursive_calls"] = self.recursive_calls
        out["embeddings"] = self.embeddings
        if self.embeddings:
            out["calls_per_embedding"] = round(
                self.recursive_calls / self.embeddings, 6
            )
        out["worker_outcomes"] = self.worker_outcomes
        out["worker_crashes"] = self.worker_crashes
        out["worker_retries"] = self.worker_retries
        if self.worker_outcomes:
            out["crash_rate"] = round(self.worker_crashes / self.worker_outcomes, 6)
        out["resumes"] = self.resumes
        return out


#: Worker statuses counted as crashes for the crash-rate metric.
_CRASH_STATUSES = frozenset({"crashed", "error", "killed"})


class TelemetryAggregator(EventSink):
    """Folds an event stream into rolling windows, live.

    Attach it as (part of) a registry's sink — typically
    ``TeeSink(jsonl_sink, aggregator)`` with ``out=jsonl_sink`` so the
    ``telemetry.window`` / ``telemetry.alert`` snapshots land in the same
    JSONL file as the raw events — or feed it a recorded stream offline
    (``repro top`` does exactly that).

    Parameters
    ----------
    window_requests:
        Close a window after this many completed requests
        (``batch.request`` / ``run_end`` events).  Request-count keying
        keeps window boundaries deterministic across reruns.
    out:
        Optional sink receiving the ``telemetry.window`` and
        ``telemetry.alert`` events (never fed back into this aggregator).
    watchdog:
        Optional :class:`SloWatchdog` evaluated on every closed window.
    history:
        Closed-window summaries retained for :meth:`export` / rendering.
    """

    def __init__(
        self,
        window_requests: int = 16,
        out: Optional[EventSink] = None,
        watchdog: Optional[SloWatchdog] = None,
        history: int = 256,
    ) -> None:
        if window_requests < 1:
            raise ValueError("window_requests must be >= 1")
        if history < 1:
            raise ValueError("history must be >= 1")
        self.window_requests = window_requests
        self.out = out
        self.watchdog = watchdog if watchdog is not None else SloWatchdog()
        self.history = history
        self.windows: list[dict] = []
        self._dropped_windows = 0
        self._window = _WindowState()
        self._totals = _WindowState()
        self._next_index = 0

    # -- consumption ---------------------------------------------------
    def emit(self, event: dict) -> None:
        event_type = event.get("event")
        if event_type in ("batch.request", "run_end"):
            self._observe_request(event, event_type)
            if self._window.requests >= self.window_requests:
                self._close_window()
        elif event_type == "worker":
            self._observe_worker(event)
        elif event_type == "checkpoint.resume":
            self._window.resumes += 1
            self._totals.resumes += 1
        # telemetry.* events are our own output; everything else (spans,
        # counters, progress, ...) is per-request detail the windows
        # already capture through the request summaries.

    def _observe_request(self, event: dict, event_type: str) -> None:
        for state in (self._window, self._totals):
            state.requests += 1
            if event_type == "batch.request":
                if event.get("status") != "ok":
                    state.errors += 1
                cache = event.get("cache")
                if cache == "hit":
                    state.cache_hits += 1
                elif cache == "miss":
                    state.cache_misses += 1
                latency = event.get("elapsed_seconds")
            else:  # run_end: one whole-search completion
                if not event.get("solved", True):
                    state.errors += 1
                latency = event.get("spans", {}).get("search")
            if isinstance(latency, (int, float)) and not isinstance(latency, bool):
                state.latency.add(float(latency))
            calls = event.get("recursive_calls")
            if isinstance(calls, int) and not isinstance(calls, bool):
                state.recursive_calls += calls
            found = event.get("embeddings")
            if isinstance(found, int) and not isinstance(found, bool):
                state.embeddings += found

    def _observe_worker(self, event: dict) -> None:
        for state in (self._window, self._totals):
            state.worker_outcomes += 1
            if event.get("status") in _CRASH_STATUSES:
                state.worker_crashes += 1
            attempts = event.get("attempts")
            if isinstance(attempts, int) and attempts > 1:
                state.worker_retries += attempts - 1

    # -- windows -------------------------------------------------------
    def _close_window(self) -> None:
        summary = self._window.summary(self._next_index)
        self._next_index += 1
        self._window = _WindowState()
        alerts = self.watchdog.evaluate(summary)
        summary["alerts"] = len(alerts)
        self.windows.append(summary)
        if len(self.windows) > self.history:
            # Bounded memory for long-lived sessions; export() reports
            # how many early windows were dropped rather than hiding it.
            self._dropped_windows += len(self.windows) - self.history
            del self.windows[: len(self.windows) - self.history]
        if self.out is not None:
            self.out.emit({"event": "telemetry.window", **summary})
            for alert in alerts:
                self.out.emit(dict(alert))

    def flush(self) -> None:
        """Close the current window early if it saw any activity."""
        if self._window.busy:
            self._close_window()

    def close(self) -> None:
        self.flush()

    # -- reporting -----------------------------------------------------
    def summary(self) -> dict:
        """Rolling totals across every window (closed and current)."""
        totals = self._totals.summary(index=self._next_index)
        totals["windows"] = len(self.windows) + self._dropped_windows
        totals["alerts"] = len(self.watchdog.alerts)
        del totals["index"]
        return totals

    def export(self) -> dict:
        """The JSON document validated by ``check_metrics_schema.py``."""
        return {
            "schema": TELEMETRY_SCHEMA,
            "window_requests": self.window_requests,
            "dropped_windows": self._dropped_windows,
            "windows": [dict(w) for w in self.windows],
            "alerts": [
                {k: v for k, v in alert.items() if k != "event"}
                for alert in self.watchdog.alerts
            ],
            "totals": self.summary(),
        }

    def export_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.export(), stream, indent=2)
            stream.write("\n")


def validate_export(path) -> list[str]:
    """Validate a :meth:`TelemetryAggregator.export` JSON document.

    Windows and alerts are checked against the ``telemetry.window`` /
    ``telemetry.alert`` event schemas (the export rows are exactly the
    event payloads minus the ``event``/``ts`` tags)."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            document = json.load(stream)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"not a readable JSON document: {exc}"]
    if not isinstance(document, dict) or document.get("schema") != TELEMETRY_SCHEMA:
        return [f"missing schema tag {TELEMETRY_SCHEMA!r}"]
    errors: list[str] = []
    windows = document.get("windows")
    if not isinstance(windows, list):
        errors.append("'windows' must be an array")
        windows = []
    for position, window in enumerate(windows):
        if not isinstance(window, dict):
            errors.append(f"windows[{position}]: not an object")
            continue
        for error in validate_event({"event": "telemetry.window", **window}):
            errors.append(f"windows[{position}]: {error}")
    alerts = document.get("alerts")
    if not isinstance(alerts, list):
        errors.append("'alerts' must be an array")
        alerts = []
    for position, alert in enumerate(alerts):
        if not isinstance(alert, dict):
            errors.append(f"alerts[{position}]: not an object")
            continue
        for error in validate_event({"event": "telemetry.alert", **alert}):
            errors.append(f"alerts[{position}]: {error}")
    if not isinstance(document.get("totals"), dict):
        errors.append("'totals' must be an object")
    return errors


# ----------------------------------------------------------------------
# Offline tooling: trace trees and the `repro top` report
# ----------------------------------------------------------------------
def read_events(path) -> list[dict]:
    """Parse a metrics JSONL file tolerantly (torn tail lines skipped)."""
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    return events


def collect_traces(events: Iterable[dict]) -> dict[str, list[dict]]:
    """Group events by ``trace_id`` (insertion order preserved; events
    without a trace id — pre-tracing streams, batch-level events — are
    left out)."""
    traces: dict[str, list[dict]] = {}
    for event in events:
        trace_id = event.get("trace_id")
        if isinstance(trace_id, str):
            traces.setdefault(trace_id, []).append(event)
    return traces


def _span_parent(span_id: str, explicit: Optional[str]) -> Optional[str]:
    if explicit:
        return explicit
    if "." in span_id:
        return span_id.rsplit(".", 1)[0]
    return None


def _describe_span(events: list[dict]) -> list[str]:
    """Per-span attribution lines: what ran here, phase timings, prunes."""
    lines: list[str] = []
    spans: dict[str, float] = {}
    counters: dict[str, int] = {}
    progress_beats = 0
    for event in events:
        kind = event.get("event")
        if kind == "run_start":
            lines.append(
                f"run_start algorithm={event.get('algorithm')} "
                f"|Vq|={event.get('query_vertices')} |Vd|={event.get('data_vertices')}"
            )
        elif kind == "batch.request":
            parts = [
                f"request[{event.get('index')}]",
                f"status={event.get('status')}",
                f"cache={event.get('cache')}",
            ]
            if event.get("tag") is not None:
                parts.insert(1, f"tag={event['tag']}")
            if event.get("elapsed_seconds") is not None:
                parts.append(f"elapsed={event['elapsed_seconds']:.4f}s")
            if event.get("embeddings") is not None:
                parts.append(f"embeddings={event['embeddings']}")
            if event.get("error"):
                parts.append(f"error={event['error']}")
            lines.append(" ".join(parts))
        elif kind == "worker":
            parts = [
                f"worker slice={event.get('slice')}",
                f"status={event.get('status')}",
                f"attempts={event.get('attempts')}",
            ]
            if event.get("resumed_from_calls"):
                parts.append(f"resumed_from_calls={event['resumed_from_calls']}")
            if event.get("error"):
                parts.append(f"error={event['error']}")
            lines.append(" ".join(parts))
        elif kind == "checkpoint.save":
            lines.append(
                f"checkpoint.save reason={event.get('reason')} "
                f"calls={event.get('recursive_calls')} depth={event.get('depth')}"
            )
        elif kind == "checkpoint.resume":
            lines.append(
                f"checkpoint.resume calls={event.get('recursive_calls')} "
                f"depth={event.get('depth')} (continuing a suspended search)"
            )
        elif kind == "degrade":
            lines.append(
                f"degrade stage={event.get('stage')}: {event.get('message')}"
            )
        elif kind == "run_end":
            lines.append(
                f"run_end embeddings={event.get('embeddings')} "
                f"calls={event.get('recursive_calls')} solved={event.get('solved')}"
            )
        elif kind == "span":
            name = event.get("name")
            if isinstance(name, str):
                spans[name] = spans.get(name, 0.0) + float(event.get("seconds", 0.0))
        elif kind == "counters":
            payload = event.get("counters")
            if isinstance(payload, dict):
                for key, value in payload.items():
                    if isinstance(value, int):
                        counters[key] = counters.get(key, 0) + value
        elif kind == "progress":
            progress_beats += 1
    if spans:
        rendered = ", ".join(
            f"{name} {seconds * 1000.0:.2f}ms" for name, seconds in spans.items()
        )
        lines.append(f"phases: {rendered}")
    pruned = {k: v for k, v in counters.items() if v and k.startswith("prune_")}
    examined = counters.get("candidates_examined", 0)
    if pruned or examined:
        rendered = " ".join(f"{k[len('prune_'):]}={v}" for k, v in sorted(pruned.items()))
        lines.append(f"prunes: examined={examined} {rendered}".rstrip())
    extras = {
        k: v
        for k, v in counters.items()
        if v and k in ("cache_hit", "cache_miss", "resumes", "fs_cuts")
    }
    if extras:
        lines.append("counters: " + " ".join(f"{k}={v}" for k, v in sorted(extras.items())))
    if progress_beats:
        lines.append(f"progress: {progress_beats} heartbeat(s)")
    return lines


def render_trace_tree(events: Iterable[dict], trace_id: str) -> str:
    """Tree-rendered timeline of one trace (``repro trace show --trace``)."""
    mine = [e for e in events if e.get("trace_id") == trace_id]
    if not mine:
        return f"trace {trace_id}: no events"
    by_span: dict[str, list[dict]] = {}
    parents: dict[str, Optional[str]] = {}
    for event in mine:
        span_id = event.get("span_id")
        if not isinstance(span_id, str):
            span_id = "(unstamped)"
        by_span.setdefault(span_id, []).append(event)
        parents.setdefault(span_id, _span_parent(span_id, event.get("parent_span_id")))
    children: dict[Optional[str], list[str]] = {}
    for span_id in by_span:
        parent = parents.get(span_id)
        if parent is not None and parent not in by_span:
            parent = None  # orphan (parent emitted nothing): promote to root
        children.setdefault(parent, []).append(span_id)
    for sibling_list in children.values():
        sibling_list.sort()
    lines = [f"trace {trace_id} ({len(mine)} events)"]

    def walk(span_id: str, prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        lines.append(f"{prefix}{connector}{span_id}")
        detail_prefix = prefix + ("   " if is_last else "│  ")
        kids = children.get(span_id, [])
        for detail in _describe_span(by_span[span_id]):
            lines.append(f"{detail_prefix}   {detail}")
        for position, kid in enumerate(kids):
            walk(kid, detail_prefix, position == len(kids) - 1)

    roots = children.get(None, [])
    for position, root in enumerate(roots):
        walk(root, "", position == len(roots) - 1)
    return "\n".join(lines)


def render_trace_list(traces: dict[str, list[dict]]) -> str:
    """One summary line per trace (``repro trace show`` without --trace)."""
    if not traces:
        return "no traced events (was the stream recorded with an observer attached?)"
    lines = [f"{'trace':<10s} {'events':>6s} {'spans':>5s}  summary"]
    for trace_id, events in traces.items():
        spans = {e.get("span_id") for e in events if e.get("span_id")}
        summary = ""
        for event in events:
            if event.get("event") == "batch.request":
                summary = (
                    f"request[{event.get('index')}]"
                    + (f" tag={event['tag']}" if event.get("tag") is not None else "")
                    + f" status={event.get('status')} cache={event.get('cache')}"
                )
                break
            if event.get("event") == "run_start":
                summary = f"match algorithm={event.get('algorithm')}"
        retries = sum(
            1 for e in events if e.get("event") == "worker" and e.get("attempts", 1) > 1
        )
        resumes = sum(1 for e in events if e.get("event") == "checkpoint.resume")
        if retries:
            summary += f" retries={retries}"
        if resumes:
            summary += f" resumes={resumes}"
        lines.append(f"{trace_id:<10s} {len(events):>6d} {len(spans):>5d}  {summary}")
    return "\n".join(lines)


def render_top(aggregator: TelemetryAggregator, windows: int = 8) -> str:
    """Terminal summary of live windows and firing alerts (``repro top``)."""
    totals = aggregator.summary()
    lines = [
        "telemetry: "
        f"{totals['requests']} request(s), {totals['windows']} window(s), "
        f"{totals['alerts']} alert(s)"
    ]
    def fmt(value, pattern="{:.4f}", missing="-"):
        return pattern.format(value) if value is not None else missing

    lines.append(
        "totals:    "
        f"p50={fmt(totals.get('p50_seconds'))}s "
        f"p95={fmt(totals.get('p95_seconds'))}s "
        f"p99={fmt(totals.get('p99_seconds'))}s "
        f"hit_rate={fmt(totals.get('cache_hit_rate'), '{:.1%}')} "
        f"crash_rate={fmt(totals.get('crash_rate'), '{:.1%}')} "
        f"resumes={totals.get('resumes', 0)}"
    )
    recent = aggregator.windows[-windows:]
    if recent:
        lines.append(
            f"{'window':>6s} {'req':>5s} {'err':>4s} {'p50(s)':>8s} {'p95(s)':>8s} "
            f"{'p99(s)':>8s} {'hit%':>6s} {'crash%':>7s} {'resume':>6s} {'alert':>5s}"
        )
        for window in recent:
            lines.append(
                f"{window['index']:>6d} {window['requests']:>5d} "
                f"{window.get('errors', 0):>4d} "
                f"{fmt(window.get('p50_seconds'), '{:.4f}'):>8s} "
                f"{fmt(window.get('p95_seconds'), '{:.4f}'):>8s} "
                f"{fmt(window.get('p99_seconds'), '{:.4f}'):>8s} "
                f"{fmt(window.get('cache_hit_rate'), '{:.1%}'):>6s} "
                f"{fmt(window.get('crash_rate'), '{:.1%}'):>7s} "
                f"{window.get('resumes', 0):>6d} {window.get('alerts', 0):>5d}"
            )
    for alert in aggregator.watchdog.alerts:
        relation = ">" if alert["op"] == "<=" else "<"
        lines.append(
            f"ALERT [w{alert['window']}] {alert['rule']}: "
            f"{alert['metric']}={alert['value']} {relation} "
            f"allowed {alert['op']} {alert['threshold']}"
        )
    return "\n".join(lines)
