"""Sampling search-tree tracer: Figure-6 inspection at real scale.

:class:`repro.core.trace.SearchTracer` records *every* node, which is
perfect for worked examples and hopeless beyond toy queries (the Twitter
runs take 10^7+ recursive calls).  :class:`SamplingTracer` plugs into the
same engine hook interface (``enter``/``leave``/``conflict``/
``emptyset``/``pruned``) but keeps a bounded, flat record:

- every ``sample_every``-th entered node (systematic sampling, so deep
  and shallow regions are represented proportionally to time spent);
- **all** failure leaves (conflict and emptyset) — these are what the
  failing-set analysis of §6 and Arai et al.'s search-failure mining
  consume, and they are much rarer than internal nodes;
- Lemma 6.1-pruned siblings, *counted* but not materialized (a single
  prune event can cover thousands of siblings).

Records are flat ``TraceRecord`` rows with depth (not a linked tree), so
memory is O(recorded), and an optional sink receives each record as a
``trace`` event.  ``max_records`` caps materialization; past it records
are dropped and counted in ``dropped``.

The tracer additionally folds every entered node into a *query-vertex
stack* histogram — ``"u0;u2;u3" -> count`` — which :meth:`folded_lines`
exports in the ``flamegraph.pl`` collapsed-stack format, so standard
flame-graph tooling can render where the search tree spends its nodes
(distinct stacks are bounded by query-vertex orderings, not by data
vertices, and additionally capped by ``max_folded_stacks``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .sinks import EventSink


@dataclass(frozen=True)
class TraceRecord:
    """One sampled search-tree observation.

    ``kind`` is ``"node"`` (sampled internal entry), ``"conflict"``,
    ``"emptyset"`` or ``"pruned"``.  ``data_vertex`` is -1 for emptyset
    leaves (no candidate was available to name).
    """

    kind: str
    query_vertex: int
    data_vertex: int
    depth: int
    failing_set: Optional[int] = None


class SamplingTracer:
    """Bounded tracer safe to leave on for production-sized searches.

    Parameters
    ----------
    sample_every:
        Record one of every N entered nodes (N=1 records all entries,
        degenerating to a flat version of ``SearchTracer``).
    sink:
        Optional event sink; each record also emits a ``trace`` event.
    max_records:
        Hard cap on materialized records; ``dropped`` counts the rest.
    """

    def __init__(
        self,
        sample_every: int = 1024,
        sink: Optional[EventSink] = None,
        max_records: int = 100_000,
        max_folded_stacks: int = 10_000,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.sink = sink
        self.max_records = max_records
        self.max_folded_stacks = max_folded_stacks
        self.records: list[TraceRecord] = []
        self.dropped = 0
        self.nodes_seen = 0
        self.pruned_seen = 0
        self.folded: dict[tuple[int, ...], int] = {}
        self.folded_dropped = 0
        self._countdown = sample_every
        self._depth = 0
        self._stack: list[int] = []

    # -- engine hooks (same protocol as core.trace.SearchTracer) --------
    def enter(self, query_vertex: int, data_vertex: int) -> None:
        self._depth += 1
        self.nodes_seen += 1
        self._stack.append(query_vertex)
        key = tuple(self._stack)
        count = self.folded.get(key)
        if count is not None:
            self.folded[key] = count + 1
        elif len(self.folded) < self.max_folded_stacks:
            self.folded[key] = 1
        else:
            self.folded_dropped += 1
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.sample_every
            self._record(TraceRecord("node", query_vertex, data_vertex, self._depth))

    def leave(self, failing_set_mask: Optional[int], found_embedding: bool) -> None:
        self._depth -= 1
        if self._stack:
            self._stack.pop()

    def conflict(self, query_vertex: int, data_vertex: int, contribution_mask: int) -> None:
        self._record(
            TraceRecord(
                "conflict",
                query_vertex,
                data_vertex,
                self._depth + 1,
                failing_set=contribution_mask,
            )
        )

    def emptyset(self, query_vertex: int) -> None:
        self._record(TraceRecord("emptyset", query_vertex, -1, self._depth))

    def pruned(self, query_vertex: int, data_vertex: int) -> None:
        # Counted, not materialized: one Lemma 6.1 cut can prune an
        # arbitrarily long sibling tail.
        self.pruned_seen += 1

    # -- internals ------------------------------------------------------
    def _record(self, record: TraceRecord) -> None:
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)
        if self.sink is not None:
            event = {
                "event": "trace",
                "kind": record.kind,
                "query_vertex": record.query_vertex,
                "data_vertex": record.data_vertex,
                "depth": record.depth,
            }
            if record.failing_set is not None:
                event["failing_set"] = record.failing_set
            self.sink.emit(event)

    # -- reporting ------------------------------------------------------
    def folded_stacks(self) -> dict[str, int]:
        """Query-vertex stack histogram: ``"u0;u2;u3" -> entered count``."""
        return {
            ";".join(f"u{q}" for q in key): count for key, count in self.folded.items()
        }

    def folded_lines(self) -> list[str]:
        """``flamegraph.pl``-compatible collapsed-stack lines, sorted so
        the export is deterministic: ``u0;u2;u3 128``."""
        return [f"{stack} {count}" for stack, count in sorted(self.folded_stacks().items())]

    def write_folded(self, path) -> None:
        """Write :meth:`folded_lines` to ``path`` (feed to flamegraph.pl)."""
        with open(path, "w", encoding="utf-8") as stream:
            for line in self.folded_lines():
                stream.write(line + "\n")

    def failure_leaves(self) -> list[TraceRecord]:
        return [r for r in self.records if r.kind in ("conflict", "emptyset")]

    def summary(self) -> dict:
        by_kind: dict[str, int] = {}
        for record in self.records:
            by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
        return {
            "nodes_seen": self.nodes_seen,
            "recorded": len(self.records),
            "dropped": self.dropped,
            "pruned_seen": self.pruned_seen,
            "by_kind": by_kind,
            "folded_stacks": len(self.folded),
            "folded_dropped": self.folded_dropped,
        }
