"""EXPLAIN / EXPLAIN ANALYZE: static query plans joined with run actuals.

Two levels of forensics for one query:

- :func:`explain` (EXPLAIN) runs the preprocessing pipeline only —
  BuildDAG + BuildCS — and reports the decisions the paper's heuristics
  made: the chosen root and why, the DAG orientation, candidate-set
  sizes per refinement step, and the weight array driving the path-size
  order.  This is the :class:`QueryPlan` that historically lived at
  ``repro.core.explain`` (still importable from there, deprecated).
- :func:`explain_analyze` (EXPLAIN ANALYZE) additionally *runs* the
  search under a dedicated :class:`~repro.obs.MetricsRegistry` and joins
  the plan with the actuals — per-query-vertex extensions, conflicts,
  emptyset failures and failing-set prunes (the
  :data:`~repro.obs.VERTEX_COUNTERS` dimensions), phase spans, and the
  Lemma 6.1 backjump accounting (``fs_cuts`` cuts, ``prune_failing_set``
  skipped subtrees) — into an :class:`ExplainReport` rendered as text or
  as a schema-tagged JSON document (:data:`repro.obs.schema.EXPLAIN_SCHEMA`,
  validated by ``scripts/check_metrics_schema.py``).
- :func:`diff_reports` classifies per-vertex differences between two
  reports (runs, matcher variants, or before/after a change): candidate
  blowups, order inversions, prune-rate collapses.

The per-vertex actuals in a report are copied verbatim from the
registry's :meth:`~repro.obs.MetricsRegistry.snapshot` for the run, so
report totals always equal the registry's vertex-counter totals exactly.
See ``docs/explain.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.candidate_space import build_candidate_space
from ..core.config import MatchConfig
from ..core.dag import build_dag, select_root
from ..core.filters import initial_candidate_count
from ..core.matcher import DAFMatcher
from ..core.ordering import compute_weight_array
from ..graph.graph import Graph
from ..interfaces import MatchOptions, MatchRequest, MatchResult
from .metrics import VERTEX_COUNTERS, MetricsRegistry
from .schema import EXPLAIN_SCHEMA

#: Candidate-trail rendering cap: a per-step chain longer than this is
#: elided to its first/last steps (full detail stays in the JSON report).
_TRAIL_HEAD = 3
_TRAIL_TAIL = 2
_TRAIL_MAX = _TRAIL_HEAD + _TRAIL_TAIL + 1


@dataclass
class QueryPlan:
    """A human-readable account of DAF's preprocessing decisions."""

    root: int
    root_scores: dict[int, float]
    dag_edges: list[tuple[int, int]]
    topological_order: tuple[int, ...]
    candidate_sizes_initial: dict[int, int]
    candidate_sizes_per_step: list[dict[int, int]]
    cs_size: int
    cs_edges: int
    is_negative: bool
    weight_summary: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: Final per-vertex |C(u)| after refinement (may differ from the last
    #: per-step entry when ``refine_to_fixpoint`` runs extra passes).
    candidate_sizes_final: dict[int, int] = field(default_factory=dict)

    @property
    def filtering_rate(self) -> float:
        """Fraction of initial candidates removed by DAG-graph DP."""
        initial = sum(self.candidate_sizes_initial.values())
        if initial == 0:
            return 0.0
        return 1.0 - self.cs_size / initial

    def render(self) -> str:
        """Multi-line text report."""
        lines = [
            f"root: u{self.root} "
            f"(score |C_ini|/deg = {self.root_scores[self.root]:.3f}, the minimum)",
            f"DAG edges ({len(self.dag_edges)}): "
            + ", ".join(f"u{p}->u{c}" for p, c in self.dag_edges),
            f"matching follows topological orders of: {self.topological_order}",
            "candidate sets:",
        ]
        for u in sorted(self.candidate_sizes_initial):
            steps = [str(step[u]) for step in self.candidate_sizes_per_step]
            if len(steps) > _TRAIL_MAX:
                elided = len(steps) - _TRAIL_HEAD - _TRAIL_TAIL
                steps = (
                    steps[:_TRAIL_HEAD]
                    + [f"...({elided} elided)..."]
                    + steps[-_TRAIL_TAIL:]
                )
            trail = " -> ".join(steps)
            lines.append(
                f"  C(u{u}): {self.candidate_sizes_initial[u]} initial -> {trail}"
            )
        lines.append(
            f"CS: {self.cs_size} candidates, {self.cs_edges} edges "
            f"({100 * self.filtering_rate:.1f}% filtered)"
        )
        if self.is_negative:
            lines.append("NEGATIVE: some candidate set is empty; no search needed")
        elif self.weight_summary:
            lines.append("path-size weights (min, max) per vertex:")
            for u, (low, high) in sorted(self.weight_summary.items()):
                lines.append(f"  W(u{u}): {low}..{high}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready payload (int keys become strings, tuples lists)."""
        return {
            "root": self.root,
            "root_scores": {str(u): s for u, s in sorted(self.root_scores.items())},
            "dag_edges": [list(edge) for edge in self.dag_edges],
            "topological_order": list(self.topological_order),
            "candidate_sizes_initial": {
                str(u): n for u, n in sorted(self.candidate_sizes_initial.items())
            },
            "candidate_sizes_per_step": [
                {str(u): n for u, n in sorted(step.items())}
                for step in self.candidate_sizes_per_step
            ],
            "candidate_sizes_final": {
                str(u): n for u, n in sorted(self.candidate_sizes_final.items())
            },
            "cs_size": self.cs_size,
            "cs_edges": self.cs_edges,
            "is_negative": self.is_negative,
            "weight_summary": {
                str(u): list(bounds) for u, bounds in sorted(self.weight_summary.items())
            },
        }


def explain(query: Graph, data: Graph, config: MatchConfig | None = None) -> QueryPlan:
    """Build the preprocessing structures and report every decision."""
    cfg = config if config is not None else MatchConfig()
    root_scores = {}
    for u in query.vertices():
        degree = query.degree(u)
        count = initial_candidate_count(query, data, u)
        root_scores[u] = count / degree if degree else float(count)
    root = select_root(query, data)
    dag = build_dag(query, data, root=root)

    initial_sizes = {
        u: initial_candidate_count(query, data, u) for u in query.vertices()
    }
    per_step: list[dict[int, int]] = []
    for steps in range(1, cfg.refinement_steps + 1):
        cs_step = build_candidate_space(
            query,
            data,
            dag,
            refinement_steps=steps,
            use_local_filters=cfg.use_local_filters,
        )
        per_step.append({u: len(cs_step.candidates[u]) for u in query.vertices()})
    cs = build_candidate_space(
        query,
        data,
        dag,
        refinement_steps=cfg.refinement_steps,
        refine_to_fixpoint=cfg.refine_to_fixpoint,
        use_local_filters=cfg.use_local_filters,
    )
    weight_summary = {}
    if not cs.is_empty():
        weights = compute_weight_array(cs)
        for u in query.vertices():
            row = weights[u]
            if row:
                weight_summary[u] = (min(row), max(row))
    return QueryPlan(
        root=root,
        root_scores=root_scores,
        dag_edges=sorted(dag.edges()),
        topological_order=dag.topological_order(),
        candidate_sizes_initial=initial_sizes,
        candidate_sizes_per_step=per_step,
        cs_size=cs.size,
        cs_edges=cs.num_edges,
        is_negative=cs.is_empty(),
        weight_summary=weight_summary,
        candidate_sizes_final={
            u: len(cs.candidates[u]) for u in query.vertices()
        },
    )


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE: plan + actuals


def _ranks(values: dict[int, int], ascending: bool) -> dict[int, int]:
    """Dense 0-based ranks, ties broken by vertex id (deterministic)."""
    ordered = sorted(values, key=lambda u: (values[u] if ascending else -values[u], u))
    return {u: rank for rank, u in enumerate(ordered)}


@dataclass
class ExplainReport:
    """One EXPLAIN ANALYZE outcome: a plan (DAF only) joined with actuals.

    ``vertices`` rows carry, per query vertex, the planned candidate-set
    sizes next to the actual per-vertex counters
    (:data:`~repro.obs.VERTEX_COUNTERS`: ``entered`` / ``conflict`` /
    ``empty`` / ``fs_pruned``) copied verbatim from the run's registry
    snapshot, plus planned-vs-actual order ranks.  ``fs_cuts`` /
    ``fs_skipped`` are the Lemma 6.1 backjump accounting (number of cuts
    and subtrees they skipped).  ``order_inversions`` counts vertex pairs
    where the plan's candidate-size order disagrees with the observed
    effort order (0 = the estimate ranked the work perfectly).
    """

    algorithm: str
    query_vertices: int
    data_vertices: int
    embeddings: int
    recursive_calls: int
    solved: bool
    limit_reached: bool = False
    timed_out: bool = False
    negative: bool = False
    fs_cuts: int = 0
    fs_skipped: int = 0
    order_inversions: Optional[int] = None
    totals: dict = field(default_factory=dict)
    spans: dict = field(default_factory=dict)
    vertices: list = field(default_factory=list)
    plan: Optional[QueryPlan] = None
    features: dict = field(default_factory=dict)
    trace_id: Optional[str] = None
    #: The :class:`~repro.interfaces.MatchResult` the report was built
    #: from (not serialized; ``None`` for reports loaded from disk).
    result: Optional[Any] = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        """The schema-tagged JSON document (see docs/explain.md)."""
        payload: dict = {
            "schema": EXPLAIN_SCHEMA,
            "algorithm": self.algorithm,
            "query_vertices": self.query_vertices,
            "data_vertices": self.data_vertices,
            "embeddings": self.embeddings,
            "recursive_calls": self.recursive_calls,
            "solved": self.solved,
            "limit_reached": self.limit_reached,
            "timed_out": self.timed_out,
            "negative": self.negative,
            "fs_cuts": self.fs_cuts,
            "fs_skipped": self.fs_skipped,
            "totals": dict(self.totals),
            "spans": dict(self.spans),
            "vertices": [dict(row) for row in self.vertices],
            "features": dict(self.features),
        }
        if self.order_inversions is not None:
            payload["order_inversions"] = self.order_inversions
        if self.plan is not None:
            payload["plan"] = self.plan.to_dict()
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        return payload

    def event(self) -> dict:
        """The flat ``explain.report`` event mirrored into JSONL sinks."""
        payload = {
            "event": "explain.report",
            "algorithm": self.algorithm,
            "query_vertices": self.query_vertices,
            "data_vertices": self.data_vertices,
            "recursive_calls": self.recursive_calls,
            "embeddings": self.embeddings,
            "solved": self.solved,
            "negative": self.negative,
            "fs_cuts": self.fs_cuts,
            "fs_skipped": self.fs_skipped,
        }
        if self.plan is not None:
            payload["cs_size"] = self.plan.cs_size
            payload["cs_edges"] = self.plan.cs_edges
            payload["filtering_rate"] = self.plan.filtering_rate
        return payload

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.to_dict(), stream, indent=2, sort_keys=False)
            stream.write("\n")

    def render(self) -> str:
        """Multi-line EXPLAIN ANALYZE text block."""
        lines = [f"EXPLAIN ANALYZE — {self.algorithm}"]
        if self.plan is not None:
            lines.append("plan:")
            lines.extend("  " + line for line in self.plan.render().splitlines())
        lines.append("actuals:")
        lines.append(
            f"  recursive_calls={self.recursive_calls} "
            f"embeddings={self.embeddings} solved={self.solved}"
        )
        lines.append(
            f"  failing sets: {self.fs_cuts} backjumps, "
            f"{self.fs_skipped} sibling subtrees skipped"
        )
        if self.order_inversions is not None:
            lines.append(
                f"  order quality: {self.order_inversions} planned-vs-actual "
                "rank inversions"
            )
        if self.trace_id is not None:
            lines.append(f"  trace: {self.trace_id} (see `repro trace show`)")
        header = f"  {'u':>4} {'label':>6} {'planned':>8}"
        for dim in VERTEX_COUNTERS:
            header += f" {dim:>9}"
        header += f" {'plan#':>6} {'effort#':>8}"
        lines.append("per-vertex (planned vs actual):")
        lines.append(header)
        for row in self.vertices:
            planned = row.get("planned_candidates")
            line = (
                f"  u{row['vertex']:>3} {row.get('label', '?'):>6} "
                f"{'-' if planned is None else planned:>8}"
            )
            for dim in VERTEX_COUNTERS:
                line += f" {row.get(dim, 0):>9}"
            plan_rank = row.get("planned_rank")
            line += f" {'-' if plan_rank is None else plan_rank:>6}"
            line += f" {row.get('effort_rank', 0):>8}"
            lines.append(line)
        if self.spans:
            lines.append(
                "phases: "
                + " ".join(
                    f"{name}={seconds:.6f}s"
                    for name, seconds in sorted(self.spans.items())
                )
            )
        if self.totals:
            lines.append(
                "counters: "
                + " ".join(
                    f"{name}={value}"
                    for name, value in sorted(self.totals.items())
                    if value
                )
            )
        return "\n".join(lines)


def load_report(path) -> dict:
    """Load a saved ``.explain.json`` report document as a plain dict."""
    with open(path, "r", encoding="utf-8") as stream:
        document = json.load(stream)
    if not isinstance(document, dict) or document.get("schema") != EXPLAIN_SCHEMA:
        raise ValueError(f"{path}: not a {EXPLAIN_SCHEMA!r}-tagged report")
    return document


def build_report(
    *,
    algorithm: str,
    query: Graph,
    data: Graph,
    plan: Optional[QueryPlan],
    result: MatchResult,
    snapshot: dict,
    trace_id: Optional[str] = None,
    pi: Optional[tuple[int, ...]] = None,
) -> ExplainReport:
    """Join a plan (may be ``None`` for baselines) with one run's snapshot.

    ``pi`` translates vertex dimensions recorded in cached-query
    coordinates back to the probe query's (``pi``: probe vertex ->
    recorded vertex), mirroring the prepared-query cache's embedding
    remap — totals are permutation-invariant, so they stay exact.
    """
    totals = dict(snapshot.get("counters", {}))
    spans = dict(snapshot.get("spans", {}))
    vertex_counters = snapshot.get("vertex_counters", {}) or {}
    n = query.num_vertices

    def actual(dim: str, u: int) -> int:
        recorded = pi[u] if pi is not None else u
        return vertex_counters.get(dim, {}).get(str(recorded), 0)

    entered = {u: actual("entered", u) for u in range(n)}
    effort_ranks = _ranks(entered, ascending=False)
    planned_sizes: Optional[dict[int, int]] = None
    planned_ranks: dict[int, int] = {}
    if plan is not None:
        planned_sizes = plan.candidate_sizes_final or plan.candidate_sizes_initial
        planned_ranks = _ranks(planned_sizes, ascending=True)
    total_entered = sum(entered.values())
    rows = []
    for u in range(n):
        row: dict = {"vertex": u, "label": query.label(u)}
        if planned_sizes is not None:
            row["planned_initial"] = plan.candidate_sizes_initial.get(u, 0)
            row["planned_candidates"] = planned_sizes.get(u, 0)
            row["planned_rank"] = planned_ranks[u]
        for dim in VERTEX_COUNTERS:
            row[dim] = actual(dim, u)
        row["effort_rank"] = effort_ranks[u]
        row["effort_share"] = entered[u] / total_entered if total_entered else 0.0
        rows.append(row)

    order_inversions = None
    if planned_sizes is not None:
        order_inversions = 0
        for u in range(n):
            for w in range(u + 1, n):
                planned_delta = planned_sizes.get(u, 0) - planned_sizes.get(w, 0)
                entered_delta = entered[u] - entered[w]
                if planned_delta * entered_delta < 0:
                    order_inversions += 1

    from ..analysis.features import feature_row  # deferred: analysis -> core

    features = feature_row(query, data, plan=plan, totals=totals, result=result)
    return ExplainReport(
        algorithm=algorithm,
        query_vertices=n,
        data_vertices=data.num_vertices,
        embeddings=result.stats.embeddings_found,
        recursive_calls=result.stats.recursive_calls,
        solved=result.solved,
        limit_reached=result.limit_reached,
        timed_out=result.timed_out,
        negative=plan.is_negative if plan is not None else False,
        fs_cuts=totals.get("fs_cuts", 0),
        fs_skipped=totals.get("prune_failing_set", 0),
        order_inversions=order_inversions,
        totals=totals,
        spans=spans,
        vertices=rows,
        plan=plan,
        features=features,
        trace_id=trace_id,
    )


def attach_report(
    result: MatchResult,
    *,
    algorithm: str,
    query: Graph,
    data: Graph,
    plan: Optional[QueryPlan],
    registry: MetricsRegistry,
    pi: Optional[tuple[int, ...]] = None,
) -> ExplainReport:
    """Build a report from ``registry``'s run, attach it to ``result``,
    and mirror the flat ``explain.report`` event into the sink."""
    snapshot = (
        result.stats.metrics
        if result.stats.metrics is not None
        else registry.snapshot()
    )
    trace_id = registry.trace.trace_id if registry.trace is not None else None
    report = build_report(
        algorithm=algorithm,
        query=query,
        data=data,
        plan=plan,
        result=result,
        snapshot=snapshot,
        trace_id=trace_id,
        pi=pi,
    )
    report.result = result
    result.explain = report
    registry.emit(report.event())
    return report


def run_with_explain(
    matcher: DAFMatcher,
    query: Graph,
    data: Graph,
    *,
    limit: int,
    time_limit: Optional[float] = None,
    on_embedding=None,
    budget=None,
    resume_from=None,
) -> MatchResult:
    """The ``MatchOptions(explain=True)`` capture path for ``DAFMatcher``.

    The run executes under a *dedicated* fresh registry (sharing the
    matcher observer's sink and trace context, if any), so the report's
    per-vertex actuals equal the registry totals for exactly this run —
    a matcher-level observer with accumulated prior state would blur the
    join.  The engine itself is unchanged: explain off keeps the
    zero-overhead path.
    """
    outer = matcher.observer
    registry = MetricsRegistry(sink=getattr(outer, "sink", None))
    if outer is not None and outer.trace is not None:
        registry.trace = outer.trace
    runner = DAFMatcher(matcher.config, observer=registry)
    result = runner._match_impl(
        query,
        data,
        limit=limit,
        time_limit=time_limit,
        on_embedding=on_embedding,
        budget=budget,
        resume_from=resume_from,
    )
    plan = explain(query, data, matcher.config)
    attach_report(
        result,
        algorithm=matcher.name,
        query=query,
        data=data,
        plan=plan,
        registry=registry,
    )
    return result


def explain_analyze(
    query: Graph,
    data: Graph,
    config: Optional[MatchConfig] = None,
    matcher=None,
    limit: Optional[int] = None,
    time_limit: Optional[float] = None,
    sink=None,
    trace=None,
) -> ExplainReport:
    """Run one instrumented search and return its :class:`ExplainReport`.

    ``matcher`` may be any :class:`~repro.interfaces.Matcher`; a
    :class:`~repro.core.DAFMatcher` (the default, built from ``config``)
    gets the full static plan joined in, baselines get actuals only
    (``plan`` is ``None`` — they have no DAG/CS to plan with).  ``sink``
    receives the run's events plus the final ``explain.report``;
    ``trace`` stamps them (and the report) for ``repro trace show``
    cross-linking.  The underlying :class:`~repro.interfaces.MatchResult`
    rides along as ``report.result``.
    """
    if matcher is None:
        matcher = DAFMatcher(config)
    elif config is not None:
        raise ValueError("pass config= or matcher=, not both")
    registry = MetricsRegistry(sink=sink)
    if trace is not None:
        registry.trace = trace
    request = MatchRequest(
        query=query,
        data=data,
        options=MatchOptions(limit=limit, time_limit=time_limit),
    )
    plan = None
    if isinstance(matcher, DAFMatcher):
        plan = explain(query, data, matcher.config)
        runner = DAFMatcher(matcher.config, observer=registry)
        result = runner.run_request(request)
    else:
        previous = matcher.observer
        matcher.observer = registry
        try:
            result = matcher.run_request(request)
        finally:
            matcher.observer = previous
    return attach_report(
        result,
        algorithm=matcher.name,
        query=query,
        data=data,
        plan=plan,
        registry=registry,
    )


# ----------------------------------------------------------------------
# Report diffing


@dataclass
class ExplainDiff:
    """Classified per-vertex differences between two reports.

    Each entry is ``{"vertex", "kind", "severity", "base", "current",
    "detail"}`` with ``kind`` one of ``candidate_blowup`` /
    ``order_inversion`` / ``prune_rate_collapse`` and ``severity`` one
    of ``regression`` / ``improvement`` / ``info``.  A report diffed
    against itself classifies nothing.
    """

    base_algorithm: str
    current_algorithm: str
    entries: list = field(default_factory=list)
    totals_delta: dict = field(default_factory=dict)

    @property
    def regressions(self) -> list:
        return [e for e in self.entries if e["severity"] == "regression"]

    def to_dict(self) -> dict:
        return {
            "base_algorithm": self.base_algorithm,
            "current_algorithm": self.current_algorithm,
            "entries": [dict(e) for e in self.entries],
            "regressions": len(self.regressions),
            "totals_delta": {k: list(v) for k, v in self.totals_delta.items()},
        }

    def render(self) -> str:
        lines = [
            f"explain diff: {self.base_algorithm} -> {self.current_algorithm}",
            f"  {len(self.entries)} per-vertex difference(s), "
            f"{len(self.regressions)} regression(s)",
        ]
        for entry in self.entries:
            lines.append(
                f"  [{entry['severity']:>11}] u{entry['vertex']} "
                f"{entry['kind']}: {entry['detail']}"
            )
        changed = {
            name: (base, current)
            for name, (base, current) in sorted(self.totals_delta.items())
            if base != current
        }
        if changed:
            lines.append("  counter deltas:")
            for name, (base, current) in changed.items():
                lines.append(f"    {name}: {base} -> {current}")
        return "\n".join(lines)


def _as_document(report) -> dict:
    return report.to_dict() if hasattr(report, "to_dict") else dict(report)


def diff_reports(
    base,
    current,
    *,
    ratio: float = 2.0,
    min_delta: int = 16,
    share_drop: float = 0.5,
) -> ExplainDiff:
    """Classify per-vertex differences between two reports (dicts or
    :class:`ExplainReport` instances) over the same query shape.

    - *candidate blowup*: a vertex's ``entered`` count grew by at least
      ``ratio``× and by at least ``min_delta`` absolute (regression; the
      mirror-image shrink is reported as an improvement);
    - *order inversion*: the vertex moved in the observed effort ranking
      (a regression when it got hotter by ``min_delta+`` calls);
    - *prune-rate collapse*: the vertex's failing-set prunes per entry
      dropped by more than ``share_drop`` relative (regression).
    """
    base_doc = _as_document(base)
    current_doc = _as_document(current)
    diff = ExplainDiff(
        base_algorithm=base_doc.get("algorithm", "?"),
        current_algorithm=current_doc.get("algorithm", "?"),
    )
    base_totals = base_doc.get("totals", {})
    current_totals = current_doc.get("totals", {})
    for name in sorted(set(base_totals) | set(current_totals)):
        diff.totals_delta[name] = (
            base_totals.get(name, 0),
            current_totals.get(name, 0),
        )
    base_rows = {row["vertex"]: row for row in base_doc.get("vertices", [])}
    current_rows = {row["vertex"]: row for row in current_doc.get("vertices", [])}
    for u in sorted(set(base_rows) & set(current_rows)):
        before, after = base_rows[u], current_rows[u]
        b_entered = before.get("entered", 0)
        c_entered = after.get("entered", 0)
        delta = c_entered - b_entered
        if delta >= min_delta and c_entered >= ratio * max(b_entered, 1):
            diff.entries.append(
                {
                    "vertex": u,
                    "kind": "candidate_blowup",
                    "severity": "regression",
                    "base": b_entered,
                    "current": c_entered,
                    "detail": f"entered {b_entered} -> {c_entered} "
                    f"(x{c_entered / max(b_entered, 1):.1f})",
                }
            )
        elif -delta >= min_delta and b_entered >= ratio * max(c_entered, 1):
            diff.entries.append(
                {
                    "vertex": u,
                    "kind": "candidate_blowup",
                    "severity": "improvement",
                    "base": b_entered,
                    "current": c_entered,
                    "detail": f"entered {b_entered} -> {c_entered}",
                }
            )
        b_rank = before.get("effort_rank")
        c_rank = after.get("effort_rank")
        if b_rank is not None and c_rank is not None and b_rank != c_rank:
            hotter = c_rank < b_rank and delta >= min_delta
            diff.entries.append(
                {
                    "vertex": u,
                    "kind": "order_inversion",
                    "severity": "regression" if hotter else "info",
                    "base": b_rank,
                    "current": c_rank,
                    "detail": f"effort rank {b_rank} -> {c_rank}",
                }
            )
        b_share = before.get("fs_pruned", 0) / max(b_entered, 1)
        c_share = after.get("fs_pruned", 0) / max(c_entered, 1)
        if b_share > 0 and c_share < b_share * (1.0 - share_drop):
            diff.entries.append(
                {
                    "vertex": u,
                    "kind": "prune_rate_collapse",
                    "severity": "regression",
                    "base": before.get("fs_pruned", 0),
                    "current": after.get("fs_pruned", 0),
                    "detail": f"fs_pruned/entered {b_share:.3f} -> {c_share:.3f}",
                }
            )
    return diff
