"""repro.obs — engine-wide observability: metrics, spans, tracing, progress.

The paper argues from internal counters (recursive calls, candidate-space
sizes, pruned subtrees — Figs. 6–12); this package makes those counters a
first-class, always-available layer across every matcher in the repo:

- :class:`MetricsRegistry` — slot-based prune-reason counters, phase
  spans (``dag_build`` / ``cs_construct`` / ``cs_refine`` / ``order`` /
  ``search``) and per-query-vertex candidate histograms.  Attach to any
  matcher via its ``observer`` attribute; read ``result.stats.metrics``.
- :class:`EventSink` / :class:`JsonlSink` / :class:`MemorySink` /
  :class:`TeeSink` — structured JSONL event output (schema in
  :mod:`repro.obs.schema`, documented in ``docs/observability.md``).
- :class:`SamplingTracer` — Figure-6-style search-tree inspection that
  scales: every N-th node plus *all* failure leaves, bounded memory.
- :class:`ProgressReporter` — throttled heartbeats (calls/sec, depth,
  and for parallel search per-slice liveness + completion ETA).

The zero-overhead contract: with no observer attached the engines hold
``None`` and perform no observability work at all — results are
bit-identical with metrics on and off.
"""

from .metrics import (
    COUNTERS,
    PHASES,
    VERTEX_COUNTERS,
    MetricsRegistry,
    hotspot_rows,
    render_hotspots,
    render_snapshot,
)
from .progress import ProgressReporter, slice_eta
from .sampling import SamplingTracer, TraceRecord
from .schema import EVENT_SCHEMAS, validate_event, validate_jsonl, validate_lines
from .sinks import EventSink, JsonlSink, MemorySink, TeeSink

__all__ = [
    "COUNTERS",
    "EVENT_SCHEMAS",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "PHASES",
    "ProgressReporter",
    "SamplingTracer",
    "TeeSink",
    "TraceRecord",
    "VERTEX_COUNTERS",
    "hotspot_rows",
    "render_hotspots",
    "render_snapshot",
    "slice_eta",
    "validate_event",
    "validate_jsonl",
    "validate_lines",
]
