"""repro.obs — engine-wide observability: metrics, spans, tracing, progress.

The paper argues from internal counters (recursive calls, candidate-space
sizes, pruned subtrees — Figs. 6–12); this package makes those counters a
first-class, always-available layer across every matcher in the repo:

- :class:`MetricsRegistry` — slot-based prune-reason counters, phase
  spans (``dag_build`` / ``cs_construct`` / ``cs_refine`` / ``order`` /
  ``search``) and per-query-vertex candidate histograms.  Attach to any
  matcher via its ``observer`` attribute; read ``result.stats.metrics``.
- :class:`EventSink` / :class:`JsonlSink` / :class:`MemorySink` /
  :class:`TeeSink` — structured JSONL event output (schema in
  :mod:`repro.obs.schema`, documented in ``docs/observability.md``).
- :class:`SamplingTracer` — Figure-6-style search-tree inspection that
  scales: every N-th node plus *all* failure leaves, bounded memory.
- :class:`ProgressReporter` — throttled heartbeats (calls/sec, depth,
  and for parallel search per-slice liveness + completion ETA).
- :mod:`repro.obs.telemetry` — request-scoped tracing
  (:class:`TraceContext` / :class:`TraceIdAllocator`), streaming window
  aggregation (:class:`TelemetryAggregator`,
  :class:`StreamingHistogram`) and the SLO watchdog (:class:`SloRule` /
  :class:`SloWatchdog`), surfaced by ``repro trace show`` / ``repro top``.

The zero-overhead contract: with no observer attached the engines hold
``None`` and perform no observability work at all — results are
bit-identical with metrics on and off.
"""

from .metrics import (
    COUNTERS,
    PHASES,
    VERTEX_COUNTERS,
    MetricsRegistry,
    hotspot_rows,
    render_hotspots,
    render_snapshot,
)
from .progress import ProgressReporter, slice_eta
from .sampling import SamplingTracer, TraceRecord
from .schema import (
    EVENT_SCHEMAS,
    TRACE_FIELDS,
    validate_event,
    validate_jsonl,
    validate_lines,
)
from .sinks import EventSink, JsonlSink, MemorySink, TeeSink
from .telemetry import (
    SloRule,
    SloWatchdog,
    StreamingHistogram,
    TelemetryAggregator,
    TraceContext,
    TraceIdAllocator,
    default_slo_rules,
    render_top,
    render_trace_list,
    render_trace_tree,
)

# The EXPLAIN / EXPLAIN ANALYZE layer (repro.obs.explain) imports the
# core matcher, which is still initializing when this package loads
# during `import repro`; expose its surface lazily instead of eagerly.
_EXPLAIN_NAMES = (
    "ExplainDiff",
    "ExplainReport",
    "QueryPlan",
    "diff_reports",
    "explain_analyze",
    "load_report",
)


def __getattr__(name: str):
    if name in _EXPLAIN_NAMES or name == "explain":
        import importlib

        module = importlib.import_module("repro.obs.explain")
        return module if name == "explain" else getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "COUNTERS",
    "EVENT_SCHEMAS",
    "EventSink",
    "ExplainDiff",
    "ExplainReport",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "PHASES",
    "ProgressReporter",
    "QueryPlan",
    "SamplingTracer",
    "SloRule",
    "SloWatchdog",
    "StreamingHistogram",
    "TRACE_FIELDS",
    "TeeSink",
    "TelemetryAggregator",
    "TraceContext",
    "TraceIdAllocator",
    "TraceRecord",
    "VERTEX_COUNTERS",
    "default_slo_rules",
    "diff_reports",
    "explain_analyze",
    "hotspot_rows",
    "load_report",
    "render_hotspots",
    "render_snapshot",
    "render_top",
    "render_trace_list",
    "render_trace_tree",
    "slice_eta",
    "validate_event",
    "validate_jsonl",
    "validate_lines",
]
