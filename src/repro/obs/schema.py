"""The JSONL event schema, as data, plus the validator CI runs.

One place defines what a metrics stream may contain; everything else
(docs/observability.md, ``scripts/check_metrics_schema.py``, the tests)
derives from it.  The schema language is deliberately tiny — per event
type, required and optional fields each mapped to an allowed type tuple —
because the events themselves are flat by design.

``int`` fields accept Python ints (bools are rejected), ``float`` fields
accept ints too (JSON does not distinguish), and nested objects/arrays
use callables.
"""

from __future__ import annotations

import json
from typing import Callable, Union

FieldSpec = Union[type, tuple, Callable[[object], bool]]


def _number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _str(value: object) -> bool:
    return isinstance(value, str)


def _bool(value: object) -> bool:
    return isinstance(value, bool)


def _int_array(value: object) -> bool:
    return isinstance(value, list) and all(_int(v) for v in value)


def _str_array(value: object) -> bool:
    return isinstance(value, list) and all(_str(v) for v in value)


def _counter_map(value: object) -> bool:
    return isinstance(value, dict) and all(
        _str(k) and _int(v) for k, v in value.items()
    )


def _span_map(value: object) -> bool:
    return isinstance(value, dict) and all(
        _str(k) and _number(v) for k, v in value.items()
    )


#: Correlation fields stamped by :class:`repro.obs.telemetry.TraceContext`.
#: Like ``ts``, they are implicit: any event may carry them (as strings),
#: so they are validated once in :func:`validate_event` rather than
#: repeated in every schema entry below.
TRACE_FIELDS: tuple[str, ...] = ("trace_id", "span_id", "parent_span_id")

#: event type -> (required fields, optional fields).  Every event also
#: carries ``ts`` (epoch seconds, added by the sink) and may carry the
#: :data:`TRACE_FIELDS` correlation triple, listed once here.
EVENT_SCHEMAS: dict[str, tuple[dict[str, Callable], dict[str, Callable]]] = {
    "run_start": (
        {"algorithm": _str, "query_vertices": _int, "data_vertices": _int},
        {"limit": _int, "time_limit": _number, "workers": _int},
    ),
    "span": (
        {"name": _str, "seconds": _number},
        {"scope": _str},
    ),
    "counters": (
        {"counters": _counter_map},
        {"scope": _str},
    ),
    "histogram": (
        {"name": _str, "values": _int_array},
        {"scope": _str},
    ),
    "progress": (
        {"scope": _str},
        {
            "calls": _int,
            "depth": _int,
            "calls_per_sec": _number,
            "elapsed_seconds": _number,
            "slice": _int,
            "slices_done": _int,
            "slices_total": _int,
            "eta_seconds": _number,
            "embeddings": _int,
        },
    ),
    "trace": (
        {"kind": _str, "query_vertex": _int, "data_vertex": _int, "depth": _int},
        {"failing_set": _int},
    ),
    "worker": (
        {"slice": _int, "status": _str, "attempts": _int},
        {
            "recursive_calls": _int,
            "embeddings_found": _int,
            "timed_out": _bool,
            "resumed_from_calls": _int,
            "error": _str,
        },
    ),
    "degrade": (
        {"attempt": _int, "stage": _str, "message": _str},
        {},
    ),
    "run_end": (
        {"recursive_calls": _int, "embeddings": _int, "solved": _bool},
        {
            "spans": _span_map,
            "counters": _counter_map,
            "limit_reached": _bool,
            "timed_out": _bool,
        },
    ),
    # Benchmark-session events (repro.bench.manifest): one bench.run per
    # written manifest, one bench.summary per recorded figure.
    "bench.run": (
        {"manifest": _str, "profile": _str, "git_sha": _str, "figures": _int},
        {"index": _int, "python": _str, "platform": _str, "cpu_count": _int},
    ),
    "bench.summary": (
        {"figure": _str, "rows": _int},
        {"title": _str, "has_metrics": _bool},
    ),
    # Serving-layer events (repro.service): one batch.request per request
    # as it completes, one batch.run per finished batch.
    "batch.request": (
        {"index": _int, "status": _str, "cache": _str},
        {
            "tag": _str,
            "embeddings": _int,
            "recursive_calls": _int,
            "elapsed_seconds": _number,
            "preprocess_seconds": _number,
            "error": _str,
        },
    ),
    "batch.run": (
        {"requests": _int, "completed": _int, "failed": _int},
        {
            "cache_hits": _int,
            "cache_misses": _int,
            "cache_evictions": _int,
            "unique_queries": _int,
            "workers": _int,
            "elapsed_seconds": _number,
            "graph_version": _int,
        },
    ),
    # Dynamic-graph events (repro.service.dynamic): one update.batch per
    # applied delta batch; one embedding.appeared / embedding.disappeared
    # per standing-query embedding-set change the batch caused.
    "update.batch": (
        {"graph_version": _int, "deltas": _int},
        {
            "edges_inserted": _int,
            "edges_deleted": _int,
            "vertices_added": _int,
            "vertices_removed": _int,
            "cache_refreshed": _int,
            "cache_invalidated": _int,
            "appeared": _int,
            "disappeared": _int,
            "seconds": _number,
        },
    ),
    "embedding.appeared": (
        {"subscription": _str, "graph_version": _int, "embedding": _int_array},
        {},
    ),
    "embedding.disappeared": (
        {"subscription": _str, "graph_version": _int, "embedding": _int_array},
        {},
    ),
    # Suspend/resume events (repro.resilience.checkpoint): one
    # checkpoint.save per checkpoint attached to an interrupted result,
    # one checkpoint.resume per search continued from one.
    "checkpoint.save": (
        {
            "reason": _str,
            "phase": _str,
            "depth": _int,
            "recursive_calls": _int,
            "embeddings_found": _int,
        },
        {"scope": _str, "slice": _int},
    ),
    "checkpoint.resume": (
        {
            "phase": _str,
            "depth": _int,
            "recursive_calls": _int,
            "embeddings_found": _int,
        },
        {"scope": _str, "slice": _int},
    ),
    # Telemetry events (repro.obs.telemetry): one telemetry.window per
    # closed aggregation window, one telemetry.alert per SLO rule breach.
    "telemetry.window": (
        {"index": _int, "requests": _int},
        {
            "errors": _int,
            "p50_seconds": _number,
            "p95_seconds": _number,
            "p99_seconds": _number,
            "cache_hits": _int,
            "cache_misses": _int,
            "cache_hit_rate": _number,
            "recursive_calls": _int,
            "embeddings": _int,
            "calls_per_embedding": _number,
            "worker_outcomes": _int,
            "worker_crashes": _int,
            "worker_retries": _int,
            "crash_rate": _number,
            "resumes": _int,
            "alerts": _int,
        },
    ),
    "telemetry.alert": (
        {
            "rule": _str,
            "metric": _str,
            "value": _number,
            "threshold": _number,
            "op": _str,
            "window": _int,
        },
        {},
    ),
    # Chaos-harness events (repro.resilience.chaos): one chaos.run per
    # scenario swept, reporting whether the faulted run's final answer
    # matched the fault-free baseline exactly.
    "chaos.run": (
        {"scenario": _str, "site": _str, "kind": _str, "status": _str},
        {
            "matched": _bool,
            "fired": _int,
            "resumed": _bool,
            "elapsed_seconds": _number,
        },
    ),
    # Lint-run events (repro.lint via the CLI): one lint.run per
    # ``repro lint --metrics-out`` invocation, so CI dashboards can trend
    # finding counts and lint wall time alongside search metrics.
    "lint.run": (
        {"files": _int, "findings": _int, "elapsed_seconds": _number},
        {
            "checkers": _str_array,
            "by_check": _counter_map,
            "baseline_suppressed": _int,
            "stale_baseline": _int,
            "jobs": _int,
        },
    ),
    # EXPLAIN ANALYZE events (repro.obs.explain): the flat summary of one
    # per-request forensics report, mirrored into the JSONL stream so
    # `repro trace show` can cross-link the full document via trace_id.
    "explain.report": (
        {
            "algorithm": _str,
            "query_vertices": _int,
            "recursive_calls": _int,
            "embeddings": _int,
        },
        {
            "data_vertices": _int,
            "cs_size": _int,
            "cs_edges": _int,
            "filtering_rate": _number,
            "fs_cuts": _int,
            "fs_skipped": _int,
            "solved": _bool,
            "negative": _bool,
        },
    ),
}

#: Tag identifying a saved EXPLAIN ANALYZE report document (the
#: ``"schema"`` key of the JSON object `ExplainReport.save` writes);
#: ``scripts/check_metrics_schema.py`` dispatches on it.
EXPLAIN_SCHEMA = "repro.obs.explain"


def validate_event(event: object) -> list[str]:
    """Validate one parsed event object; returns human-readable errors."""
    errors: list[str] = []
    if not isinstance(event, dict):
        return [f"event is not an object: {event!r}"]
    event_type = event.get("event")
    if not isinstance(event_type, str):
        return [f"missing/non-string 'event' tag: {event!r}"]
    if event_type not in EVENT_SCHEMAS:
        return [f"unknown event type {event_type!r}"]
    required, optional = EVENT_SCHEMAS[event_type]
    for name, check in required.items():
        if name not in event:
            errors.append(f"{event_type}: missing required field {name!r}")
        elif not check(event[name]):
            errors.append(
                f"{event_type}: field {name!r} has invalid value {event[name]!r}"
            )
    for name, value in event.items():
        if name in ("event", "ts") or name in TRACE_FIELDS:
            continue
        if name in required:
            continue
        if name not in optional:
            errors.append(f"{event_type}: unexpected field {name!r}")
        elif not optional[name](value):
            errors.append(f"{event_type}: field {name!r} has invalid value {value!r}")
    if "ts" in event and not _number(event["ts"]):
        errors.append(f"{event_type}: 'ts' must be numeric, got {event['ts']!r}")
    for name in TRACE_FIELDS:
        if name in event and not _str(event[name]):
            errors.append(
                f"{event_type}: trace field {name!r} must be a string, "
                f"got {event[name]!r}"
            )
    return errors


def validate_lines(lines) -> list[str]:
    """Validate an iterable of JSONL lines; blank lines are skipped.

    A non-JSON *final* line is tolerated (a killed writer may leave a
    torn tail); non-JSON interior lines are errors.
    """
    errors: list[str] = []
    pending_parse_error: str = ""
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        if pending_parse_error:
            errors.append(pending_parse_error)
            pending_parse_error = ""
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            pending_parse_error = f"line {lineno}: not valid JSON ({exc.msg})"
            continue
        for error in validate_event(event):
            errors.append(f"line {lineno}: {error}")
    return errors


def validate_jsonl(path) -> list[str]:
    """Validate a metrics JSONL file; returns a list of errors (empty = ok)."""
    with open(path, "r", encoding="utf-8") as stream:
        return validate_lines(stream)


#: Per-vertex fields an explain-report row may carry beyond ``vertex``
#: and ``label`` (the VERTEX_COUNTERS dims plus the planned/rank joins).
_EXPLAIN_ROW_FIELDS: dict[str, Callable] = {
    "entered": _int,
    "conflict": _int,
    "empty": _int,
    "fs_pruned": _int,
    "planned_initial": _int,
    "planned_candidates": _int,
    "planned_rank": _int,
    "effort_rank": _int,
    "effort_share": _number,
}


def validate_explain_report(source) -> list[str]:
    """Validate a saved EXPLAIN ANALYZE report document.

    ``source`` is a path to a ``.explain.json`` file or an already-parsed
    dict.  The flat summary is re-validated as an ``explain.report``
    event; the structured parts (per-vertex rows, totals, spans) are
    checked against the shapes ``repro.obs.explain.ExplainReport``
    writes.  Returns human-readable errors (empty = valid).
    """
    if isinstance(source, dict):
        document = source
    else:
        try:
            with open(source, "r", encoding="utf-8") as stream:
                document = json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            return [f"unreadable explain report: {exc}"]
    if not isinstance(document, dict):
        return [f"explain report is not an object: {type(document).__name__}"]
    errors: list[str] = []
    if document.get("schema") != EXPLAIN_SCHEMA:
        errors.append(
            f"explain report: 'schema' must be {EXPLAIN_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    required, optional = EVENT_SCHEMAS["explain.report"]
    event = {"event": "explain.report"}
    for name in list(required) + list(optional):
        if name in document:
            event[name] = document[name]
    errors.extend(validate_event(event))
    if not _counter_map(document.get("totals", {})):
        errors.append("explain report: 'totals' must map counter -> int")
    if not _span_map(document.get("spans", {})):
        errors.append("explain report: 'spans' must map phase -> seconds")
    rows = document.get("vertices")
    if not isinstance(rows, list):
        errors.append("explain report: 'vertices' must be a list of rows")
        rows = []
    for position, row in enumerate(rows):
        if not isinstance(row, dict) or not _int(row.get("vertex")):
            errors.append(
                f"explain report: vertices[{position}] needs an int 'vertex'"
            )
            continue
        for name, value in row.items():
            if name in ("vertex", "label"):
                continue
            check = _EXPLAIN_ROW_FIELDS.get(name)
            if check is None:
                errors.append(
                    f"explain report: vertices[{position}] has unknown "
                    f"field {name!r}"
                )
            elif not check(value):
                errors.append(
                    f"explain report: vertices[{position}].{name} has "
                    f"invalid value {value!r}"
                )
    features = document.get("features", {})
    if not isinstance(features, dict) or not all(
        _str(k) and _number(v) for k, v in features.items()
    ):
        errors.append("explain report: 'features' must map name -> number")
    return errors
