"""The JSONL event schema, as data, plus the validator CI runs.

One place defines what a metrics stream may contain; everything else
(docs/observability.md, ``scripts/check_metrics_schema.py``, the tests)
derives from it.  The schema language is deliberately tiny — per event
type, required and optional fields each mapped to an allowed type tuple —
because the events themselves are flat by design.

``int`` fields accept Python ints (bools are rejected), ``float`` fields
accept ints too (JSON does not distinguish), and nested objects/arrays
use callables.
"""

from __future__ import annotations

import json
from typing import Callable, Union

FieldSpec = Union[type, tuple, Callable[[object], bool]]


def _number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _str(value: object) -> bool:
    return isinstance(value, str)


def _bool(value: object) -> bool:
    return isinstance(value, bool)


def _int_array(value: object) -> bool:
    return isinstance(value, list) and all(_int(v) for v in value)


def _counter_map(value: object) -> bool:
    return isinstance(value, dict) and all(
        _str(k) and _int(v) for k, v in value.items()
    )


def _span_map(value: object) -> bool:
    return isinstance(value, dict) and all(
        _str(k) and _number(v) for k, v in value.items()
    )


#: Correlation fields stamped by :class:`repro.obs.telemetry.TraceContext`.
#: Like ``ts``, they are implicit: any event may carry them (as strings),
#: so they are validated once in :func:`validate_event` rather than
#: repeated in every schema entry below.
TRACE_FIELDS: tuple[str, ...] = ("trace_id", "span_id", "parent_span_id")

#: event type -> (required fields, optional fields).  Every event also
#: carries ``ts`` (epoch seconds, added by the sink) and may carry the
#: :data:`TRACE_FIELDS` correlation triple, listed once here.
EVENT_SCHEMAS: dict[str, tuple[dict[str, Callable], dict[str, Callable]]] = {
    "run_start": (
        {"algorithm": _str, "query_vertices": _int, "data_vertices": _int},
        {"limit": _int, "time_limit": _number, "workers": _int},
    ),
    "span": (
        {"name": _str, "seconds": _number},
        {"scope": _str},
    ),
    "counters": (
        {"counters": _counter_map},
        {"scope": _str},
    ),
    "histogram": (
        {"name": _str, "values": _int_array},
        {"scope": _str},
    ),
    "progress": (
        {"scope": _str},
        {
            "calls": _int,
            "depth": _int,
            "calls_per_sec": _number,
            "elapsed_seconds": _number,
            "slice": _int,
            "slices_done": _int,
            "slices_total": _int,
            "eta_seconds": _number,
            "embeddings": _int,
        },
    ),
    "trace": (
        {"kind": _str, "query_vertex": _int, "data_vertex": _int, "depth": _int},
        {"failing_set": _int},
    ),
    "worker": (
        {"slice": _int, "status": _str, "attempts": _int},
        {
            "recursive_calls": _int,
            "embeddings_found": _int,
            "timed_out": _bool,
            "resumed_from_calls": _int,
            "error": _str,
        },
    ),
    "degrade": (
        {"attempt": _int, "stage": _str, "message": _str},
        {},
    ),
    "run_end": (
        {"recursive_calls": _int, "embeddings": _int, "solved": _bool},
        {
            "spans": _span_map,
            "counters": _counter_map,
            "limit_reached": _bool,
            "timed_out": _bool,
        },
    ),
    # Benchmark-session events (repro.bench.manifest): one bench.run per
    # written manifest, one bench.summary per recorded figure.
    "bench.run": (
        {"manifest": _str, "profile": _str, "git_sha": _str, "figures": _int},
        {"index": _int, "python": _str, "platform": _str, "cpu_count": _int},
    ),
    "bench.summary": (
        {"figure": _str, "rows": _int},
        {"title": _str, "has_metrics": _bool},
    ),
    # Serving-layer events (repro.service): one batch.request per request
    # as it completes, one batch.run per finished batch.
    "batch.request": (
        {"index": _int, "status": _str, "cache": _str},
        {
            "tag": _str,
            "embeddings": _int,
            "recursive_calls": _int,
            "elapsed_seconds": _number,
            "preprocess_seconds": _number,
            "error": _str,
        },
    ),
    "batch.run": (
        {"requests": _int, "completed": _int, "failed": _int},
        {
            "cache_hits": _int,
            "cache_misses": _int,
            "cache_evictions": _int,
            "unique_queries": _int,
            "workers": _int,
            "elapsed_seconds": _number,
        },
    ),
    # Suspend/resume events (repro.resilience.checkpoint): one
    # checkpoint.save per checkpoint attached to an interrupted result,
    # one checkpoint.resume per search continued from one.
    "checkpoint.save": (
        {
            "reason": _str,
            "phase": _str,
            "depth": _int,
            "recursive_calls": _int,
            "embeddings_found": _int,
        },
        {"scope": _str, "slice": _int},
    ),
    "checkpoint.resume": (
        {
            "phase": _str,
            "depth": _int,
            "recursive_calls": _int,
            "embeddings_found": _int,
        },
        {"scope": _str, "slice": _int},
    ),
    # Telemetry events (repro.obs.telemetry): one telemetry.window per
    # closed aggregation window, one telemetry.alert per SLO rule breach.
    "telemetry.window": (
        {"index": _int, "requests": _int},
        {
            "errors": _int,
            "p50_seconds": _number,
            "p95_seconds": _number,
            "p99_seconds": _number,
            "cache_hits": _int,
            "cache_misses": _int,
            "cache_hit_rate": _number,
            "recursive_calls": _int,
            "embeddings": _int,
            "calls_per_embedding": _number,
            "worker_outcomes": _int,
            "worker_crashes": _int,
            "worker_retries": _int,
            "crash_rate": _number,
            "resumes": _int,
            "alerts": _int,
        },
    ),
    "telemetry.alert": (
        {
            "rule": _str,
            "metric": _str,
            "value": _number,
            "threshold": _number,
            "op": _str,
            "window": _int,
        },
        {},
    ),
    # Chaos-harness events (repro.resilience.chaos): one chaos.run per
    # scenario swept, reporting whether the faulted run's final answer
    # matched the fault-free baseline exactly.
    "chaos.run": (
        {"scenario": _str, "site": _str, "kind": _str, "status": _str},
        {
            "matched": _bool,
            "fired": _int,
            "resumed": _bool,
            "elapsed_seconds": _number,
        },
    ),
}


def validate_event(event: object) -> list[str]:
    """Validate one parsed event object; returns human-readable errors."""
    errors: list[str] = []
    if not isinstance(event, dict):
        return [f"event is not an object: {event!r}"]
    event_type = event.get("event")
    if not isinstance(event_type, str):
        return [f"missing/non-string 'event' tag: {event!r}"]
    if event_type not in EVENT_SCHEMAS:
        return [f"unknown event type {event_type!r}"]
    required, optional = EVENT_SCHEMAS[event_type]
    for name, check in required.items():
        if name not in event:
            errors.append(f"{event_type}: missing required field {name!r}")
        elif not check(event[name]):
            errors.append(
                f"{event_type}: field {name!r} has invalid value {event[name]!r}"
            )
    for name, value in event.items():
        if name in ("event", "ts") or name in TRACE_FIELDS:
            continue
        if name in required:
            continue
        if name not in optional:
            errors.append(f"{event_type}: unexpected field {name!r}")
        elif not optional[name](value):
            errors.append(f"{event_type}: field {name!r} has invalid value {value!r}")
    if "ts" in event and not _number(event["ts"]):
        errors.append(f"{event_type}: 'ts' must be numeric, got {event['ts']!r}")
    for name in TRACE_FIELDS:
        if name in event and not _str(event[name]):
            errors.append(
                f"{event_type}: trace field {name!r} must be a string, "
                f"got {event[name]!r}"
            )
    return errors


def validate_lines(lines) -> list[str]:
    """Validate an iterable of JSONL lines; blank lines are skipped.

    A non-JSON *final* line is tolerated (a killed writer may leave a
    torn tail); non-JSON interior lines are errors.
    """
    errors: list[str] = []
    pending_parse_error: str = ""
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        if pending_parse_error:
            errors.append(pending_parse_error)
            pending_parse_error = ""
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            pending_parse_error = f"line {lineno}: not valid JSON ({exc.msg})"
            continue
        for error in validate_event(event):
            errors.append(f"line {lineno}: {error}")
    return errors


def validate_jsonl(path) -> list[str]:
    """Validate a metrics JSONL file; returns a list of errors (empty = ok)."""
    with open(path, "r", encoding="utf-8") as stream:
        return validate_lines(stream)
