"""Paper-appendix extensions: parallel DAF (A.4) and DAF-Boost (A.5)."""

from .boost import (
    BoostedDAFMatcher,
    capacity_aware_candidates,
    compress,
    compression_ratio,
    se_equivalence_classes,
)
from .parallel import ParallelDAFMatcher, split_round_robin

__all__ = [
    "BoostedDAFMatcher",
    "ParallelDAFMatcher",
    "capacity_aware_candidates",
    "compress",
    "compression_ratio",
    "se_equivalence_classes",
    "split_round_robin",
]
