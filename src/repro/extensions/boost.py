"""BoostIso-style data-graph compression (Appendix A.5).

BoostIso (Ren & Wang, VLDB 2015) speeds up any matcher by merging
*syntactically equivalent* (SE) data vertices — same label, identical
neighborhood — into hypervertices.  The DAF paper applies only the
equivalence relationships (it found the containment-based dynamic
candidate loading unsound), and so do we.

Pipeline:

1. :func:`se_equivalence_classes` groups data vertices by
   ``(label, neighbor set)``; same-class vertices are pairwise
   non-adjacent (v adjacent to v' with N(v) = N(v') would force a
   self-loop), so classes collapse cleanly.
2. :func:`compress` builds the hypergraph: one vertex per class with a
   capacity (class size); hyperedges inherited from any member pair.
3. :class:`BoostedDAFMatcher` runs DAF's CS construction on the
   hypergraph and searches it with a capacity-aware engine: a
   hypervertex may host up to ``capacity`` query vertices of the search
   simultaneously.  Each compressed embedding expands to
   ``product over hypervertices of P(capacity, used)`` real embeddings
   (falling factorials), enumerated on demand when embeddings are
   materialized.

Failing sets remain sound: a conflict on a *full* hypervertex pins all
its current occupiers (their ancestor masks join the failing set), which
is the capacity generalization of the paper's conflict class.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Optional

from ..core.backtrack import BacktrackEngine
from ..core.candidate_space import build_candidate_space
from ..core.config import MatchConfig
from ..core.dag import build_dag
from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    Matcher,
    MatchResult,
    SearchStats,
    TimeoutSignal,
    validate_inputs,
)


def se_equivalence_classes(data: Graph) -> list[list[int]]:
    """SE classes: vertices sharing a label and an identical neighborhood."""
    groups: dict[tuple[object, frozenset[int]], list[int]] = {}
    for v in data.vertices():
        groups.setdefault((data.label(v), data.neighbor_set(v)), []).append(v)
    return sorted(groups.values())


def compression_ratio(data: Graph) -> float:
    """Fraction of vertices removed by SE compression (paper A.5 reports
    53.1% for Human down to 1.4% for HPRD)."""
    classes = se_equivalence_classes(data)
    return 1.0 - len(classes) / data.num_vertices if data.num_vertices else 0.0


def compress(data: Graph) -> tuple[Graph, list[int], list[list[int]]]:
    """Build the SE hypergraph.

    Returns ``(hypergraph, capacities, members)`` where hypervertex ``h``
    stands for the ``capacities[h]`` original vertices ``members[h]``.
    """
    classes = se_equivalence_classes(data)
    class_of = {}
    for h, members in enumerate(classes):
        for v in members:
            class_of[v] = h
    hyper = Graph()
    for members in classes:
        hyper.add_vertex(data.label(members[0]))
    seen: set[tuple[int, int]] = set()
    for u, v in data.edges():
        a, b = class_of[u], class_of[v]
        if a == b:
            raise AssertionError("SE classes cannot contain adjacent vertices")
        key = (a, b) if a < b else (b, a)
        if key not in seen:
            seen.add(key)
            hyper.add_edge(*key)
    hyper.freeze()
    return hyper, [len(members) for members in classes], classes


def capacity_aware_candidates(
    query: Graph, hyper: Graph, capacities: list[int], u: int
) -> set[int]:
    """C_ini on a hypergraph: label match plus *capacity-weighted* degree
    and neighbor-label-frequency domination.

    A hypervertex of degree 1 whose single neighbor has capacity 3 stands
    for real vertices of degree 3, so the plain structural degree would
    wrongly reject it; weighting by neighbor capacities restores the
    member vertices' true statistics.
    """
    survivors: set[int] = set()
    needed_counts = query.neighbor_label_counts(u)
    degree_u = query.degree(u)
    for h in hyper.vertices_with_label(query.label(u)):
        weighted_degree = 0
        weighted_counts: dict[object, int] = {}
        for w in hyper.neighbors(h):
            capacity = capacities[w]
            weighted_degree += capacity
            label = hyper.label(w)
            weighted_counts[label] = weighted_counts.get(label, 0) + capacity
        if weighted_degree < degree_u:
            continue
        if all(weighted_counts.get(label, 0) >= k for label, k in needed_counts.items()):
            survivors.add(h)
    return survivors


def _falling_factorial(n: int, k: int) -> int:
    result = 1
    for i in range(k):
        result *= n - i
    return result


class _CapacityEngine(BacktrackEngine):
    """DAF's engine over a hypergraph with per-vertex capacities.

    Leaf decomposition's combinatorial counting does not generalize to
    capacities, so callers construct this engine with
    ``leaf_decomposition=False`` in the config (enforced by
    :class:`BoostedDAFMatcher`); expansion happens in ``_report``.
    """

    def __init__(self, capacities: list[int], members: list[list[int]], *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.capacities = capacities
        self.members = members
        self.occupiers: dict[int, list[int]] = {}

    # -- occupancy-aware mapping --------------------------------------
    def _map(self, u: int, i: int, v: int) -> None:
        self.mapping[u] = v
        self.midx[u] = i
        self.occupiers.setdefault(v, []).append(u)
        self.extendable.discard(u)
        self.mapped_core += 1
        for c in self.children[u]:
            if self.deferred[c]:
                continue
            self.pending[c] -= 1
            if self.pending[c] == 0:
                cmu = self._compute_cmu(c)
                self.cmu[c] = cmu
                self.wmu[c] = self.order.vertex_weight(c, cmu)
                self.extendable.add(c)

    def _unmap(self, u: int, v: int) -> None:
        for c in self.children[u]:
            if self.deferred[c]:
                continue
            if self.pending[c] == 0:
                self.extendable.discard(c)
                self.cmu[c] = None
            self.pending[c] += 1
        self.mapped_core -= 1
        self.extendable.add(u)
        holders = self.occupiers[v]
        holders.remove(u)
        if not holders:
            del self.occupiers[v]
        self.mapping[u] = -1
        self.midx[u] = -1

    def _blocked_mask(self, u: int, v: int) -> Optional[int]:
        """None if ``v`` can host another query vertex; otherwise the
        conflict contribution (anc(u) plus all occupiers' ancestors)."""
        holders = self.occupiers.get(v)
        if holders is None or len(holders) < self.capacities[v]:
            return None
        mask = self.anc[u]
        for holder in holders:
            mask |= self.anc[holder]
        return mask

    # -- search (capacity-aware copies of the base recursions) --------
    def _extend_fs(self) -> Optional[int]:
        self.stats.recursive_calls += 1
        self.deadline.tick()
        if self.mapped_core == self.num_core:
            return self._match_leaves_fs()
        u = self._select()
        cmu = self.cmu[u]
        if not cmu:
            return self.anc[u]
        candidates_u = self.cs.candidates[u]
        fs_union = 0
        found_embedding = False
        for i in cmu:
            v = candidates_u[i]
            blocked = self._blocked_mask(u, v)
            if blocked is not None:
                fs_union |= blocked
                continue
            self._map(u, i, v)
            try:
                child_fs = self._extend_fs()
            finally:
                self._unmap(u, v)
            if child_fs is None:
                found_embedding = True
            elif not (child_fs >> u) & 1:
                return None if found_embedding else child_fs
            else:
                fs_union |= child_fs
        return None if found_embedding else fs_union

    def _extend_plain(self) -> None:
        self.stats.recursive_calls += 1
        self.deadline.tick()
        if self.mapped_core == self.num_core:
            self._match_leaves_plain()
            return
        u = self._select()
        cmu = self.cmu[u]
        if not cmu:
            return
        candidates_u = self.cs.candidates[u]
        for i in cmu:
            v = candidates_u[i]
            if self._blocked_mask(u, v) is not None:
                continue
            self._map(u, i, v)
            try:
                self._extend_plain()
            finally:
                self._unmap(u, v)

    # -- capacity-aware leaf counting ----------------------------------
    def _count_leaves(self) -> Optional[int]:
        """Combinatorial leaf counting over *hypervertex slots*.

        With the core mapped, hypervertex ``h`` has ``cap_h - used_h``
        free member slots (which specific members the core takes is
        irrelevant for counting — members are interchangeable).  Leaves
        grouped by label count injective assignments into slot ids, and
        the total multiplies with the core's own falling-factorial
        expansion.  On a zero count the failing set pins the group's
        leaves plus every core vertex occupying one of the group's
        candidate hypervertices (freeing any of them could create a
        slot).
        """
        query = self.cs.query
        remaining = self.limit - self.stats.embeddings_found
        core_usage: dict[int, int] = {}
        occupying: dict[int, list[int]] = {}
        for u, v in enumerate(self.mapping):
            if v >= 0:
                core_usage[v] = core_usage.get(v, 0) + 1
                occupying.setdefault(v, []).append(u)
        core_expansion = 1
        for v, used in core_usage.items():
            core_expansion *= _falling_factorial(self.capacities[v], used)

        from ..core.backtrack import _count_injective

        groups: dict[object, list[int]] = {}
        for u in self.deferred_leaves:
            groups.setdefault(query.label(u), []).append(u)
        total = core_expansion
        for label_leaves in groups.values():
            slot_lists: list[list[tuple[int, int]]] = []
            pinned = 0
            for u in label_leaves:
                candidates_u = self.cs.candidates[u]
                slots: list[tuple[int, int]] = []
                for i in self._leaf_candidate_indices(u):
                    h = candidates_u[i]
                    for w in occupying.get(h, ()):
                        pinned |= self.anc[w]
                    free = self.capacities[h] - core_usage.get(h, 0)
                    slots.extend((h, k) for k in range(free))
                slot_lists.append(slots)
            group_count = _count_injective(slot_lists, cap=remaining, injective=True)
            if group_count == 0:
                failing = pinned
                for u in label_leaves:
                    failing |= self.anc[u]
                return failing
            total = min(total * group_count, remaining)
        self._report_bulk(min(total, remaining))
        return None

    # -- expansion -----------------------------------------------------
    def _report(self) -> None:
        usage: dict[int, list[int]] = {}
        for u, v in enumerate(self.mapping):
            if v < 0:
                continue  # deferred leaves are never mapped here
            usage.setdefault(v, []).append(u)
        if self.collect or self.on_embedding is not None:
            self._enumerate_expansions(usage)
        else:
            expansion = 1
            for v, users in usage.items():
                expansion *= _falling_factorial(self.capacities[v], len(users))
            self._report_bulk(expansion)

    def _enumerate_expansions(self, usage: dict[int, list[int]]) -> None:
        """Materialize every real embedding behind a compressed one."""
        hypervertices = list(usage)
        choice_iters = [
            itertools.permutations(self.members[v], len(usage[v])) for v in hypervertices
        ]
        for combo in itertools.product(*choice_iters):
            real = [-1] * self.n
            for v, chosen in zip(hypervertices, combo):
                for query_vertex, member in zip(usage[v], chosen):
                    real[query_vertex] = member
            self.stats.embeddings_found += 1
            embedding = tuple(real)
            if self.collect:
                self.embeddings.append(embedding)
            if self.on_embedding is not None:
                self.on_embedding(embedding)
            if self.stats.embeddings_found >= self.limit:
                from ..core.backtrack import _LimitReached

                raise _LimitReached


class BoostedDAFMatcher(Matcher):
    """DAF over the SE-compressed data graph (the paper's DAF-Boost)."""

    name = "DAF-Boost"

    def __init__(self, config: Optional[MatchConfig] = None) -> None:
        import dataclasses

        base = config if config is not None else MatchConfig()
        if base.induced or not base.injective:
            raise ValueError(
                "BoostedDAFMatcher supports plain injective matching only: "
                "SE-class expansion assumes edge constraints alone"
            )
        # Leaf deferral is supported in counting mode via the slot-based
        # capacity-aware counter; when embeddings are materialized the
        # expansion must see every vertex mapped, so deferral is disabled
        # per match() call (see below).
        self.config = base
        # id(graph) -> (graph, compression).  The graph is kept as a strong
        # reference deliberately: it pins the id so a garbage-collected
        # graph can never alias a new one, and the identity check below
        # guards against any other id reuse.
        self._compressed_cache: dict[
            int, tuple[Graph, tuple[Graph, list[int], list[list[int]]]]
        ] = {}

    def compress_data(self, data: Graph) -> tuple[Graph, list[int], list[list[int]]]:
        """Compress ``data``, caching per graph identity (compression is a
        one-time cost amortized over a query workload, as in BoostIso)."""
        entry = self._compressed_cache.get(id(data))
        if entry is None or entry[0] is not data:
            entry = (data, compress(data))
            self._compressed_cache[id(data)] = entry
        return entry[1]

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        validate_inputs(query, data)
        start = time.perf_counter()
        hyper, capacities, members = self.compress_data(data)
        dag = build_dag(query, hyper)
        initial_sets = [
            capacity_aware_candidates(query, hyper, capacities, u) for u in query.vertices()
        ]
        cs = build_candidate_space(
            query,
            hyper,
            dag,
            refinement_steps=self.config.refinement_steps,
            refine_to_fixpoint=self.config.refine_to_fixpoint,
            # Plain MND/NLF are capacity-blind and unsound on hypergraphs;
            # the capacity-aware equivalents are folded into initial_sets.
            use_local_filters=False,
            initial_sets=initial_sets,
        )
        stats = SearchStats(
            candidates_total=cs.size,
            filter_iterations=cs.refinement_steps,
            preprocess_seconds=time.perf_counter() - start,
        )
        result = MatchResult(stats=stats)
        if cs.is_empty():
            return result
        import dataclasses

        counting_only = not self.config.collect_embeddings and on_embedding is None
        effective = dataclasses.replace(
            self.config,
            leaf_decomposition=self.config.leaf_decomposition and counting_only,
        )
        engine = _CapacityEngine(
            capacities,
            members,
            cs,
            effective,
            limit=limit,
            deadline=Deadline(time_limit),
            stats=stats,
            on_embedding=on_embedding,
        )
        search_start = time.perf_counter()
        try:
            engine.run()
        except TimeoutSignal:
            result.timed_out = True
        stats.search_seconds = time.perf_counter() - search_start
        result.embeddings = engine.embeddings
        result.limit_reached = engine.limit_reached
        return result
