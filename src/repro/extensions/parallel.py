"""Parallel DAF (Appendix A.4).

The paper parallelizes the loop over the root's candidates (line 4 of
Algorithm 2) with OpenMP threads over shared memory.  CPython's GIL makes
threads useless for this CPU-bound search, so the same partitioning is
run across *processes* (DESIGN.md substitution 4): the CS structure is
built once in the parent, workers inherit it by fork (zero-copy on
Linux), and each worker backtracks from its slice of root candidates.

The paper's workers share a global embedding counter and stop at ``k``;
across processes we approximate by giving every worker the full budget
and truncating on merge — the wall-clock effect is the same "first
workers to find embeddings win" behaviour, slightly pessimistic for the
parallel side.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Optional

from ..core.config import MatchConfig
from ..core.matcher import DAFMatcher, PreparedQuery
from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Embedding,
    Matcher,
    MatchResult,
    SearchStats,
)

# Fork-shared state for workers (set in the parent right before the pool
# is spawned; inherited copy-on-write by each forked worker).
_shared: dict[str, object] = {}


def _worker(args: tuple[list[int], int, Optional[float]]) -> tuple[list[Embedding], int, int, bool, bool]:
    indices, limit, time_limit = args
    matcher: DAFMatcher = _shared["matcher"]  # type: ignore[assignment]
    prepared: PreparedQuery = _shared["prepared"]  # type: ignore[assignment]
    result = matcher.search(
        prepared, limit=limit, time_limit=time_limit, root_candidate_indices=indices
    )
    return (
        result.embeddings,
        result.stats.recursive_calls,
        result.stats.embeddings_found,
        result.limit_reached,
        result.timed_out,
    )


def split_round_robin(count: int, parts: int) -> list[list[int]]:
    """Partition ``range(count)`` round-robin into ``parts`` non-empty-ish
    slices (empty slices are dropped)."""
    slices = [list(range(start, count, parts)) for start in range(parts)]
    return [s for s in slices if s]


class ParallelDAFMatcher(Matcher):
    """DAF with the root-candidate loop split across worker processes."""

    def __init__(self, num_workers: Optional[int] = None, config: Optional[MatchConfig] = None) -> None:
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.config = config if config is not None else MatchConfig()
        self.name = f"{self.config.variant_name}-p{num_workers}"
        self._matcher = DAFMatcher(self.config)

    def match(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        prepared = self._matcher.prepare(query, data)
        stats = SearchStats(
            candidates_total=prepared.cs.size,
            filter_iterations=prepared.cs.refinement_steps,
            preprocess_seconds=prepared.preprocess_seconds,
        )
        merged = MatchResult(stats=stats)
        if prepared.is_negative:
            return merged
        root_count = len(prepared.cs.candidates[prepared.dag.root])
        slices = split_round_robin(root_count, self.num_workers)
        if self.num_workers == 1 or len(slices) <= 1:
            result = self._matcher.search(
                prepared, limit=limit, time_limit=time_limit, on_embedding=on_embedding
            )
            result.stats.preprocess_seconds = prepared.preprocess_seconds
            return result

        import time

        search_start = time.perf_counter()
        _shared["matcher"] = self._matcher
        _shared["prepared"] = prepared
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=len(slices)) as pool:
                outcomes = pool.map(
                    _worker, [(s, limit, time_limit) for s in slices]
                )
        finally:
            _shared.clear()
        stats.search_seconds = time.perf_counter() - search_start

        embeddings: list[Embedding] = []
        any_timeout = False
        for worker_embeddings, calls, found, limit_hit, timed_out in outcomes:
            embeddings.extend(worker_embeddings)
            stats.recursive_calls += calls
            stats.embeddings_found += found
            any_timeout = any_timeout or timed_out
        if stats.embeddings_found > limit:
            stats.embeddings_found = limit
        merged.embeddings = embeddings[:limit] if self.config.collect_embeddings else []
        if on_embedding is not None:
            for embedding in merged.embeddings:
                on_embedding(embedding)
        merged.limit_reached = stats.embeddings_found >= limit
        merged.timed_out = any_timeout and not merged.limit_reached
        return merged
