"""Parallel DAF (Appendix A.4) under crash-isolated supervision.

The paper parallelizes the loop over the root's candidates (line 4 of
Algorithm 2) with OpenMP threads over shared memory.  CPython's GIL makes
threads useless for this CPU-bound search, so the same partitioning is
run across *processes* (DESIGN.md substitution 4): the CS structure is
built once in the parent, workers inherit it by fork (zero-copy on
Linux), and each worker backtracks from its slice of root candidates.

Dispatch is **supervised**, not a bare ``pool.map``: each slice runs in
its own forked process with a dedicated result pipe, and the parent's
supervision loop

- receives result envelopes as workers finish (no barrier — the global
  embedding count is known continuously, so remaining slices are
  **cancelled early** once the limit is met);
- detects workers that die without an envelope (hard kill, OOM) via pipe
  EOF and **retries** the slice with exponential backoff, up to
  ``max_retries`` times;
- reaps workers that overrun the wall-clock budget (terminating them a
  small grace period past the deadline) while keeping every envelope
  already received — partial results are salvaged, never discarded;
- collects periodic **search checkpoints** piggy-backed on the progress
  pipe (every ``checkpoint_every`` recursive calls) so the retry of a
  crashed, erroring, or stalled slice *resumes* from the slice's last
  frontier instead of re-running it from scratch — the resumed worker's
  counters stay cumulative, so merged stats are unchanged;
- optionally treats a worker silent for ``stall_timeout`` seconds as
  wedged: it is terminated and its slice retried (from its last
  checkpoint) without waiting for the global deadline;
- records one :class:`~repro.interfaces.WorkerOutcome` per slice in
  ``SearchStats.worker_outcomes`` (``resumed_from_calls`` marks resumed
  retries) and flags ``MatchResult.partial_failure`` when a slice is
  permanently lost.

The paper's workers share a global embedding counter and stop at ``k``;
across processes we approximate by giving every worker the full budget
and truncating on merge — plus the supervisor's early cancellation once
the merged count reaches ``k``.

The wall-clock budget handed to workers is the *remaining* time after CS
construction (``time_limit - preprocess_seconds``), matching the
sequential path's accounting.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, Optional

from ..core.config import MatchConfig
from ..core.matcher import DAFMatcher, PreparedQuery
from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Embedding,
    Matcher,
    MatchResult,
    SearchStats,
    WorkerOutcome,
    _merge_metrics,
)
from ..obs import MetricsRegistry, ProgressReporter, TraceContext, slice_eta
from ..obs.sinks import EventSink
from ..resilience.faults import FAULTS

# Fork-shared state for workers (set in the parent right before workers
# are spawned; inherited copy-on-write by each forked worker).
_shared: dict[str, object] = {}


class _PipeSink(EventSink):
    """Forwards a worker's observability events to the supervisor.

    Workers cannot share the parent's file sink across a fork (interleaved
    writes would tear lines), so live events travel the existing result
    pipe as ``("event", slice_index, payload)`` envelopes and the
    supervisor re-emits them through the parent registry.
    """

    def __init__(self, conn, slice_index: int) -> None:
        self._conn = conn
        self._slice_index = slice_index

    def emit(self, event: dict) -> None:
        try:
            self._conn.send(("event", self._slice_index, event))
        except Exception:
            pass  # parent gone (cancelled/limit met); events are best-effort


def _slice_worker(
    conn,
    slice_index: int,
    attempt: int,
    indices: list[int],
    limit: int,
    time_limit: Optional[float],
    checkpoint_every: Optional[int] = None,
    resume_from: Optional[dict] = None,
) -> None:
    """Worker body: search one root-candidate slice, send one envelope.

    Every Python-level failure (including injected ``kind="raise"``
    faults) is converted into an ``("error", message, checkpoint?)``
    envelope; ``kind="exit"`` faults and real hard kills bypass this
    entirely, which the parent observes as pipe EOF.

    With ``checkpoint_every`` set, the engine's frontier additionally
    travels the pipe as ``("checkpoint", slice_index, payload)``
    envelopes at that cadence, and ``resume_from`` (the last such payload
    the supervisor kept) makes a retry continue where the dead attempt
    left off.

    Under observation each worker owns a private
    :class:`~repro.obs.MetricsRegistry` (lock-free single-owner counters)
    whose snapshot travels home inside the result envelope's
    ``SearchStats`` — plus a pipe-backed progress reporter for live
    per-slice heartbeats.
    """
    try:
        FAULTS.fire("worker.start", slice_index=slice_index, attempt=attempt)
        matcher: DAFMatcher = _shared["matcher"]  # type: ignore[assignment]
        prepared: PreparedQuery = _shared["prepared"]  # type: ignore[assignment]
        observe = _shared.get("observe")
        worker_obs = None
        if observe is not None:
            progress = None
            every = observe.get("progress_every")  # type: ignore[union-attr]
            if every:
                progress = ProgressReporter(
                    every_calls=every,
                    min_interval_seconds=observe.get("progress_interval", 0.5),  # type: ignore[union-attr]
                    scope=f"slice-{slice_index}",
                )
            worker_obs = MetricsRegistry(
                sink=_PipeSink(conn, slice_index), progress=progress
            )
            trace_payload = observe.get("trace")  # type: ignore[union-attr]
            if trace_payload:
                # Structural span name (slice + attempt) — deterministic
                # and fork-safe, no cross-process id coordination needed.
                worker_obs.trace = TraceContext.from_dict(trace_payload).child(
                    f"w{slice_index}a{attempt}"
                )

        def send_checkpoint(ckpt) -> None:
            if (
                ckpt.trace is None
                and worker_obs is not None
                and worker_obs.trace is not None
            ):
                ckpt.trace = worker_obs.trace.to_dict()
            try:
                conn.send(("checkpoint", slice_index, ckpt.to_dict()))
            except Exception:
                pass  # parent gone; checkpoints are best-effort

        result = matcher.search(
            prepared,
            limit=limit,
            time_limit=time_limit,
            root_candidate_indices=indices,
            observer=worker_obs,
            resume_from=resume_from,
            checkpoint_every=checkpoint_every,
            on_checkpoint=send_checkpoint if checkpoint_every else None,
        )
        # The supervisor owns the wall clock and built the CS once, so a
        # worker must not re-report those dimensions (SearchStats.merge
        # would double-count them across slices).
        wstats = result.stats
        wstats.preprocess_seconds = 0.0
        wstats.search_seconds = 0.0
        wstats.candidates_total = 0
        wstats.filter_iterations = 0
        conn.send(
            (
                "ok",
                result.embeddings,
                wstats,
                result.limit_reached,
                result.timed_out,
            )
        )
    except BaseException as exc:  # the envelope IS the error channel
        # A crash at a resumable safe phase carries its frontier home so
        # the supervisor's retry can continue instead of restarting.
        ckpt = getattr(exc, "search_checkpoint", None)
        try:
            conn.send(
                (
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    None if ckpt is None else ckpt.to_dict(),
                )
            )
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def split_round_robin(count: int, parts: int) -> list[list[int]]:
    """Partition ``range(count)`` round-robin into ``parts`` non-empty-ish
    slices (empty slices are dropped)."""
    slices = [list(range(start, count, parts)) for start in range(parts)]
    return [s for s in slices if s]


@dataclass
class _Active:
    """One in-flight worker process and its result pipe."""

    process: object
    conn: object
    slice_index: int
    attempt: int


class ParallelDAFMatcher(Matcher):
    """DAF with the root-candidate loop split across supervised workers.

    Parameters
    ----------
    num_workers:
        Maximum concurrently running worker processes (default: CPU
        count).
    max_retries:
        Re-dispatches allowed per slice after a crash or worker error
        before the slice is declared lost.
    backoff_base:
        First retry delay in seconds; doubles per subsequent attempt.
    kill_grace:
        Seconds past the wall-clock deadline before still-running
        workers are forcibly terminated (they normally stop themselves
        cooperatively well within this).
    checkpoint_every:
        Recursive-call cadence at which workers piggy-back search
        checkpoints on the result pipe (``None``/0 disables).  A retried
        slice resumes from its last received checkpoint.
    stall_timeout:
        With checkpoints flowing, a worker that sends *nothing* (no
        checkpoint, no event, no result) for this many seconds is
        presumed wedged: it is terminated and its slice retried from the
        last checkpoint.  ``None`` (default) keeps the old behavior of
        waiting for the global deadline.
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        config: Optional[MatchConfig] = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        kill_grace: float = 0.5,
        checkpoint_every: Optional[int] = 4096,
        stall_timeout: Optional[float] = None,
    ) -> None:
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if checkpoint_every is not None and checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0/None disables)")
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive")
        self.num_workers = num_workers
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.kill_grace = kill_grace
        self.checkpoint_every = checkpoint_every or None
        self.stall_timeout = stall_timeout
        self.config = config if config is not None else MatchConfig()
        self.name = f"{self.config.variant_name}-p{num_workers}"
        self._matcher = DAFMatcher(self.config)

    # ------------------------------------------------------------------
    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        obs = self.observer
        if obs is not None:
            prepared = self._matcher.prepare(query, data, observer=obs)
        else:
            # Positional call keeps drop-in `prepare` replacements working
            # (tests substitute plain (query, data) callables).
            prepared = self._matcher.prepare(query, data)
        stats = SearchStats(
            candidates_total=prepared.cs.size,
            filter_iterations=prepared.cs.refinement_steps,
            preprocess_seconds=prepared.preprocess_seconds,
        )
        merged = MatchResult(stats=stats)
        if prepared.is_negative:
            if obs is not None:
                stats.metrics = obs.snapshot()
                obs.emit_counters()
            return merged
        remaining: Optional[float] = None
        if time_limit is not None:
            # Workers get what is left after CS construction, exactly as
            # the sequential path deducts preprocess time.
            remaining = time_limit - prepared.preprocess_seconds
            if remaining <= 0:
                merged.timed_out = True
                if obs is not None:
                    stats.metrics = obs.snapshot()
                return merged
        root_count = len(prepared.cs.candidates[prepared.dag.root])
        slices = split_round_robin(root_count, self.num_workers)
        if self.num_workers == 1 or len(slices) <= 1:
            result = self._matcher.search(
                prepared,
                limit=limit,
                time_limit=remaining,
                on_embedding=on_embedding,
                observer=obs,
            )
            result.stats.preprocess_seconds = prepared.preprocess_seconds
            return result

        search_start = time.perf_counter()
        _shared["matcher"] = self._matcher
        _shared["prepared"] = prepared
        if obs is not None:
            reporter = obs.progress
            _shared["observe"] = {
                "progress_every": reporter.every_calls if reporter is not None else 0,
                "progress_interval": (
                    reporter.min_interval_seconds if reporter is not None else 0.5
                ),
                # Workers derive their own child spans (w<slice>a<attempt>)
                # from the request's context, so every forwarded event
                # lands in the same trace as the parent's.
                "trace": obs.trace.to_dict() if obs.trace is not None else None,
            }
        try:
            embeddings, any_timeout = self._supervise(
                slices, limit, remaining, stats, merged
            )
        finally:
            _shared.clear()
        stats.search_seconds = time.perf_counter() - search_start

        if stats.embeddings_found > limit:
            stats.embeddings_found = limit
        merged.embeddings = embeddings[:limit] if self.config.collect_embeddings else []
        if on_embedding is not None:
            for embedding in merged.embeddings:
                on_embedding(embedding)
        merged.limit_reached = stats.embeddings_found >= limit
        merged.timed_out = any_timeout and not merged.limit_reached
        if obs is not None:
            # The parent registry holds the filter-stage story; worker
            # snapshots (already merged into stats.metrics slice by slice)
            # hold the search story — their summed "search" span is total
            # worker CPU, while stats.search_seconds stays wall clock.
            worker_payload = stats.metrics
            snap = obs.snapshot()
            stats.metrics = (
                _merge_metrics(snap, worker_payload) if worker_payload else snap
            )
            obs.emit_counters()
        return merged

    # ------------------------------------------------------------------
    def _supervise(
        self,
        slices: list[list[int]],
        limit: int,
        remaining: Optional[float],
        stats: SearchStats,
        merged: MatchResult,
    ) -> tuple[list[Embedding], bool]:
        """Dispatch every slice, salvage whatever the workers deliver.

        Returns the merged embedding list and whether any slice (or the
        supervisor itself) hit the wall clock.  Populates
        ``stats.worker_outcomes`` / ``worker_retries`` and
        ``merged.partial_failure`` as side effects.
        """
        ctx = multiprocessing.get_context("fork")
        obs = self.observer
        supervise_start = time.perf_counter()
        deadline = None if remaining is None else time.perf_counter() + remaining
        # (slice_index, attempt, not_before) — retries wait out a backoff.
        pending: list[tuple[int, int, float]] = [(i, 0, 0.0) for i in range(len(slices))]
        active: dict[int, _Active] = {}
        outcomes: dict[int, WorkerOutcome] = {}
        embeddings: list[Embedding] = []
        any_timeout = False
        # Freshest checkpoint payload per slice (piggy-backed on the
        # pipe); a retry dispatches with it so the slice resumes instead
        # of restarting.  ``resumed_from`` records the counter value the
        # *currently running* attempt resumed at, ``last_seen`` the last
        # time each active worker sent anything (stall detection).
        checkpoints: dict[int, dict] = {}
        resumed_from: dict[int, int] = {}
        last_seen: dict[int, float] = {}

        def keep_checkpoint(index: int, payload: Optional[dict]) -> None:
            if not payload:
                return
            prev = checkpoints.get(index)
            if prev is None or payload["recursive_calls"] >= prev["recursive_calls"]:
                checkpoints[index] = payload

        def retry_or_lose(index: int, attempt: int, status: str, error: str) -> None:
            if attempt < self.max_retries:
                stats.worker_retries += 1
                delay = self.backoff_base * (2**attempt)
                pending.append((index, attempt + 1, time.perf_counter() + delay))
            else:
                outcome(index, status, attempt, error=error)
                merged.partial_failure = True

        def outcome(index: int, status: str, attempt: int, **kw) -> None:
            record = WorkerOutcome(
                slice_index=index,
                size=len(slices[index]),
                status=status,
                attempts=attempt + 1,
                **kw,
            )
            outcomes[index] = record
            if obs is not None:
                event = {
                    "event": "worker",
                    "slice": index,
                    "status": status,
                    "attempts": record.attempts,
                    "recursive_calls": record.recursive_calls,
                    "embeddings_found": record.embeddings_found,
                    "timed_out": record.timed_out,
                    **(
                        {"resumed_from_calls": record.resumed_from_calls}
                        if record.resumed_from_calls
                        else {}
                    ),
                    **({"error": record.error} if record.error else {}),
                }
                if obs.trace is not None:
                    # The outcome describes one worker *attempt*: stamp it
                    # with that attempt's structural span (not the parent's
                    # s0), so a crashed a0 and its a1 retry are
                    # distinguishable in the trace tree from ids alone.
                    obs.trace.child(f"w{index}a{attempt}").stamp(event)
                obs.emit(event)

        def heartbeat() -> None:
            """Supervisor-level progress: slice completion rate and ETA."""
            if obs is None:
                return
            done = len(outcomes)
            elapsed = time.perf_counter() - supervise_start
            event = {
                "event": "progress",
                "scope": "parallel",
                "slices_done": done,
                "slices_total": len(slices),
                "calls": stats.recursive_calls,
                "embeddings": stats.embeddings_found,
                "elapsed_seconds": round(elapsed, 3),
            }
            eta = slice_eta(done, len(slices), elapsed)
            if eta is not None:
                event["eta_seconds"] = round(eta, 3)
            obs.emit(event)
            reporter = obs.progress
            if reporter is not None and reporter.stream is not None:
                eta_text = "?" if eta is None else f"{eta:.1f}s"
                reporter.stream.write(
                    f"[parallel] {elapsed:8.1f}s  slices={done}/{len(slices)} "
                    f"calls={stats.recursive_calls} "
                    f"embeddings={stats.embeddings_found} eta={eta_text}\n"
                )
                reporter.stream.flush()

        def stop_all(status: str, timed_out: bool) -> None:
            for entry in pending:
                # attempts = tries already made (entry[1] is the next one).
                outcome(entry[0], status, entry[1] - 1, timed_out=timed_out)
            pending.clear()
            for act in active.values():
                act.process.terminate()
                act.process.join()
                act.conn.close()
                outcome(act.slice_index, status, act.attempt, timed_out=timed_out)
            active.clear()

        try:
            while pending or active:
                now = time.perf_counter()
                if deadline is not None and now > deadline + self.kill_grace:
                    # Cooperative stop failed (hung or stuck workers):
                    # reap them and keep everything already salvaged.
                    stop_all("killed", timed_out=True)
                    any_timeout = True
                    break
                if self.stall_timeout is not None:
                    # A worker that has sent nothing (no heartbeat, no
                    # checkpoint) for stall_timeout seconds is presumed
                    # hung: kill it and route through the crash/retry
                    # path, which resumes from its freshest checkpoint.
                    for index in list(active):
                        if now - last_seen.get(index, now) <= self.stall_timeout:
                            continue
                        act = active.pop(index)
                        act.process.terminate()
                        act.process.join()
                        act.conn.close()
                        retry_or_lose(
                            index,
                            act.attempt,
                            "crashed",
                            f"worker stalled (silent > {self.stall_timeout}s)",
                        )
                # Launch due work into free slots.
                launched = True
                while launched and len(active) < self.num_workers:
                    launched = False
                    for position, (index, attempt, not_before) in enumerate(pending):
                        if index in active or not_before > now:
                            continue
                        pending.pop(position)
                        worker_limit = (
                            None if deadline is None else max(0.001, deadline - now)
                        )
                        parent_conn, child_conn = ctx.Pipe(duplex=False)
                        ckpt = checkpoints.get(index) if attempt > 0 else None
                        process = ctx.Process(
                            target=_slice_worker,
                            args=(
                                child_conn,
                                index,
                                attempt,
                                slices[index],
                                limit,
                                worker_limit,
                                self.checkpoint_every,
                                ckpt,
                            ),
                            daemon=True,
                        )
                        process.start()
                        child_conn.close()
                        active[index] = _Active(process, parent_conn, index, attempt)
                        last_seen[index] = now
                        if ckpt is not None:
                            resumed_from[index] = ckpt["recursive_calls"]
                        launched = True
                        break
                if not active:
                    # Everything pending is backing off; sleep to the
                    # earliest retry (bounded so deadline checks still run).
                    wake = min(entry[2] for entry in pending)
                    time.sleep(min(max(wake - now, 0.0), 0.05) or 0.001)
                    continue
                ready = mp_connection.wait(
                    [act.conn for act in active.values()], timeout=0.05
                )
                for conn in ready:
                    act = next(a for a in active.values() if a.conn is conn)
                    try:
                        envelope = conn.recv()
                    except (EOFError, OSError):
                        envelope = None  # died without a word: hard crash
                    last_seen[act.slice_index] = time.perf_counter()
                    if envelope is not None and envelope[0] == "checkpoint":
                        # Periodic search state from a still-running
                        # worker; keep the freshest so a retry after a
                        # crash resumes instead of restarting.
                        keep_checkpoint(act.slice_index, envelope[2])
                        continue
                    if envelope is not None and envelope[0] == "event":
                        # Live observability from a still-running worker
                        # (heartbeats, spans): re-emit under the parent
                        # registry and leave the worker alone.
                        if obs is not None:
                            _, slice_index, payload = envelope
                            payload.setdefault("scope", f"slice-{slice_index}")
                            obs.emit(payload)
                        continue
                    del active[act.slice_index]
                    act.process.join(timeout=5.0)
                    if act.process.is_alive():
                        act.process.terminate()
                        act.process.join()
                    conn.close()
                    if envelope is not None and envelope[0] == "ok":
                        _, embs, worker_stats, _limit_hit, timed_out = envelope
                        embeddings.extend(embs)
                        # One merge rule for every numeric/list/metrics
                        # field — the worker already zeroed the dimensions
                        # the supervisor owns (clock, CS size).
                        stats.merge(worker_stats)
                        any_timeout = any_timeout or timed_out
                        outcome(
                            act.slice_index,
                            "ok",
                            act.attempt,
                            recursive_calls=worker_stats.recursive_calls,
                            embeddings_found=worker_stats.embeddings_found,
                            timed_out=timed_out,
                            resumed_from_calls=resumed_from.get(act.slice_index, 0),
                        )
                        heartbeat()
                        if stats.embeddings_found >= limit:
                            # Global limit met: remaining slices are moot.
                            stop_all("cancelled", timed_out=False)
                            break
                        continue
                    # Worker raised (envelope) or died silently (EOF).
                    error = envelope[1] if envelope is not None else "worker process died"
                    status = "error" if envelope is not None else "crashed"
                    if envelope is not None and len(envelope) > 2:
                        # The worker captured its search state at the
                        # point of failure; prefer it over any older
                        # periodic checkpoint.
                        keep_checkpoint(act.slice_index, envelope[2])
                    retry_or_lose(act.slice_index, act.attempt, status, error)
        except BaseException:
            # Supervisor itself interrupted/crashed: reap children first.
            stop_all("killed", timed_out=False)
            raise
        finally:
            stats.worker_outcomes = [outcomes[i] for i in sorted(outcomes)]
        return embeddings, any_timeout
