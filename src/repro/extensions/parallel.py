"""Parallel DAF (Appendix A.4) under crash-isolated supervision.

The paper parallelizes the loop over the root's candidates (line 4 of
Algorithm 2) with OpenMP threads over shared memory.  CPython's GIL makes
threads useless for this CPU-bound search, so the same partitioning is
run across *processes* (DESIGN.md substitution 4): the CS structure is
built once in the parent, workers inherit it by fork (zero-copy on
Linux), and each worker backtracks from its slice of root candidates.

Dispatch is **supervised**, not a bare ``pool.map``: each slice runs in
its own forked process with a dedicated result pipe, and the parent's
supervision loop

- receives result envelopes as workers finish (no barrier — the global
  embedding count is known continuously, so remaining slices are
  **cancelled early** once the limit is met);
- detects workers that die without an envelope (hard kill, OOM) via pipe
  EOF and **retries** the slice with exponential backoff, up to
  ``max_retries`` times;
- reaps workers that overrun the wall-clock budget (terminating them a
  small grace period past the deadline) while keeping every envelope
  already received — partial results are salvaged, never discarded;
- records one :class:`~repro.interfaces.WorkerOutcome` per slice in
  ``SearchStats.worker_outcomes`` and flags
  ``MatchResult.partial_failure`` when a slice is permanently lost.

The paper's workers share a global embedding counter and stop at ``k``;
across processes we approximate by giving every worker the full budget
and truncating on merge — plus the supervisor's early cancellation once
the merged count reaches ``k``.

The wall-clock budget handed to workers is the *remaining* time after CS
construction (``time_limit - preprocess_seconds``), matching the
sequential path's accounting.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, Optional

from ..core.config import MatchConfig
from ..core.matcher import DAFMatcher, PreparedQuery
from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Embedding,
    Matcher,
    MatchResult,
    SearchStats,
    WorkerOutcome,
)
from ..resilience.faults import FAULTS

# Fork-shared state for workers (set in the parent right before workers
# are spawned; inherited copy-on-write by each forked worker).
_shared: dict[str, object] = {}


def _slice_worker(
    conn,
    slice_index: int,
    attempt: int,
    indices: list[int],
    limit: int,
    time_limit: Optional[float],
) -> None:
    """Worker body: search one root-candidate slice, send one envelope.

    Every Python-level failure (including injected ``kind="raise"``
    faults) is converted into an ``("error", message)`` envelope;
    ``kind="exit"`` faults and real hard kills bypass this entirely,
    which the parent observes as pipe EOF.
    """
    try:
        FAULTS.fire("worker.start", slice_index=slice_index, attempt=attempt)
        matcher: DAFMatcher = _shared["matcher"]  # type: ignore[assignment]
        prepared: PreparedQuery = _shared["prepared"]  # type: ignore[assignment]
        result = matcher.search(
            prepared,
            limit=limit,
            time_limit=time_limit,
            root_candidate_indices=indices,
        )
        conn.send(
            (
                "ok",
                result.embeddings,
                result.stats.recursive_calls,
                result.stats.embeddings_found,
                result.limit_reached,
                result.timed_out,
            )
        )
    except BaseException as exc:  # the envelope IS the error channel
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def split_round_robin(count: int, parts: int) -> list[list[int]]:
    """Partition ``range(count)`` round-robin into ``parts`` non-empty-ish
    slices (empty slices are dropped)."""
    slices = [list(range(start, count, parts)) for start in range(parts)]
    return [s for s in slices if s]


@dataclass
class _Active:
    """One in-flight worker process and its result pipe."""

    process: object
    conn: object
    slice_index: int
    attempt: int


class ParallelDAFMatcher(Matcher):
    """DAF with the root-candidate loop split across supervised workers.

    Parameters
    ----------
    num_workers:
        Maximum concurrently running worker processes (default: CPU
        count).
    max_retries:
        Re-dispatches allowed per slice after a crash or worker error
        before the slice is declared lost.
    backoff_base:
        First retry delay in seconds; doubles per subsequent attempt.
    kill_grace:
        Seconds past the wall-clock deadline before still-running
        workers are forcibly terminated (they normally stop themselves
        cooperatively well within this).
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        config: Optional[MatchConfig] = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        kill_grace: float = 0.5,
    ) -> None:
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.num_workers = num_workers
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.kill_grace = kill_grace
        self.config = config if config is not None else MatchConfig()
        self.name = f"{self.config.variant_name}-p{num_workers}"
        self._matcher = DAFMatcher(self.config)

    # ------------------------------------------------------------------
    def match(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        prepared = self._matcher.prepare(query, data)
        stats = SearchStats(
            candidates_total=prepared.cs.size,
            filter_iterations=prepared.cs.refinement_steps,
            preprocess_seconds=prepared.preprocess_seconds,
        )
        merged = MatchResult(stats=stats)
        if prepared.is_negative:
            return merged
        remaining: Optional[float] = None
        if time_limit is not None:
            # Workers get what is left after CS construction, exactly as
            # the sequential path deducts preprocess time.
            remaining = time_limit - prepared.preprocess_seconds
            if remaining <= 0:
                merged.timed_out = True
                return merged
        root_count = len(prepared.cs.candidates[prepared.dag.root])
        slices = split_round_robin(root_count, self.num_workers)
        if self.num_workers == 1 or len(slices) <= 1:
            result = self._matcher.search(
                prepared, limit=limit, time_limit=remaining, on_embedding=on_embedding
            )
            result.stats.preprocess_seconds = prepared.preprocess_seconds
            return result

        search_start = time.perf_counter()
        _shared["matcher"] = self._matcher
        _shared["prepared"] = prepared
        try:
            embeddings, any_timeout = self._supervise(
                slices, limit, remaining, stats, merged
            )
        finally:
            _shared.clear()
        stats.search_seconds = time.perf_counter() - search_start

        if stats.embeddings_found > limit:
            stats.embeddings_found = limit
        merged.embeddings = embeddings[:limit] if self.config.collect_embeddings else []
        if on_embedding is not None:
            for embedding in merged.embeddings:
                on_embedding(embedding)
        merged.limit_reached = stats.embeddings_found >= limit
        merged.timed_out = any_timeout and not merged.limit_reached
        return merged

    # ------------------------------------------------------------------
    def _supervise(
        self,
        slices: list[list[int]],
        limit: int,
        remaining: Optional[float],
        stats: SearchStats,
        merged: MatchResult,
    ) -> tuple[list[Embedding], bool]:
        """Dispatch every slice, salvage whatever the workers deliver.

        Returns the merged embedding list and whether any slice (or the
        supervisor itself) hit the wall clock.  Populates
        ``stats.worker_outcomes`` / ``worker_retries`` and
        ``merged.partial_failure`` as side effects.
        """
        ctx = multiprocessing.get_context("fork")
        deadline = None if remaining is None else time.perf_counter() + remaining
        # (slice_index, attempt, not_before) — retries wait out a backoff.
        pending: list[tuple[int, int, float]] = [(i, 0, 0.0) for i in range(len(slices))]
        active: dict[int, _Active] = {}
        outcomes: dict[int, WorkerOutcome] = {}
        embeddings: list[Embedding] = []
        any_timeout = False

        def outcome(index: int, status: str, attempt: int, **kw) -> None:
            outcomes[index] = WorkerOutcome(
                slice_index=index,
                size=len(slices[index]),
                status=status,
                attempts=attempt + 1,
                **kw,
            )

        def stop_all(status: str, timed_out: bool) -> None:
            for entry in pending:
                # attempts = tries already made (entry[1] is the next one).
                outcome(entry[0], status, entry[1] - 1, timed_out=timed_out)
            pending.clear()
            for act in active.values():
                act.process.terminate()
                act.process.join()
                act.conn.close()
                outcome(act.slice_index, status, act.attempt, timed_out=timed_out)
            active.clear()

        try:
            while pending or active:
                now = time.perf_counter()
                if deadline is not None and now > deadline + self.kill_grace:
                    # Cooperative stop failed (hung or stuck workers):
                    # reap them and keep everything already salvaged.
                    stop_all("killed", timed_out=True)
                    any_timeout = True
                    break
                # Launch due work into free slots.
                launched = True
                while launched and len(active) < self.num_workers:
                    launched = False
                    for position, (index, attempt, not_before) in enumerate(pending):
                        if index in active or not_before > now:
                            continue
                        pending.pop(position)
                        worker_limit = (
                            None if deadline is None else max(0.001, deadline - now)
                        )
                        parent_conn, child_conn = ctx.Pipe(duplex=False)
                        process = ctx.Process(
                            target=_slice_worker,
                            args=(
                                child_conn,
                                index,
                                attempt,
                                slices[index],
                                limit,
                                worker_limit,
                            ),
                            daemon=True,
                        )
                        process.start()
                        child_conn.close()
                        active[index] = _Active(process, parent_conn, index, attempt)
                        launched = True
                        break
                if not active:
                    # Everything pending is backing off; sleep to the
                    # earliest retry (bounded so deadline checks still run).
                    wake = min(entry[2] for entry in pending)
                    time.sleep(min(max(wake - now, 0.0), 0.05) or 0.001)
                    continue
                ready = mp_connection.wait(
                    [act.conn for act in active.values()], timeout=0.05
                )
                for conn in ready:
                    act = next(a for a in active.values() if a.conn is conn)
                    try:
                        envelope = conn.recv()
                    except (EOFError, OSError):
                        envelope = None  # died without a word: hard crash
                    del active[act.slice_index]
                    act.process.join(timeout=5.0)
                    if act.process.is_alive():
                        act.process.terminate()
                        act.process.join()
                    conn.close()
                    if envelope is not None and envelope[0] == "ok":
                        _, embs, calls, found, _limit_hit, timed_out = envelope
                        embeddings.extend(embs)
                        stats.recursive_calls += calls
                        stats.embeddings_found += found
                        any_timeout = any_timeout or timed_out
                        outcome(
                            act.slice_index,
                            "ok",
                            act.attempt,
                            recursive_calls=calls,
                            embeddings_found=found,
                            timed_out=timed_out,
                        )
                        if stats.embeddings_found >= limit:
                            # Global limit met: remaining slices are moot.
                            stop_all("cancelled", timed_out=False)
                            break
                        continue
                    # Worker raised (envelope) or died silently (EOF).
                    error = envelope[1] if envelope is not None else "worker process died"
                    status = "error" if envelope is not None else "crashed"
                    if act.attempt < self.max_retries:
                        stats.worker_retries += 1
                        delay = self.backoff_base * (2**act.attempt)
                        pending.append(
                            (act.slice_index, act.attempt + 1, time.perf_counter() + delay)
                        )
                    else:
                        outcome(act.slice_index, status, act.attempt, error=error)
                        merged.partial_failure = True
        except BaseException:
            # Supervisor itself interrupted/crashed: reap children first.
            stop_all("killed", timed_out=False)
            raise
        finally:
            stats.worker_outcomes = [outcomes[i] for i in sorted(outcomes)]
        return embeddings, any_timeout
