"""Downstream analysis built on the matcher: motifs and automorphisms."""

from .motifs import (
    MotifCensus,
    MotifReport,
    automorphism_count,
    automorphisms,
    count_occurrences,
    occurrence_vertex_sets,
)

__all__ = [
    "MotifCensus",
    "MotifReport",
    "automorphism_count",
    "automorphisms",
    "count_occurrences",
    "occurrence_vertex_sets",
]
