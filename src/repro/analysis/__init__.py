"""Downstream analysis built on the matcher: motifs, automorphisms, and
the deterministic feature rows behind EXPLAIN ANALYZE (docs/explain.md)."""

from .features import (
    FEATURE_COLUMNS,
    effort_features,
    feature_row,
    graph_features,
    pair_features,
    plan_features,
    validate_feature_row,
)
from .motifs import (
    MotifCensus,
    MotifReport,
    automorphism_count,
    automorphisms,
    count_occurrences,
    occurrence_vertex_sets,
)

__all__ = [
    "FEATURE_COLUMNS",
    "MotifCensus",
    "MotifReport",
    "automorphism_count",
    "automorphisms",
    "count_occurrences",
    "effort_features",
    "feature_row",
    "graph_features",
    "occurrence_vertex_sets",
    "pair_features",
    "plan_features",
    "validate_feature_row",
]
