"""Deterministic query/data/plan/effort feature extraction.

*Deep Analysis on Subgraph Isomorphism* (PAPERS.md) shows no single
algorithm or matching order dominates across workloads — an algorithm
selector needs cheap, reproducible features of the (query, data) pair
plus the post-run effort profile to learn from.  This module is that
substrate: every feature is a pure function of graph structure or of
deterministic counters (never wall-clock), so the same instance always
yields the same row, bit for bit.

Rows are flat ``name -> number`` dicts drawn from the
:data:`FEATURE_COLUMNS` catalogue; :func:`validate_feature_row` gates
drift.  :func:`repro.obs.explain.build_report` embeds one row in every
EXPLAIN ANALYZE report (the ``features`` block — see docs/explain.md).
"""

from __future__ import annotations

from typing import Optional

from ..core.filters import initial_candidate_count
from ..graph.graph import Graph

#: Catalogue of every feature a row may carry, with its meaning.  The
#: docs table in docs/explain.md is generated from this dict; rows are
#: validated against it (unknown keys are errors).
FEATURE_COLUMNS: dict[str, str] = {
    # -- query structure ------------------------------------------------
    "q_vertices": "query vertex count |V(q)|",
    "q_edges": "query edge count |E(q)|",
    "q_labels": "distinct labels in the query",
    "q_density": "2|E| / (|V| (|V|-1)), 0 for a single vertex",
    "q_deg_mean": "mean query degree",
    "q_deg_max": "maximum query degree",
    "q_deg_var": "population variance of query degrees",
    "q_label_freq_mean": "mean per-label vertex share in the query",
    "q_label_freq_max": "largest per-label vertex share in the query",
    # -- data structure -------------------------------------------------
    "d_vertices": "data vertex count |V(G)|",
    "d_edges": "data edge count |E(G)|",
    "d_labels": "distinct labels in the data graph",
    "d_density": "2|E| / (|V| (|V|-1)), 0 for a single vertex",
    "d_deg_mean": "mean data degree",
    "d_deg_max": "maximum data degree",
    "d_deg_var": "population variance of data degrees",
    "d_label_freq_mean": "mean per-label vertex share in the data graph",
    "d_label_freq_max": "largest per-label vertex share in the data graph",
    # -- pair: initial candidate cardinalities (C_ini, paper §3) --------
    "cand_total": "sum over query vertices of |C_ini(u)|",
    "cand_min": "smallest |C_ini(u)|",
    "cand_max": "largest |C_ini(u)|",
    "cand_mean": "mean |C_ini(u)|",
    # -- plan: CS after DAG-graph DP (EXPLAIN static stage) -------------
    "plan_cs_size": "total candidates in the refined CS",
    "plan_cs_edges": "CS edge count",
    "plan_filtering_rate": "fraction of C_ini removed by refinement",
    "plan_negative": "1 if some C(u) emptied (no search needed)",
    # -- effort: post-run deterministic counters (EXPLAIN ANALYZE) ------
    "effort_calls": "recursive calls the search performed",
    "effort_embeddings": "embeddings reported",
    "effort_entered": "children_entered counter total",
    "effort_examined": "candidates_examined counter total",
    "effort_conflicts": "prune_conflict counter total",
    "effort_empties": "prune_empty counter total",
    "effort_fs_cuts": "failing-set backjumps (Lemma 6.1 cuts)",
    "effort_fs_skipped": "sibling subtrees skipped by failing sets",
    "effort_calls_per_embedding": "recursive calls per embedding found",
}


def _degree_stats(graph: Graph) -> tuple[float, int, float]:
    degrees = [graph.degree(v) for v in graph.vertices()]
    if not degrees:
        return 0.0, 0, 0.0
    mean = sum(degrees) / len(degrees)
    variance = sum((d - mean) ** 2 for d in degrees) / len(degrees)
    return mean, max(degrees), variance


def _label_shares(graph: Graph) -> list[float]:
    counts: dict[str, int] = {}
    for v in graph.vertices():
        label = graph.label(v)
        counts[label] = counts.get(label, 0) + 1
    n = graph.num_vertices
    return [count / n for count in counts.values()] if n else []


def graph_features(graph: Graph, prefix: str) -> dict[str, float]:
    """Structure features of one graph under a ``q_``/``d_`` prefix."""
    n = graph.num_vertices
    mean, peak, variance = _degree_stats(graph)
    shares = _label_shares(graph)
    density = 2 * graph.num_edges / (n * (n - 1)) if n > 1 else 0.0
    return {
        f"{prefix}_vertices": n,
        f"{prefix}_edges": graph.num_edges,
        f"{prefix}_labels": len(shares),
        f"{prefix}_density": density,
        f"{prefix}_deg_mean": mean,
        f"{prefix}_deg_max": peak,
        f"{prefix}_deg_var": variance,
        f"{prefix}_label_freq_mean": sum(shares) / len(shares) if shares else 0.0,
        f"{prefix}_label_freq_max": max(shares) if shares else 0.0,
    }


def pair_features(query: Graph, data: Graph) -> dict[str, float]:
    """Initial candidate cardinalities of the (query, data) pair."""
    counts = [initial_candidate_count(query, data, u) for u in query.vertices()]
    if not counts:
        return {"cand_total": 0, "cand_min": 0, "cand_max": 0, "cand_mean": 0.0}
    return {
        "cand_total": sum(counts),
        "cand_min": min(counts),
        "cand_max": max(counts),
        "cand_mean": sum(counts) / len(counts),
    }


def plan_features(plan) -> dict[str, float]:
    """CS-stage features from a :class:`repro.obs.explain.QueryPlan`."""
    return {
        "plan_cs_size": plan.cs_size,
        "plan_cs_edges": plan.cs_edges,
        "plan_filtering_rate": plan.filtering_rate,
        "plan_negative": 1 if plan.is_negative else 0,
    }


def effort_features(totals: dict, result=None) -> dict[str, float]:
    """Post-run effort features from deterministic counters only."""
    calls = result.stats.recursive_calls if result is not None else 0
    embeddings = result.stats.embeddings_found if result is not None else 0
    return {
        "effort_calls": calls,
        "effort_embeddings": embeddings,
        "effort_entered": totals.get("children_entered", 0),
        "effort_examined": totals.get("candidates_examined", 0),
        "effort_conflicts": totals.get("prune_conflict", 0),
        "effort_empties": totals.get("prune_empty", 0),
        "effort_fs_cuts": totals.get("fs_cuts", 0),
        "effort_fs_skipped": totals.get("prune_failing_set", 0),
        "effort_calls_per_embedding": calls / embeddings if embeddings else float(calls),
    }


def feature_row(
    query: Graph,
    data: Graph,
    plan=None,
    totals: Optional[dict] = None,
    result=None,
) -> dict[str, float]:
    """One flat feature row for a (query, data) instance.

    Always carries the query/data/pair blocks; ``plan`` adds the CS
    features and ``totals``/``result`` add the post-run effort block.
    """
    row = graph_features(query, "q")
    row.update(graph_features(data, "d"))
    row.update(pair_features(query, data))
    if plan is not None:
        row.update(plan_features(plan))
    if totals is not None or result is not None:
        row.update(effort_features(totals or {}, result))
    return row


def validate_feature_row(row: dict) -> list[str]:
    """Check a row against :data:`FEATURE_COLUMNS`; returns errors."""
    errors: list[str] = []
    if not isinstance(row, dict):
        return [f"feature row is not a dict: {type(row).__name__}"]
    for name, value in row.items():
        if name not in FEATURE_COLUMNS:
            errors.append(f"unknown feature {name!r} (add it to FEATURE_COLUMNS)")
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(f"feature {name!r} must be numeric, got {value!r}")
    return errors
