"""Motif analysis on top of the matcher: automorphisms and distinct
occurrence counting.

``find_embeddings`` enumerates *mappings*: a motif with a non-trivial
automorphism group is reported once per symmetry (the C6 ring has 12
embeddings into benzene — one hexagon times 12 automorphic images).
Motif analysis usually wants **occurrences** — distinct vertex sets, or
distinct subgraph images — which this module provides:

- :func:`automorphisms` / :func:`automorphism_count` — Aut(q), computed
  by matching the query into itself (an embedding of ``q`` in ``q`` is a
  bijection preserving labels and edges; when it also reflects edges it
  is an automorphism — guaranteed here by matching in induced mode).
- :func:`count_occurrences` — embeddings grouped by their *image vertex
  set* (the usual "how many triangles" semantics).
- :func:`occurrence_vertex_sets` — the distinct images themselves.
- :class:`MotifCensus` — run a dictionary of motifs over a data graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.config import MatchConfig
from ..core.matcher import DAFMatcher
from ..graph.graph import Graph
from ..interfaces import DEFAULT_LIMIT, Embedding, MatchOptions, MatchRequest


def automorphisms(query: Graph) -> list[Embedding]:
    """All automorphisms of ``query`` (label-preserving).

    Matching ``query`` into itself with ``induced=True`` yields exactly
    the bijections preserving labels, edges and non-edges — the
    automorphism group.  Queries here are small (motifs), so this is
    cheap.
    """
    matcher = DAFMatcher(MatchConfig(induced=True))
    request = MatchRequest(query, query, options=MatchOptions(limit=10**9))
    return matcher.run_request(request).embeddings


def automorphism_count(query: Graph) -> int:
    """|Aut(query)|; always >= 1 (the identity)."""
    return len(automorphisms(query))


def occurrence_vertex_sets(
    query: Graph,
    data: Graph,
    limit: int = DEFAULT_LIMIT,
    time_limit: Optional[float] = None,
    induced: bool = False,
) -> set[frozenset[int]]:
    """Distinct data-vertex sets hosting the motif.

    Note that with the embedding cap hit, the result is a lower bound
    (the paper's k-limit protocol applies here too).
    """
    matcher = DAFMatcher(MatchConfig(induced=induced))
    result = matcher.run_request(
        MatchRequest(query, data, options=MatchOptions(limit=limit, time_limit=time_limit))
    )
    return {frozenset(embedding) for embedding in result.embeddings}


def count_occurrences(
    query: Graph,
    data: Graph,
    limit: int = DEFAULT_LIMIT,
    time_limit: Optional[float] = None,
    induced: bool = False,
) -> int:
    """Number of distinct vertex sets hosting the motif.

    For motifs whose embeddings into a fixed vertex set are exactly the
    automorphic images (always true for induced matching), this equals
    ``embedding count / |Aut(q)|``; the set-based computation here also
    stays correct for non-induced matching where one vertex set can host
    several non-isomorphic images.
    """
    return len(
        occurrence_vertex_sets(query, data, limit=limit, time_limit=time_limit, induced=induced)
    )


@dataclass
class MotifReport:
    """One motif's census entry."""

    name: str
    embeddings: int
    occurrences: int
    automorphisms: int
    capped: bool


class MotifCensus:
    """Run a battery of motifs over a data graph.

    Examples
    --------
    >>> from repro.graph import Graph, cycle_graph, path_graph
    >>> data = cycle_graph(["A"] * 5)
    >>> census = MotifCensus({"P3": path_graph(["A"] * 3)})
    >>> [ (r.name, r.occurrences) for r in census.run(data) ]
    [('P3', 5)]
    """

    def __init__(self, motifs: dict[str, Graph], induced: bool = False) -> None:
        if not motifs:
            raise ValueError("need at least one motif")
        self.motifs = dict(motifs)
        self.induced = induced

    def run(
        self,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
    ) -> list[MotifReport]:
        reports = []
        matcher = DAFMatcher(MatchConfig(induced=self.induced))
        for name, motif in self.motifs.items():
            result = matcher.run_request(
                MatchRequest(motif, data, options=MatchOptions(limit=limit, time_limit=time_limit))
            )
            images = {frozenset(e) for e in result.embeddings}
            reports.append(
                MotifReport(
                    name=name,
                    embeddings=result.count,
                    occurrences=len(images),
                    automorphisms=automorphism_count(motif),
                    capped=result.limit_reached or result.timed_out,
                )
            )
        return reports
