"""Query-set generation (paper §7, "Query Graphs").

For each data graph the paper builds eight query sets ``Q_iS`` / ``Q_iN``:
100 connected subgraphs of ``i`` vertices each, extracted by random walk,
split into *sparse* (avg-deg <= 3) and *non-sparse* (avg-deg > 3).
:func:`generate_query_set` reproduces that recipe with a configurable
count; when the data graph simply has no region dense (or sparse) enough
for the requested class at the requested size, the closest-achievable
queries are returned and flagged, rather than looping forever — real
datasets always satisfied the paper's classes, synthetic ones almost
always do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.graph import Graph
from ..graph.properties import density_class
from ..graph.sampling import SamplingError, extract_query

SPARSE_THRESHOLD = 3.0


@dataclass
class QuerySet:
    """A generated query set with its provenance."""

    dataset: str
    size: int
    density: str  # "sparse" | "nonsparse"
    queries: list[Graph] = field(default_factory=list)
    #: Queries that missed the density band (kept, but counted here).
    off_class: int = 0

    @property
    def name(self) -> str:
        suffix = "S" if self.density == "sparse" else "N"
        return f"Q_{self.size}{suffix}"

    def __len__(self) -> int:
        return len(self.queries)


def _matches_density(query: Graph, density: str) -> bool:
    cls = density_class(query, SPARSE_THRESHOLD)
    return (cls == "sparse") == (density == "sparse")


def generate_query_set(
    data: Graph,
    size: int,
    density: str,
    count: int,
    rng: random.Random,
    dataset: str = "?",
    attempts_per_query: int = 60,
) -> QuerySet:
    """Generate ``count`` connected queries of ``size`` vertices in the
    requested density class, by random walk extraction (paper §7).

    Sparse queries are steered by thinning non-spanning-tree edges of the
    induced subgraph; non-sparse queries keep the full induced subgraph
    and retry walks until a dense-enough region is hit.
    """
    if density not in ("sparse", "nonsparse"):
        raise ValueError("density must be 'sparse' or 'nonsparse'")
    result = QuerySet(dataset=dataset, size=size, density=density)
    for _ in range(count):
        best: Graph | None = None
        best_gap = float("inf")
        hit = False
        for attempt in range(attempts_per_query):
            if density == "sparse":
                # Thin optional edges progressively harder.
                keep = max(0.0, 0.8 - 0.1 * (attempt % 8))
            else:
                keep = 1.0
            try:
                query, _ = extract_query(data, size, rng, keep_edge_probability=keep)
            except SamplingError:
                continue
            if _matches_density(query, density):
                result.queries.append(query)
                hit = True
                break
            target = SPARSE_THRESHOLD
            gap = abs(query.average_degree() - target)
            if gap < best_gap:
                best_gap = gap
                best = query
        if not hit:
            if best is None:
                raise SamplingError(
                    f"could not extract any {size}-vertex query from {dataset}"
                )
            result.queries.append(best)
            result.off_class += 1
    return result


#: The paper's query sizes per dataset family: large sizes for the small
#: protein graphs, small sizes for the rest (§7).
PAPER_QUERY_SIZES = {
    "yeast": (50, 100, 150, 200),
    "hprd": (50, 100, 150, 200),
    "human": (10, 20, 30, 40),
    "email": (10, 20, 30, 40),
    "dblp": (10, 20, 30, 40),
    "yago": (10, 20, 30, 40),
    "twitter": (10, 20, 30, 40),
}


def paper_query_sizes(dataset: str, scaled: bool = True) -> tuple[int, ...]:
    """Query sizes for ``dataset``.

    With ``scaled=True`` the sizes are divided by ~2.5 (minimum 5 — below
    that, queries are trivial and call counts measure noise) so the
    pure-Python harness finishes in CI-friendly time while preserving the
    small-to-large progression (DESIGN.md substitution 3).
    """
    sizes = PAPER_QUERY_SIZES.get(dataset, (10, 20, 30, 40))
    if not scaled:
        return sizes
    return tuple(max(5, round(s / 2.5)) for s in sizes)
