"""Workload generation: the paper's query sets and negative queries."""

from .negative import (
    NegativeBreakdown,
    add_random_edges,
    classify_queries,
    complete_query,
    perturb_labels,
)
from .query_sets import (
    PAPER_QUERY_SIZES,
    SPARSE_THRESHOLD,
    QuerySet,
    generate_query_set,
    paper_query_sizes,
)

__all__ = [
    "NegativeBreakdown",
    "PAPER_QUERY_SIZES",
    "QuerySet",
    "SPARSE_THRESHOLD",
    "add_random_edges",
    "classify_queries",
    "complete_query",
    "generate_query_set",
    "paper_query_sizes",
    "perturb_labels",
]
