"""Negative-query generation and classification (Appendix A.3).

The paper studies matcher behaviour on queries with no embeddings by
perturbing positive queries in two ways:

- :func:`perturb_labels` — replace the labels of ``k`` random query
  vertices with random labels from the data graph's alphabet;
- :func:`add_random_edges` — insert ``k`` random non-edges into the query
  (``k`` large enough turns the query into a complete graph, the "C"
  point of Fig. 14).

:func:`classify_queries` partitions a perturbed query set the way Fig. 14
reports it: positive / negative-with-empty-CS (preprocessing alone proves
negativity, zero search) / negative-searched / unsolved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.config import MatchConfig
from ..core.matcher import DAFMatcher
from ..graph.graph import Graph
from ..interfaces import MatchOptions, MatchRequest


def perturb_labels(query: Graph, k: int, alphabet: Sequence[object], rng: random.Random) -> Graph:
    """A copy of ``query`` with ``k`` random vertices relabeled randomly."""
    if k < 0:
        raise ValueError("k must be >= 0")
    k = min(k, query.num_vertices)
    victims = rng.sample(range(query.num_vertices), k)
    new_labels = {u: alphabet[rng.randrange(len(alphabet))] for u in victims}
    return query.relabeled(new_labels)


def add_random_edges(query: Graph, k: int, rng: random.Random) -> Graph:
    """A copy of ``query`` with up to ``k`` random non-edges added (fewer
    if the query saturates into a complete graph first)."""
    if k < 0:
        raise ValueError("k must be >= 0")
    n = query.num_vertices
    non_edges = [
        (u, v) for u in range(n) for v in range(u + 1, n) if not query.has_edge(u, v)
    ]
    rng.shuffle(non_edges)
    extended = query.copy()
    for u, v in non_edges[:k]:
        extended.add_edge(u, v)
    return extended.freeze()


def complete_query(query: Graph) -> Graph:
    """The complete graph over the query's labels (Fig. 14's "C" point)."""
    n = query.num_vertices
    return add_random_edges(query, n * (n - 1) // 2, random.Random(0))


@dataclass
class NegativeBreakdown:
    """Fig. 14-style classification of a query set."""

    positive: int = 0
    negative_empty_cs: int = 0
    negative_searched: int = 0
    unsolved: int = 0
    positive_elapsed: float = 0.0
    negative_elapsed: float = 0.0
    negative_searched_elapsed: float = 0.0
    cs_size_total: int = 0

    @property
    def total(self) -> int:
        return self.positive + self.negative_empty_cs + self.negative_searched + self.unsolved

    @property
    def negative(self) -> int:
        return self.negative_empty_cs + self.negative_searched


def classify_queries(
    queries: Sequence[Graph],
    data: Graph,
    limit: int = 1000,
    time_limit: Optional[float] = 5.0,
    config: Optional[MatchConfig] = None,
) -> NegativeBreakdown:
    """Run DAF on each query and classify the outcomes (Appendix A.3)."""
    matcher = DAFMatcher(config)
    breakdown = NegativeBreakdown()
    for query in queries:
        result = matcher.run_request(
            MatchRequest(query, data, options=MatchOptions(limit=limit, time_limit=time_limit))
        )
        breakdown.cs_size_total += result.stats.candidates_total
        if result.timed_out:
            breakdown.unsolved += 1
        elif result.count > 0:
            breakdown.positive += 1
            breakdown.positive_elapsed += result.stats.elapsed_seconds
        elif result.stats.candidates_total == 0 or result.stats.recursive_calls == 0:
            breakdown.negative_empty_cs += 1
            breakdown.negative_elapsed += result.stats.elapsed_seconds
        else:
            breakdown.negative_searched += 1
            breakdown.negative_elapsed += result.stats.elapsed_seconds
            breakdown.negative_searched_elapsed += result.stats.elapsed_seconds
    return breakdown
