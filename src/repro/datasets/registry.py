"""Synthetic stand-ins for the paper's evaluation datasets.

The paper's six real data graphs (Table 2) plus the Twitter graph of
Appendix A.1 are not redistributable/available offline, so each is
replaced by a *parametric synthetic graph* whose published statistics —
|V|, |E|, |Σ|, avg-deg, and label-distribution style — are matched at a
per-dataset scale factor chosen so pure-Python matching stays tractable
(DESIGN.md substitution 1 and 3).  Degree distributions are heavy-tailed
(power-law generator), which is the property of the real graphs that
drives candidate-set skew and search-tree blowup.

Graphs are deterministic per spec (fixed seed) and cached on disk under
``.dataset_cache/`` next to this package's repository root, so every
test/bench process pays generation once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..graph.generators import (
    ensure_connected,
    power_law_graph,
    power_law_labels,
    random_labels,
)
from ..graph.graph import Graph
from ..graph.io import read_cfl, write_cfl


@dataclass(frozen=True)
class DatasetSpec:
    """One synthetic dataset: target statistics + provenance."""

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int
    label_distribution: str  # "uniform" | "power"
    seed: int
    #: The real dataset's published statistics (|V|, |E|, |Sigma|, avg-deg)
    #: for the Table 2 comparison.
    paper_vertices: int
    paper_edges: int
    paper_labels: int
    paper_avg_degree: float
    #: Linear downscale factor applied to the paper's graph.
    scale_divisor: float = 1.0
    #: Fraction of vertices created by *node duplication* (same label,
    #: identical neighborhood).  Real networks grow this way — gene
    #: duplication in PPI graphs, mirrored accounts in social graphs —
    #: and it is exactly what BoostIso's SE compression exploits; the
    #: paper reports compression ratios from 53.1% (Human) down to 1.4%
    #: (HPRD), which these fractions are calibrated to.
    se_duplicate_fraction: float = 0.0

    @property
    def average_degree(self) -> float:
        return 2.0 * self.num_edges / self.num_vertices


#: The six Table 2 datasets plus the Appendix A.1 Twitter graph.
#: Yeast / Human / HPRD are generated at full published size (they are
#: small); Email, DBLP, YAGO and Twitter are scaled down, keeping avg-deg
#: and the |Sigma|-to-|V| flavour of the original.
SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="yeast",
            num_vertices=3112,
            num_edges=12519,
            num_labels=71,
            label_distribution="power",
            seed=101,
            paper_vertices=3112,
            paper_edges=12519,
            paper_labels=71,
            paper_avg_degree=8.04,
            se_duplicate_fraction=0.051,
        ),
        DatasetSpec(
            name="human",
            num_vertices=4674,
            num_edges=86282,
            num_labels=44,
            label_distribution="power",
            seed=102,
            paper_vertices=4674,
            paper_edges=86282,
            paper_labels=44,
            paper_avg_degree=36.91,
            se_duplicate_fraction=0.531,
        ),
        DatasetSpec(
            name="hprd",
            num_vertices=9460,
            num_edges=37081,
            num_labels=307,
            label_distribution="power",
            seed=103,
            paper_vertices=9460,
            paper_edges=37081,
            paper_labels=307,
            paper_avg_degree=7.83,
            se_duplicate_fraction=0.014,
        ),
        DatasetSpec(
            name="email",
            num_vertices=9173,
            num_edges=45958,
            num_labels=20,
            label_distribution="uniform",  # paper randomly assigned 20 labels
            seed=104,
            paper_vertices=36692,
            paper_edges=183831,
            paper_labels=20,
            paper_avg_degree=10.02,
            scale_divisor=4.0,
            se_duplicate_fraction=0.164,
        ),
        DatasetSpec(
            name="dblp",
            num_vertices=19818,
            num_edges=65617,
            num_labels=20,
            label_distribution="uniform",  # paper randomly assigned 20 labels
            seed=105,
            paper_vertices=317080,
            paper_edges=1049866,
            paper_labels=20,
            paper_avg_degree=6.62,
            scale_divisor=16.0,
            se_duplicate_fraction=0.021,
        ),
        DatasetSpec(
            name="yago",
            num_vertices=67122,
            num_edges=178335,
            num_labels=776,
            label_distribution="power",
            seed=106,
            paper_vertices=4_295_825,
            paper_edges=11_413_472,
            paper_labels=49_676,
            paper_avg_degree=5.31,
            scale_divisor=64.0,
            se_duplicate_fraction=0.414,
        ),
        DatasetSpec(
            name="twitter",
            num_vertices=20_000,
            num_edges=400_000,
            num_labels=1000,
            label_distribution="uniform",  # paper randomly assigned 1000 labels
            seed=107,
            paper_vertices=41_700_000,
            paper_edges=1_470_000_000,
            paper_labels=1000,
            paper_avg_degree=70.5,
            scale_divisor=2085.0,
            se_duplicate_fraction=0.1,
        ),
    ]
}

_memory_cache: dict[str, Graph] = {}

#: Bumped whenever the generation algorithm changes, so stale disk caches
#: are never read back.
GENERATOR_VERSION = 3


def cache_directory() -> Path:
    """Disk cache location (repo-local so results travel with the tree)."""
    return Path(__file__).resolve().parents[3] / ".dataset_cache"


def _make_labels(spec: DatasetSpec, count: int, rng: random.Random) -> list[int]:
    if spec.label_distribution == "power":
        return power_law_labels(count, spec.num_labels, rng)
    if spec.label_distribution == "uniform":
        return random_labels(count, spec.num_labels, rng)
    raise ValueError(f"unknown label distribution {spec.label_distribution!r}")


def generate(spec: DatasetSpec) -> Graph:
    """Generate the synthetic graph for ``spec`` (deterministic).

    Two phases: a power-law *base* graph, then *node duplication* — new
    vertices copying an existing vertex's label and exact neighborhood —
    until ``se_duplicate_fraction`` of the final graph consists of
    duplicates.  Duplication models how real networks grow (gene
    duplication, mirrored accounts) and gives the stand-ins the SE
    redundancy that BoostIso exploits (Fig. 17); with fraction 0 this
    reduces to the plain power-law generator.
    """
    rng = random.Random(spec.seed)
    num_duplicates = round(spec.se_duplicate_fraction * spec.num_vertices)
    num_base = spec.num_vertices - num_duplicates
    if num_duplicates == 0:
        labels = _make_labels(spec, num_base, rng)
        graph = power_law_graph(num_base, spec.num_edges, labels, rng)
        return ensure_connected(graph, rng)

    # Duplicates copy low-degree vertices (pendant proteins, satellite
    # accounts), so reserve roughly their edge cost from the base budget;
    # the shortfall is topped up exactly afterwards.
    target_avg_degree = 2 * spec.num_edges / spec.num_vertices
    duplicate_degree_estimate = max(1, round(target_avg_degree / 2))
    base_edges = max(num_base, spec.num_edges - num_duplicates * duplicate_degree_estimate)
    labels = _make_labels(spec, num_base, rng)
    base = power_law_graph(num_base, base_edges, labels, rng)
    base = ensure_connected(base, rng)

    graph = base.copy()
    # Few distinct sources duplicated repeatedly -> large SE classes, as
    # observed in real graphs.  Sources are the cheapest *independent*
    # vertices: a source adjacent to another source would gain that
    # source's clones as new neighbors, silently breaking its own class.
    num_sources = max(1, min(num_base // 8, num_duplicates))
    chosen: list[int] = []
    chosen_set: set[int] = set()
    for v in sorted(base.vertices(), key=base.degree):
        if base.neighbor_set(v).isdisjoint(chosen_set):
            chosen.append(v)
            chosen_set.add(v)
            if len(chosen) == num_sources:
                break
    sources = chosen
    edges_added = 0
    for i in range(num_duplicates):
        source = sources[i % len(sources)]
        clone = graph.add_vertex(base.label(source))
        for neighbor in base.neighbors(source):
            graph.add_edge(clone, neighbor)
            edges_added += 1

    # Top up missing edges among non-duplicated, non-source vertices so
    # the SE classes stay intact; drawing endpoints from a repeated pool
    # keeps the heavy tail.
    protected = set(sources)
    eligible = [v for v in base.vertices() if v not in protected]
    shortfall = spec.num_edges - base_edges - edges_added
    attempts = 0
    while shortfall > 0 and attempts < 50 * shortfall + 1000 and len(eligible) > 1:
        attempts += 1
        u = eligible[rng.randrange(len(eligible))]
        v = eligible[rng.randrange(len(eligible))]
        if u == v or v in graph._adj_sets[u]:
            continue
        graph.add_edge(u, v)
        shortfall -= 1
    graph.freeze()
    return ensure_connected(graph, rng)


def load(name: str, use_disk_cache: bool = True) -> Graph:
    """Load a registry dataset by name, generating and caching on demand."""
    if name not in SPECS:
        raise KeyError(f"unknown dataset {name!r}; choices: {sorted(SPECS)}")
    if name in _memory_cache:
        return _memory_cache[name]
    spec = SPECS[name]
    path: Optional[Path] = None
    if use_disk_cache:
        directory = cache_directory()
        directory.mkdir(exist_ok=True)
        path = directory / f"{name}-g{GENERATOR_VERSION}-s{spec.seed}.graph"
        if path.exists():
            graph = read_cfl(path)
            _memory_cache[name] = graph
            return graph
    graph = generate(spec)
    if path is not None:
        write_cfl(graph, path)
    _memory_cache[name] = graph
    return graph


def dataset_names(include_twitter: bool = False) -> list[str]:
    """Table 2 dataset names, optionally including the A.1 Twitter graph."""
    names = ["yeast", "human", "hprd", "email", "dblp", "yago"]
    if include_twitter:
        names.append("twitter")
    return names


def table2_rows() -> list[dict[str, object]]:
    """Rows reproducing Table 2 for the synthetic stand-ins, with the
    paper's originals alongside."""
    rows = []
    for name in dataset_names(include_twitter=True):
        spec = SPECS[name]
        graph = load(name)
        rows.append(
            {
                "dataset": name,
                "V": graph.num_vertices,
                "E": graph.num_edges,
                "labels": graph.num_labels,
                "avg_deg": round(graph.average_degree(), 2),
                "paper_V": spec.paper_vertices,
                "paper_E": spec.paper_edges,
                "paper_labels": spec.paper_labels,
                "paper_avg_deg": spec.paper_avg_degree,
                "scale_divisor": spec.scale_divisor,
            }
        )
    return rows
