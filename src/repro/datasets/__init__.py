"""Synthetic evaluation datasets and the EvoGraph-style upscaler."""

from .evograph import upscale
from .registry import (
    SPECS,
    DatasetSpec,
    cache_directory,
    dataset_names,
    generate,
    load,
    table2_rows,
)

__all__ = [
    "DatasetSpec",
    "SPECS",
    "cache_directory",
    "dataset_names",
    "generate",
    "load",
    "table2_rows",
    "upscale",
]
