"""Degree-preserving graph upscaling (EvoGraph substitute, Fig. 11).

The paper's sensitivity analysis upscales Yeast with EvoGraph (Park & Kim,
KDD 2018), which preserves statistical properties while multiplying the
edge count.  EvoGraph is closed-source, so :func:`upscale` provides the
closest open equivalent (DESIGN.md substitution 5):

1. replicate the graph ``factor`` times (disjoint copies keep the exact
   degree and label distributions);
2. rewire a fraction of edge *pairs across copies* with degree-preserving
   double-edge swaps — ``(u1, v1), (u2, v2)`` becomes
   ``(u1, v2), (u2, v1)`` — so the result is one connected organism rather
   than ``factor`` islands, still with the original degree sequence;
3. patch any residual disconnection with single linking edges.

``scale(G) = x`` in the paper means x times the edges with vertices
growing proportionally, which is exactly what copies + swaps give.
"""

from __future__ import annotations

import random

from ..graph.generators import ensure_connected
from ..graph.graph import Graph


def upscale(graph: Graph, factor: int, rng: random.Random, rewire_fraction: float = 0.15) -> Graph:
    """Upscale ``graph`` to ``factor`` times its vertices and edges.

    ``rewire_fraction`` of the edges participate in cross-copy swaps;
    degree sequence and label multiset are preserved exactly (up to the
    <= factor-1 connectivity patch edges added at the end).
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if not 0.0 <= rewire_fraction <= 1.0:
        raise ValueError("rewire_fraction must be in [0, 1]")
    if factor == 1:
        return graph
    n = graph.num_vertices
    big = Graph()
    for copy in range(factor):
        for v in graph.vertices():
            big.add_vertex(graph.label(v))
    edges: list[tuple[int, int]] = []
    for copy in range(factor):
        offset = copy * n
        for u, v in graph.edges():
            edges.append((u + offset, v + offset))

    edge_set = {tuple(sorted(e)) for e in edges}
    num_swaps = int(len(edges) * rewire_fraction / 2)
    attempts = 0
    swaps_done = 0
    while swaps_done < num_swaps and attempts < num_swaps * 20:
        attempts += 1
        i = rng.randrange(len(edges))
        j = rng.randrange(len(edges))
        if i == j:
            continue
        u1, v1 = edges[i]
        u2, v2 = edges[j]
        # Swap only across different copies, so the copies actually merge.
        if u1 // n == u2 // n:
            continue
        a, b = (u1, v2), (u2, v1)
        if a[0] == a[1] or b[0] == b[1]:
            continue
        ka, kb = tuple(sorted(a)), tuple(sorted(b))
        if ka in edge_set or kb in edge_set or ka == kb:
            continue
        edge_set.discard(tuple(sorted(edges[i])))
        edge_set.discard(tuple(sorted(edges[j])))
        edge_set.add(ka)
        edge_set.add(kb)
        edges[i] = a
        edges[j] = b
        swaps_done += 1

    for u, v in edges:
        big.add_edge(min(u, v), max(u, v))
    big.freeze()
    return ensure_connected(big, rng)
