"""Brute-force reference matcher.

Enumerates injective label-preserving assignments directly over the data
graph with only label/degree candidate filtering and static query order —
no auxiliary structure, no adaptive order, no pruning beyond edge checks.
It is the correctness oracle every other matcher is tested against, and
the zero-sophistication lower bound in ablation discussions.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    Matcher,
    MatchResult,
    SearchStats,
    TimeoutSignal,
    validate_inputs,
)


class _LimitReached(Exception):
    pass


class BruteForceMatcher(Matcher):
    """Reference backtracking with static order and no filtering index."""

    name = "brute-force"

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        validate_inputs(query, data)
        stats = SearchStats()
        result = MatchResult(stats=stats)
        deadline = Deadline(time_limit)
        n = query.num_vertices
        # Static connectivity-aware order: each vertex after the first has
        # a neighbor earlier in the order (so edges can be checked early);
        # ties favour high degree.
        order = _connectivity_order(query)
        back_neighbors = [
            tuple(w for w in query.neighbors(u) if w in set(order[:i]))
            for i, u in enumerate(order)
        ]
        mapping = [-1] * n
        used: set[int] = set()

        def extend(position: int) -> None:
            stats.recursive_calls += 1
            deadline.tick()
            if position == n:
                stats.embeddings_found += 1
                embedding = tuple(mapping)
                result.embeddings.append(embedding)
                if on_embedding is not None:
                    on_embedding(embedding)
                if stats.embeddings_found >= limit:
                    raise _LimitReached
                return
            u = order[position]
            anchors = back_neighbors[position]
            if anchors:
                candidates = data.neighbors(mapping[anchors[0]])
            else:
                candidates = data.vertices_with_label(query.label(u))
            label_u = query.label(u)
            degree_u = query.degree(u)
            for v in candidates:
                if v in used:
                    continue
                if data.label(v) != label_u or data.degree(v) < degree_u:
                    continue
                if any(not data.has_edge(v, mapping[w]) for w in anchors):
                    continue
                mapping[u] = v
                used.add(v)
                extend(position + 1)
                used.discard(v)
                mapping[u] = -1

        import time

        start = time.perf_counter()
        try:
            extend(0)
        except _LimitReached:
            result.limit_reached = True
        except TimeoutSignal:
            result.timed_out = True
        stats.search_seconds = time.perf_counter() - start
        return result


def _connectivity_order(query: Graph) -> list[int]:
    """A static order where every non-first vertex touches an earlier one
    (when the query is connected); degree-descending among eligible."""
    n = query.num_vertices
    if n == 0:
        return []
    start = max(query.vertices(), key=lambda u: (query.degree(u), -u))
    order = [start]
    chosen = {start}
    while len(order) < n:
        frontier = [
            u for u in query.vertices() if u not in chosen and any(w in chosen for w in query.neighbors(u))
        ]
        if not frontier:  # disconnected query: start a new component
            frontier = [u for u in query.vertices() if u not in chosen]
        nxt = max(frontier, key=lambda u: (query.degree(u), -u))
        order.append(nxt)
        chosen.add(nxt)
    return order
