"""GraphQL (He & Singh, SIGMOD 2008).

GraphQL filters candidates in two escalating stages before searching:

1. **Neighborhood profile**: the sorted multiset of labels in a vertex's
   1-hop neighborhood; ``v`` can host ``u`` only if u's profile is a
   sub-multiset of v's.
2. **Pseudo-isomorphism refinement**: iteratively require a *semi-perfect
   bipartite matching* between u's neighbors and v's neighbors where
   neighbor ``u'`` may pair with neighbor ``v'`` only if ``v'`` is still a
   candidate of ``u'``.  A vertex failing the matching is dropped; the
   process repeats for a fixed number of rounds (the paper's default 2)
   or until a fixpoint.

The matching order is GraphQL's left-deep join order (greedy smallest
candidate set, connectivity-first) and the search is standard ordered
backtracking probing the data graph.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from ..core.filters import initial_candidates
from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    Matcher,
    MatchResult,
    validate_inputs,
)
from .generic import greedy_candidate_order, observe_baseline_run, ordered_backtrack


def profile_dominates(query: Graph, data: Graph, u: int, v: int) -> bool:
    """Is u's neighbor-label multiset contained in v's?"""
    v_counts = data.neighbor_label_counts(v)
    for label, needed in query.neighbor_label_counts(u).items():
        if v_counts.get(label, 0) < needed:
            return False
    return True


def _has_semi_perfect_matching(
    left: Sequence[int], right_options: dict[int, list[int]]
) -> bool:
    """Can every left vertex be matched to a distinct right vertex?

    Hungarian-style augmenting paths; sizes here are vertex degrees, so
    the simple O(L * E) routine is plenty.
    """
    match_of_right: dict[int, int] = {}

    def augment(u: int, banned: set[int]) -> bool:
        for v in right_options[u]:
            if v in banned:
                continue
            banned.add(v)
            holder = match_of_right.get(v)
            if holder is None or augment(holder, banned):
                match_of_right[v] = u
                return True
        return False

    for u in left:
        if not augment(u, set()):
            return False
    return True


def pseudo_iso_refine(
    query: Graph,
    data: Graph,
    candidate_sets: list[set[int]],
    rounds: int = 2,
) -> None:
    """GraphQL's iterative pseudo-isomorphism refinement, in place."""
    for _ in range(rounds):
        changed = False
        for u in query.vertices():
            u_neighbors = query.neighbors(u)
            if not u_neighbors:
                continue
            doomed = []
            for v in candidate_sets[u]:
                v_neighbors = data.neighbors(v)
                options = {
                    u_n: [v_n for v_n in v_neighbors if v_n in candidate_sets[u_n]]
                    for u_n in u_neighbors
                }
                if any(not opts for opts in options.values()) or not _has_semi_perfect_matching(
                    u_neighbors, options
                ):
                    doomed.append(v)
            if doomed:
                changed = True
                candidate_sets[u].difference_update(doomed)
        if not changed:
            break


class GraphQLMatcher(Matcher):
    """GraphQL: profile filter + pseudo-iso refinement + left-deep order."""

    name = "GraphQL"

    def __init__(self, refinement_rounds: int = 2) -> None:
        self.refinement_rounds = refinement_rounds

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        validate_inputs(query, data)
        start = time.perf_counter()
        candidate_sets = [
            {v for v in initial_candidates(query, data, u) if profile_dominates(query, data, u, v)}
            for u in query.vertices()
        ]
        pseudo_iso_refine(query, data, candidate_sets, rounds=self.refinement_rounds)
        order = greedy_candidate_order(query, candidate_sets)
        preprocess = time.perf_counter() - start
        deadline = Deadline(time_limit)
        result = ordered_backtrack(
            query, data, order, candidate_sets, limit, deadline, on_embedding,
            observer=self.observer,
        )
        result.stats.preprocess_seconds = preprocess
        result.stats.candidates_total = sum(len(c) for c in candidate_sets)
        observe_baseline_run(self.observer, result.stats, candidate_sets)
        return result
