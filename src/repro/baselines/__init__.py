"""Baseline subgraph-matching algorithms the paper compares against.

Every matcher implements :class:`repro.interfaces.Matcher`; see
DESIGN.md substitution 2 for which baselines are "-lite" simplifications.
"""

from .bruteforce import BruteForceMatcher
from .cfl import CFLMatcher, build_cpi
from .gaddi import GADDIMatcher
from .generic import greedy_candidate_order, ordered_backtrack
from .graphql import GraphQLMatcher
from .quicksi import QuickSIMatcher, qi_sequence
from .spath import SPathMatcher
from .turboiso import TurboIsoMatcher
from .ullmann import UllmannMatcher
from .vf2 import VF2Matcher

#: All comparison algorithms keyed by the names used in the paper's plots.
ALL_BASELINES = {
    "VF2": VF2Matcher,
    "QuickSI": QuickSIMatcher,
    "GraphQL": GraphQLMatcher,
    "GADDI": GADDIMatcher,
    "SPath": SPathMatcher,
    "TurboISO": TurboIsoMatcher,
    "CFL-Match": CFLMatcher,
    "Ullmann": UllmannMatcher,
}

__all__ = [
    "ALL_BASELINES",
    "BruteForceMatcher",
    "CFLMatcher",
    "GADDIMatcher",
    "GraphQLMatcher",
    "QuickSIMatcher",
    "SPathMatcher",
    "TurboIsoMatcher",
    "UllmannMatcher",
    "VF2Matcher",
    "build_cpi",
    "greedy_candidate_order",
    "ordered_backtrack",
    "qi_sequence",
]
