"""Ullmann's algorithm (JACM 1976) — the original practical matcher.

Candidates start from label + degree; the classic *refinement procedure*
is run to a fixpoint before search: ``v`` stays a candidate of ``u`` only
if every neighbor of ``u`` has at least one candidate adjacent to ``v``.
(Ullmann re-refines inside every search node; like most modern
re-implementations we refine once up front — the per-node refinement only
changes constants at these scales and is noted in DESIGN.md.)  Search
then proceeds in plain vertex-id order, the paper's-era "no ordering
heuristic" behaviour that makes Ullmann the slowest baseline.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..core.filters import initial_candidates
from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    Matcher,
    MatchResult,
    validate_inputs,
)
from .generic import connectivity_refine_order, observe_baseline_run, ordered_backtrack


def ullmann_refine(query: Graph, data: Graph, candidate_sets: list[set[int]]) -> None:
    """Ullmann's arc-consistency refinement, in place, to a fixpoint."""
    changed = True
    while changed:
        changed = False
        for u in query.vertices():
            doomed = []
            for v in candidate_sets[u]:
                v_neighbors = data.neighbor_set(v)
                for u_n in query.neighbors(u):
                    if candidate_sets[u_n].isdisjoint(v_neighbors):
                        doomed.append(v)
                        break
            if doomed:
                changed = True
                candidate_sets[u].difference_update(doomed)


class UllmannMatcher(Matcher):
    """Ullmann (1976) with one up-front refinement fixpoint."""

    name = "Ullmann"

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        validate_inputs(query, data)
        start = time.perf_counter()
        candidate_sets = [set(initial_candidates(query, data, u)) for u in query.vertices()]
        ullmann_refine(query, data, candidate_sets)
        order = connectivity_refine_order(query, list(query.vertices()))
        preprocess = time.perf_counter() - start
        deadline = Deadline(time_limit)
        result = ordered_backtrack(
            query, data, order, candidate_sets, limit, deadline, on_embedding,
            observer=self.observer,
        )
        result.stats.preprocess_seconds = preprocess
        result.stats.candidates_total = sum(len(c) for c in candidate_sets)
        observe_baseline_run(self.observer, result.stats, candidate_sets)
        return result
