"""SPath-lite (Zhao & Han, VLDB 2010 — simplified).

SPath indexes *neighborhood signatures*: for every data vertex, the label
distribution of vertices within distance ``d`` (the paper's NS(v) with
radius up to k0).  A data vertex can host a query vertex only if, at every
distance level, its signature dominates the query vertex's.

Simplification (documented in DESIGN.md): the original SPath builds a
disk-resident path index and matches *paths at a time*; here we keep the
distance-wise signature pruning — the part that shrinks the search tree —
and use vertex-at-a-time ordered backtracking, which the survey by Lee et
al. (VLDB 2012) found to behave comparably after normalizing the index
engineering.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Optional

from ..core.filters import initial_candidates
from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    Matcher,
    MatchResult,
    validate_inputs,
)
from .generic import greedy_candidate_order, observe_baseline_run, ordered_backtrack

Signature = tuple[dict[object, int], ...]


def distance_label_signature(graph: Graph, v: int, radius: int) -> Signature:
    """Per-distance label counts around ``v``: element ``d-1`` counts the
    labels of vertices at distance exactly ``d`` (1 <= d <= radius)."""
    counts: list[dict[object, int]] = [dict() for _ in range(radius)]
    dist = {v: 0}
    queue = deque([v])
    while queue:
        w = queue.popleft()
        d = dist[w]
        if d == radius:
            continue
        for x in graph.neighbors(w):
            if x not in dist:
                dist[x] = d + 1
                level = counts[d]
                label = graph.label(x)
                level[label] = level.get(label, 0) + 1
                queue.append(x)
    return tuple(counts)


def signature_dominates(data_sig: Signature, query_sig: Signature) -> bool:
    """Does the data signature cover the query signature level-by-level?

    Vertices at query distance d sit at data distance <= d (shortcuts may
    exist), so each query level must be covered by the data counts
    accumulated up to that level.
    """
    data_cumulative: dict[object, int] = {}
    query_cumulative: dict[object, int] = {}
    for level in range(len(query_sig)):
        for label, count in data_sig[level].items():
            data_cumulative[label] = data_cumulative.get(label, 0) + count
        for label, count in query_sig[level].items():
            query_cumulative[label] = query_cumulative.get(label, 0) + count
        for label, needed in query_cumulative.items():
            if data_cumulative.get(label, 0) < needed:
                return False
    return True


class SPathMatcher(Matcher):
    """SPath-lite: distance-signature pruning + ordered backtracking."""

    name = "SPath"

    def __init__(self, radius: int = 2) -> None:
        if radius < 1:
            raise ValueError("signature radius must be >= 1")
        self.radius = radius

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        validate_inputs(query, data)
        start = time.perf_counter()
        query_sigs = {u: distance_label_signature(query, u, self.radius) for u in query.vertices()}
        candidate_sets: list[set[int]] = []
        signature_cache: dict[int, Signature] = {}
        for u in query.vertices():
            survivors = set()
            for v in initial_candidates(query, data, u):
                if v not in signature_cache:
                    signature_cache[v] = distance_label_signature(data, v, self.radius)
                if signature_dominates(signature_cache[v], query_sigs[u]):
                    survivors.add(v)
            candidate_sets.append(survivors)
        order = greedy_candidate_order(query, candidate_sets)
        preprocess = time.perf_counter() - start
        deadline = Deadline(time_limit)
        result = ordered_backtrack(
            query, data, order, candidate_sets, limit, deadline, on_embedding,
            observer=self.observer,
        )
        result.stats.preprocess_seconds = preprocess
        result.stats.candidates_total = sum(len(c) for c in candidate_sets)
        observe_baseline_run(self.observer, result.stats, candidate_sets)
        return result
