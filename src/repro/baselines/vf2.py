"""VF2 (Cordella et al., TPAMI 2004).

A faithful implementation of the VF2 state machine specialized to
subgraph isomorphism on undirected labeled graphs:

- the next query vertex is the smallest-id vertex in the query frontier
  T1 (the unmapped query vertices adjacent to the mapped core), falling
  back to the smallest unmapped vertex when the frontier is empty;
- candidate data vertices come from the data frontier T2 when the chosen
  query vertex is in T1, otherwise from all unmapped data vertices;
- feasibility combines the syntactic rule (edges between the candidate
  pair and the mapped cores must correspond exactly in the subgraph
  sense) with VF2's one-step lookahead: the candidate's frontier degree
  and "new" degree must dominate the query vertex's.

VF2 carries no candidate precomputation at all, which is why the paper's
Fig. 13 shows it trailing the filtering-based algorithms.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    Matcher,
    MatchResult,
    SearchStats,
    TimeoutSignal,
    validate_inputs,
)
from .generic import observe_baseline_run


class _LimitReached(Exception):
    pass


class VF2Matcher(Matcher):
    """VF2 for subgraph isomorphism (query into data)."""

    name = "VF2"

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        validate_inputs(query, data)
        stats = SearchStats()
        result = MatchResult(stats=stats)
        deadline = Deadline(time_limit)
        n_query = query.num_vertices
        obs = self.observer
        progress = obs.progress if obs is not None else None
        if obs is not None:
            obs.ensure_vertices(n_query)

        core_q: dict[int, int] = {}  # query vertex -> data vertex
        core_d: dict[int, int] = {}  # data vertex -> query vertex
        # Frontier membership counters: how many mapped neighbors a vertex
        # has.  > 0 means "in T".
        depth_q = [0] * n_query
        depth_d = [0] * data.num_vertices

        def next_query_vertex() -> int:
            frontier = [u for u in query.vertices() if u not in core_q and depth_q[u] > 0]
            if frontier:
                return min(frontier)
            return min(u for u in query.vertices() if u not in core_q)

        def candidates_for(u: int):
            if depth_q[u] > 0:
                return [v for v in data.vertices() if v not in core_d and depth_d[v] > 0]
            return [v for v in data.vertices() if v not in core_d]

        def feasible(u: int, v: int) -> bool:
            if query.label(u) != data.label(v):
                return False
            if query.degree(u) > data.degree(v):
                return False
            # Syntactic rule: every mapped neighbor of u must map to a
            # neighbor of v (subgraph isomorphism needs only this
            # direction, unlike full isomorphism).
            v_neighbors = data.neighbor_set(v)
            term_q = 0
            new_q = 0
            for w in query.neighbors(u):
                mapped = core_q.get(w)
                if mapped is not None:
                    if mapped not in v_neighbors:
                        return False
                elif depth_q[w] > 0:
                    term_q += 1
                else:
                    new_q += 1
            term_d = 0
            new_d = 0
            for w in v_neighbors:
                if w in core_d:
                    continue
                if depth_d[w] > 0:
                    term_d += 1
                else:
                    new_d += 1
            # Lookahead: the data side must offer at least as many frontier
            # and fresh neighbors as the query side requires.  (For
            # subgraph isomorphism "new" query neighbors may also land on
            # data frontier vertices, hence the combined bound.)
            return term_d >= term_q and term_d + new_d >= term_q + new_q

        def add_pair(u: int, v: int) -> None:
            core_q[u] = v
            core_d[v] = u
            for w in query.neighbors(u):
                depth_q[w] += 1
            for w in data.neighbors(v):
                depth_d[w] += 1

        def remove_pair(u: int, v: int) -> None:
            del core_q[u]
            del core_d[v]
            for w in query.neighbors(u):
                depth_q[w] -= 1
            for w in data.neighbors(v):
                depth_d[w] -= 1

        def extend() -> None:
            stats.recursive_calls += 1
            deadline.tick()
            if progress is not None:
                progress.tick(stats.recursive_calls, len(core_q))
            if len(core_q) == n_query:
                stats.embeddings_found += 1
                embedding = tuple(core_q[u] for u in range(n_query))
                result.embeddings.append(embedding)
                if on_embedding is not None:
                    on_embedding(embedding)
                if stats.embeddings_found >= limit:
                    raise _LimitReached
                return
            u = next_query_vertex()
            if obs is not None:
                entered_before = obs.children_entered
            for v in candidates_for(u):
                if feasible(u, v):
                    if obs is not None:
                        obs.candidates_examined += 1
                        obs.children_entered += 1
                        obs.vertex_entered[u] += 1
                    add_pair(u, v)
                    try:
                        extend()
                    finally:
                        remove_pair(u, v)
                elif obs is not None:
                    # VF2 has no candidate precomputation, so prune reasons
                    # are re-derived from the failed pair: label/degree
                    # mismatches map to the filter counter, everything else
                    # (syntactic rule + lookahead) to the edge counter.
                    obs.candidates_examined += 1
                    if query.label(u) != data.label(v) or query.degree(u) > data.degree(v):
                        obs.prune_label_degree += 1
                    else:
                        obs.prune_cs_edge += 1
            if obs is not None and obs.children_entered == entered_before:
                obs.prune_empty += 1
                obs.vertex_empty[u] += 1

        start = time.perf_counter()
        try:
            extend()
        except _LimitReached:
            result.limit_reached = True
        except TimeoutSignal:
            result.timed_out = True
        stats.search_seconds = time.perf_counter() - start
        observe_baseline_run(obs, stats)
        return result
