"""GADDI-lite (Zhang, Li & Yang, EDBT 2009 — simplified).

GADDI prunes with *neighboring discriminating substructures* (NDS): counts
of small structures inside the induced neighborhood of a vertex.  A data
vertex can host a query vertex only if its neighborhood contains at least
as many of each discriminating substructure as the query vertex's does.

Here the discriminating substructures are labeled *wedges and triangles*
anchored at the vertex:

- for each label pair ``(a, b)``, the number of length-2 paths
  ``v - x(a) - y(b)`` starting at ``v`` (wedge counts), and
- for each label pair, the number of triangles through ``v`` whose other
  two vertices carry those labels.

This keeps GADDI's defining idea — structure-count domination inside a
local neighborhood — while dropping the distance-matrix index that only
changes constants (see DESIGN.md substitution 2).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..core.filters import initial_candidates
from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    Matcher,
    MatchResult,
    validate_inputs,
)
from .generic import greedy_candidate_order, observe_baseline_run, ordered_backtrack


def _pair_key(a: object, b: object) -> tuple[object, object]:
    return (a, b) if repr(a) <= repr(b) else (b, a)


def wedge_counts(graph: Graph, v: int) -> dict[tuple[object, object], int]:
    """Counts of labeled wedges v - x - y (y != v), keyed by
    (label(x), label(y)) with x the middle vertex (ordered key: middle
    label first)."""
    counts: dict[tuple[object, object], int] = {}
    for x in graph.neighbors(v):
        label_x = graph.label(x)
        for y in graph.neighbors(x):
            if y == v:
                continue
            key = (label_x, graph.label(y))
            counts[key] = counts.get(key, 0) + 1
    return counts


def triangle_counts(graph: Graph, v: int) -> dict[tuple[object, object], int]:
    """Counts of triangles v-x-y, keyed by the unordered label pair of
    (x, y); each triangle counted once."""
    counts: dict[tuple[object, object], int] = {}
    neighbors = graph.neighbors(v)
    for i, x in enumerate(neighbors):
        x_adjacent = graph.neighbor_set(x)
        for y in neighbors[i + 1 :]:
            if y in x_adjacent:
                key = _pair_key(graph.label(x), graph.label(y))
                counts[key] = counts.get(key, 0) + 1
    return counts


def _dominates(data_counts: dict, query_counts: dict) -> bool:
    for key, needed in query_counts.items():
        if data_counts.get(key, 0) < needed:
            return False
    return True


class GADDIMatcher(Matcher):
    """GADDI-lite: wedge/triangle substructure-count pruning."""

    name = "GADDI"

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        validate_inputs(query, data)
        start = time.perf_counter()
        candidate_sets: list[set[int]] = []
        wedge_cache: dict[int, dict] = {}
        triangle_cache: dict[int, dict] = {}
        for u in query.vertices():
            query_wedges = wedge_counts(query, u)
            query_triangles = triangle_counts(query, u)
            survivors = set()
            for v in initial_candidates(query, data, u):
                if v not in wedge_cache:
                    wedge_cache[v] = wedge_counts(data, v)
                if not _dominates(wedge_cache[v], query_wedges):
                    continue
                if query_triangles:
                    if v not in triangle_cache:
                        triangle_cache[v] = triangle_counts(data, v)
                    if not _dominates(triangle_cache[v], query_triangles):
                        continue
                survivors.add(v)
            candidate_sets.append(survivors)
        order = greedy_candidate_order(query, candidate_sets)
        preprocess = time.perf_counter() - start
        deadline = Deadline(time_limit)
        result = ordered_backtrack(
            query, data, order, candidate_sets, limit, deadline, on_embedding,
            observer=self.observer,
        )
        result.stats.preprocess_seconds = preprocess
        result.stats.candidates_total = sum(len(c) for c in candidate_sets)
        observe_baseline_run(self.observer, result.stats, candidate_sets)
        return result
