"""CFL-Match (Bi et al., SIGMOD 2016) — the paper's primary competitor.

The three ingredients reproduced here:

**CPI structure.**  A BFS spanning tree of the query is rooted at the core
vertex minimizing ``|C_ini(u)| / deg(u)``.  Candidates are generated
top-down level by level — a candidate must be adjacent to a candidate of
its *tree parent*, pass NLF, and have at least one adjacent candidate for
every already-processed neighbor (tree or non-tree, the "forward"
non-tree check) — then refined bottom-up along tree edges.  Only *tree*
edges are materialized into adjacency lists: this is precisely the
structural difference from DAF's CS that Fig. 9 measures (CPI admits more
false-positive candidates, and non-tree edges must be verified against
the data graph during search).

**Core-forest-leaf decomposition.**  The query splits into its 2-core
(which contains all non-tree edges), the forest hanging off the core, and
the degree-one leaves.  The static matching order visits core first, then
forest, then leaves — postponing the Cartesian products that pure path
ordering suffers.  Within core and forest, root-to-leaf tree paths are
ordered infrequent-first using CPI candidate counts (the path-ordering
technique).

**Search.**  Backtracking follows the static order; tree-edge candidates
come from CPI adjacency, non-tree backward edges are probed in the data
graph.  Degree-one leaves are matched last and, in counting mode, counted
combinatorially (CFL's leaf-matching optimization, which DAF adopts).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.filters import initial_candidates, passes_neighborhood_label_frequency
from ..graph.graph import Graph
from ..graph.properties import k_core_vertices
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    Matcher,
    MatchResult,
    SearchStats,
    TimeoutSignal,
    validate_inputs,
)
from .generic import observe_baseline_run


class _LimitReached(Exception):
    pass


@dataclass
class CPI:
    """CFL-Match's compact path index.

    ``adjacency[(p, c)][v]`` lists the candidates of tree-child ``c``
    adjacent (in the data graph) to candidate ``v`` of tree-parent ``p``;
    only spanning-tree edges are materialized.
    """

    query: Graph
    data: Graph
    root: int
    parent: dict[int, int]
    children: dict[int, list[int]]
    bfs_order: list[int]
    candidates: list[set[int]]
    adjacency: dict[tuple[int, int], dict[int, tuple[int, ...]]]

    @property
    def size(self) -> int:
        """Sum of candidate-set sizes — the Fig. 9 comparison metric."""
        return sum(len(c) for c in self.candidates)

    def is_empty(self) -> bool:
        return any(not c for c in self.candidates)


def select_cfl_root(query: Graph, data: Graph) -> int:
    """Root = core vertex minimizing |C_ini(u)| / deg(u) (whole query when
    the 2-core is empty, i.e. tree queries)."""
    from ..core.filters import initial_candidate_count

    core = k_core_vertices(query, 2)
    pool = core if core else frozenset(query.vertices())

    def score(u: int) -> float:
        degree = query.degree(u)
        count = initial_candidate_count(query, data, u)
        return count / degree if degree else float(count)

    return min(pool, key=lambda u: (score(u), u))


def build_cpi(query: Graph, data: Graph, root: Optional[int] = None) -> CPI:
    """Construct the CPI (top-down generation + bottom-up refinement)."""
    if root is None:
        root = select_cfl_root(query, data)
    # BFS tree.
    parent: dict[int, int] = {}
    children: dict[int, list[int]] = {u: [] for u in query.vertices()}
    bfs_order = [root]
    depth = {root: 0}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in query.neighbors(u):
            if w not in depth:
                depth[w] = depth[u] + 1
                parent[w] = u
                children[u].append(w)
                bfs_order.append(w)
                queue.append(w)
    if len(bfs_order) != query.num_vertices:
        raise ValueError("query graph must be connected")

    # Top-down candidate generation.
    candidates: list[set[int]] = [set() for _ in query.vertices()]
    candidates[root] = {
        v
        for v in initial_candidates(query, data, root)
        if passes_neighborhood_label_frequency(query, data, root, v)
    }
    processed = {root}
    for u in bfs_order[1:]:
        p = parent[u]
        allowed = set(initial_candidates(query, data, u))
        pool: set[int] = set()
        for v in candidates[p]:
            for w in data.neighbors(v):
                if w in allowed:
                    pool.add(w)
        checked_neighbors = [w for w in query.neighbors(u) if w in processed and w != p]
        survivors: set[int] = set()
        for w in pool:
            if not passes_neighborhood_label_frequency(query, data, u, w):
                continue
            w_adjacent = data.neighbor_set(w)
            if all(not candidates[un].isdisjoint(w_adjacent) for un in checked_neighbors):
                survivors.add(w)
        candidates[u] = survivors
        processed.add(u)

    # Bottom-up refinement along tree edges.
    for u in reversed(bfs_order):
        for c in children[u]:
            child_set = candidates[c]
            candidates[u] = {
                v for v in candidates[u] if any(w in child_set for w in data.neighbors(v))
            }

    # Materialize tree-edge adjacency.
    adjacency: dict[tuple[int, int], dict[int, tuple[int, ...]]] = {}
    for u in bfs_order:
        for c in children[u]:
            child_set = candidates[c]
            adjacency[(u, c)] = {
                v: tuple(w for w in data.neighbors(v) if w in child_set)
                for v in candidates[u]
            }
    return CPI(
        query=query,
        data=data,
        root=root,
        parent=parent,
        children=children,
        bfs_order=bfs_order,
        candidates=candidates,
        adjacency=adjacency,
    )


def core_forest_leaf_classes(query: Graph) -> list[int]:
    """Class per vertex: 0 = core (2-core), 1 = forest, 2 = leaf.

    When the 2-core is empty (tree queries) every non-leaf vertex is
    treated as forest; 2-vertex queries keep both vertices in class 0 so
    the order machinery never defers everything.
    """
    n = query.num_vertices
    if n <= 2:
        return [0] * n
    core = k_core_vertices(query, 2)
    classes = []
    for u in query.vertices():
        if u in core:
            classes.append(0)
        elif query.degree(u) == 1:
            classes.append(2)
        else:
            classes.append(1)
    # Guard: the matching order needs a non-empty first class containing
    # the root's component; if the core is empty, promote forest to core
    # position implicitly via stable partition (classes 1 then 2).
    return classes


def cfl_matching_order(cpi: CPI) -> list[int]:
    """Core-forest-leaf order with infrequent-path-first inside classes."""
    query = cpi.query
    classes = core_forest_leaf_classes(query)
    # The root anchors the search and is matched first no matter what
    # class the decomposition gave it (a tree query may root at degree 1).
    classes[cpi.root] = 0

    # Path ordering over the BFS tree: root-to-leaf paths sorted by the
    # product of candidate-set sizes of their fresh vertices.
    paths: list[list[int]] = []

    def walk(u: int, prefix: list[int]) -> None:
        prefix = prefix + [u]
        if not cpi.children[u]:
            paths.append(prefix)
            return
        for c in cpi.children[u]:
            walk(c, prefix)

    walk(cpi.root, [])

    def cost(path: list[int]) -> float:
        total = 1.0
        for u in path[1:]:
            total *= max(1, len(cpi.candidates[u]))
        return total

    paths.sort(key=cost)
    base_order: list[int] = []
    seen: set[int] = set()
    for path in paths:
        for u in path:
            if u not in seen:
                seen.add(u)
                base_order.append(u)
    # Stable partition: core, then forest, then leaves.  Tree parents stay
    # ahead of children because a vertex's class never exceeds its tree
    # parent's (core parents for core/forest subtree roots, non-leaf
    # parents for leaves).
    return [u for cls in (0, 1, 2) for u in base_order if classes[u] == cls]


class CFLMatcher(Matcher):
    """CFL-Match: CPI + core-forest-leaf static order + leaf counting."""

    name = "CFL-Match"

    #: Leaf counting makes the enumerate-only fast path natural here, so
    #: CFL honors the shared ``count_only`` option.
    supported_options = Matcher.supported_options | {"count_only"}

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
        count_only: bool = False,
    ) -> MatchResult:
        validate_inputs(query, data)
        stats = SearchStats()
        result = MatchResult(stats=stats)
        start = time.perf_counter()
        cpi = build_cpi(query, data)
        stats.preprocess_seconds = time.perf_counter() - start
        stats.candidates_total = cpi.size
        if cpi.is_empty():
            observe_baseline_run(self.observer, stats, cpi.candidates)
            return result

        order = cfl_matching_order(cpi)
        searcher = _CFLSearch(
            cpi,
            order,
            limit,
            Deadline(time_limit),
            stats,
            on_embedding,
            not count_only,
            observer=self.observer,
        )
        search_start = time.perf_counter()
        try:
            searcher.run()
        except _LimitReached:
            result.limit_reached = True
        except TimeoutSignal:
            result.timed_out = True
        stats.search_seconds = time.perf_counter() - search_start
        result.embeddings = searcher.embeddings
        observe_baseline_run(self.observer, stats, cpi.candidates)
        return result

    def cpi_size(self, query: Graph, data: Graph) -> int:
        """Auxiliary-structure size only (the Fig. 9 measurement)."""
        return build_cpi(query, data).size


class _CFLSearch:
    """Static-order backtracking over the CPI with deferred leaves."""

    def __init__(
        self,
        cpi: CPI,
        order: list[int],
        limit: int,
        deadline: Deadline,
        stats: SearchStats,
        on_embedding: Optional[Callable[[Embedding], None]],
        collect_embeddings: bool,
        observer=None,
    ) -> None:
        self.cpi = cpi
        self.limit = limit
        self.deadline = deadline
        self.stats = stats
        self.on_embedding = on_embedding
        self.collect = collect_embeddings
        self.obs = observer
        self.progress = observer.progress if observer is not None else None
        if observer is not None:
            observer.ensure_vertices(cpi.query.num_vertices)
        self.embeddings: list[Embedding] = []
        query = cpi.query
        n = query.num_vertices
        self.n = n
        classes = core_forest_leaf_classes(query)
        classes[cpi.root] = 0
        self.core_forest_order = [u for u in order if classes[u] != 2]
        self.leaves = [u for u in order if classes[u] == 2]
        position = {u: i for i, u in enumerate(self.core_forest_order)}
        # Backward non-tree neighbors to verify against the data graph.
        self.backward_nontree: list[tuple[int, ...]] = []
        for i, u in enumerate(self.core_forest_order):
            p = cpi.parent.get(u)
            self.backward_nontree.append(
                tuple(
                    w
                    for w in query.neighbors(u)
                    if w != p and w in position and position[w] < i
                )
            )
        self.mapping = [-1] * n
        self.used: set[int] = set()

    def run(self) -> None:
        self._extend(0)

    def _report(self) -> None:
        self.stats.embeddings_found += 1
        if self.collect or self.on_embedding is not None:
            embedding = tuple(self.mapping)
            if self.collect:
                self.embeddings.append(embedding)
            if self.on_embedding is not None:
                self.on_embedding(embedding)
        if self.stats.embeddings_found >= self.limit:
            raise _LimitReached

    def _extend(self, position: int) -> None:
        self.stats.recursive_calls += 1
        self.deadline.tick()
        if self.progress is not None:
            self.progress.tick(self.stats.recursive_calls, position)
        cpi = self.cpi
        data = cpi.data
        if position == len(self.core_forest_order):
            self._match_leaves()
            return
        u = self.core_forest_order[position]
        p = cpi.parent.get(u)
        if p is None:
            pool: tuple[int, ...] = tuple(sorted(cpi.candidates[u]))
        else:
            pool = cpi.adjacency[(p, u)][self.mapping[p]]
        nontree = self.backward_nontree[position]
        mapping = self.mapping
        used = self.used
        obs = self.obs
        if obs is not None:
            entered_before = obs.children_entered
        for v in pool:
            if v in used:
                if obs is not None:
                    obs.candidates_examined += 1
                    obs.prune_conflict += 1
                    obs.vertex_conflict[u] += 1
                continue
            if any(not data.has_edge(v, mapping[w]) for w in nontree):
                # Non-tree edges are not in the CPI, so this data-graph
                # probe is CFL's analogue of a missing CS edge.
                if obs is not None:
                    obs.candidates_examined += 1
                    obs.prune_cs_edge += 1
                continue
            if obs is not None:
                obs.candidates_examined += 1
                obs.children_entered += 1
                obs.vertex_entered[u] += 1
            mapping[u] = v
            used.add(v)
            try:
                self._extend(position + 1)
            finally:
                used.discard(v)
                mapping[u] = -1
        if obs is not None and obs.children_entered == entered_before:
            obs.prune_empty += 1
            obs.vertex_empty[u] += 1

    # -- leaf matching ------------------------------------------------
    def _leaf_pool(self, u: int) -> tuple[int, ...]:
        p = self.cpi.parent[u]
        return self.cpi.adjacency[(p, u)][self.mapping[p]]

    def _match_leaves(self) -> None:
        if not self.leaves:
            self._report()
            return
        if not self.collect and self.on_embedding is None:
            self._count_leaves()
            return
        self._leaf_rec(0)

    def _leaf_rec(self, position: int) -> None:
        if position == len(self.leaves):
            self._report()
            return
        self.deadline.tick()
        u = self.leaves[position]
        obs = self.obs
        if obs is not None:
            entered_before = obs.children_entered
        for v in self._leaf_pool(u):
            if v in self.used:
                if obs is not None:
                    obs.candidates_examined += 1
                    obs.prune_conflict += 1
                    obs.vertex_conflict[u] += 1
                continue
            if obs is not None:
                obs.candidates_examined += 1
                obs.children_entered += 1
                obs.vertex_entered[u] += 1
            self.mapping[u] = v
            self.used.add(v)
            try:
                self._leaf_rec(position + 1)
            finally:
                self.used.discard(v)
                self.mapping[u] = -1
        if obs is not None and obs.children_entered == entered_before:
            obs.prune_empty += 1
            obs.vertex_empty[u] += 1

    def _count_leaves(self) -> None:
        """CFL's combinatorial leaf counting, grouped by label."""
        from ..core.backtrack import _count_injective

        query = self.cpi.query
        remaining = self.limit - self.stats.embeddings_found
        obs = self.obs
        groups: dict[object, list[list[int]]] = {}
        group_first_leaf: dict[object, int] = {}
        for u in self.leaves:
            pool = self._leaf_pool(u)
            usable = [v for v in pool if v not in self.used]
            if obs is not None:
                obs.candidates_examined += len(pool)
                obs.prune_conflict += len(pool) - len(usable)
                obs.vertex_conflict[u] += len(pool) - len(usable)
            groups.setdefault(query.label(u), []).append(usable)
            group_first_leaf.setdefault(query.label(u), u)
        total = 1
        for label, candidate_lists in groups.items():
            group_count = _count_injective(candidate_lists, cap=remaining, injective=True)
            if group_count == 0:
                if obs is not None:
                    obs.prune_empty += 1
                    # The group failed as a unit; attribute the emptyset
                    # to its first leaf so per-vertex sums stay exact.
                    obs.vertex_empty[group_first_leaf[label]] += 1
                return
            total = min(total * group_count, remaining)
        self.stats.embeddings_found += min(total, remaining)
        if self.stats.embeddings_found >= self.limit:
            raise _LimitReached
