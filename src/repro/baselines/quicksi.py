"""QuickSI (Shang et al., VLDB 2008).

QuickSI's contribution is the *QI-sequence*: a spanning entry order of the
query chosen so that infrequent structures are verified first.  Each edge
of the query is weighted by the frequency of its (label, label) pair among
data edges; a minimum spanning tree under these weights gives the
sequence, entered by Prim's algorithm starting from the endpoint of the
globally rarest edge.  During search each newly entered vertex checks its
spanning-tree parent edge plus all backward non-tree edges against the
data graph — the classic "tree edge anchored" backtracking that
:func:`~repro.baselines.generic.ordered_backtrack` implements.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..core.filters import initial_candidates
from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    Matcher,
    MatchResult,
    validate_inputs,
)
from .generic import observe_baseline_run, ordered_backtrack


def edge_label_frequencies(data: Graph) -> dict[tuple[object, object], int]:
    """Frequency of each unordered label pair among data edges."""
    freq: dict[tuple[object, object], int] = {}
    for u, v in data.edges():
        a, b = data.label(u), data.label(v)
        key = (a, b) if repr(a) <= repr(b) else (b, a)
        freq[key] = freq.get(key, 0) + 1
    return freq


def qi_sequence(query: Graph, data: Graph) -> list[int]:
    """The QI-sequence vertex order (Prim over label-pair edge weights)."""
    freq = edge_label_frequencies(data)

    def weight(u: int, v: int) -> int:
        a, b = query.label(u), query.label(v)
        key = (a, b) if repr(a) <= repr(b) else (b, a)
        return freq.get(key, 0)

    if query.num_edges == 0:
        return list(query.vertices())
    start_edge = min(query.edges(), key=lambda e: (weight(*e), e))
    # Prefer the endpoint whose own label is rarer in the data.
    u0, v0 = start_edge
    if data.label_frequency(query.label(v0)) < data.label_frequency(query.label(u0)):
        u0, v0 = v0, u0
    order = [u0]
    in_order = {u0}
    while len(order) < query.num_vertices:
        best = None
        best_key = None
        for u in order:
            for w in query.neighbors(u):
                if w in in_order:
                    continue
                key = (weight(u, w), data.label_frequency(query.label(w)), w)
                if best_key is None or key < best_key:
                    best_key = key
                    best = w
        if best is None:  # disconnected query
            best = min(u for u in query.vertices() if u not in in_order)
        order.append(best)
        in_order.add(best)
    return order


class QuickSIMatcher(Matcher):
    """QuickSI with label+degree candidates and the QI-sequence order."""

    name = "QuickSI"

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        validate_inputs(query, data)
        start = time.perf_counter()
        candidate_sets = [set(initial_candidates(query, data, u)) for u in query.vertices()]
        order = qi_sequence(query, data)
        preprocess = time.perf_counter() - start
        deadline = Deadline(time_limit)
        result = ordered_backtrack(
            query, data, order, candidate_sets, limit, deadline, on_embedding,
            observer=self.observer,
        )
        result.stats.preprocess_seconds = preprocess
        result.stats.candidates_total = sum(len(c) for c in candidate_sets)
        observe_baseline_run(self.observer, result.stats, candidate_sets)
        return result
