"""Shared backtracking machinery for the filter-order-backtrack baselines.

Ullmann, QuickSI, GraphQL, SPath-lite and GADDI-lite all follow the same
two-stage template from the paper's introduction: compute per-vertex
candidate sets with an algorithm-specific filter, pick a (static) matching
order, then run vanilla backtracking that checks *every* backward query
edge against the data graph (these algorithms have no auxiliary edge
structure, so the data graph is probed at each step — exactly the
limitation DAF's CS removes).

:func:`ordered_backtrack` is that common second stage, parameterized by
candidate sets and order; each baseline module supplies stage one.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from ..graph.graph import Graph
from ..interfaces import (
    Deadline,
    Embedding,
    MatchResult,
    SearchStats,
    TimeoutSignal,
)
from ..resilience.budget import BudgetExceeded, embedding_bytes


class _LimitReached(Exception):
    pass


def connectivity_refine_order(query: Graph, seed_order: Sequence[int]) -> list[int]:
    """Reorder ``seed_order`` so every non-first vertex has an earlier
    neighbor, preserving the seed's priorities among eligible vertices.

    Backtracking over a disconnected prefix devolves into a Cartesian
    product; all baselines therefore insist on connectivity of the order.
    """
    priority = {u: i for i, u in enumerate(seed_order)}
    remaining = set(seed_order)
    order = [seed_order[0]]
    remaining.discard(seed_order[0])
    while remaining:
        frontier = [u for u in remaining if any(w not in remaining for w in query.neighbors(u))]
        if not frontier:
            frontier = list(remaining)  # disconnected query component
        nxt = min(frontier, key=lambda u: priority[u])
        order.append(nxt)
        remaining.discard(nxt)
    return order


def ordered_backtrack(
    query: Graph,
    data: Graph,
    order: Sequence[int],
    candidate_sets: Sequence[set[int]],
    limit: int,
    deadline: Deadline,
    on_embedding: Optional[Callable[[Embedding], None]] = None,
    stats: Optional[SearchStats] = None,
    observer=None,
) -> MatchResult:
    """Backtracking over a static order, probing the data graph for edges.

    ``candidate_sets[u]`` constrains the data vertices ``u`` may map to.
    For each step, candidates are drawn from the data-graph adjacency of
    the first already-mapped query neighbor (or the full candidate set for
    the order's first vertex) and every backward edge is verified against
    ``data``.

    ``deadline`` may be a plain :class:`~repro.interfaces.Deadline` or a
    :class:`repro.resilience.Budget`: budgets additionally meter
    recursive calls on every tick and are charged for each collected
    embedding, and a breach flags ``result.budget_breach`` instead of
    raising.  ``KeyboardInterrupt`` likewise returns the partial result
    with ``result.interrupted`` set.

    ``observer`` (a :class:`repro.obs.MetricsRegistry` or ``None``)
    attributes every rejected candidate to a prune reason, so all the
    filter-order-backtrack baselines report accounting comparable to
    DAF's: pool entries outside the candidate set count as
    ``prune_label_degree``, injectivity hits as ``prune_conflict``,
    failed backward-edge probes as ``prune_cs_edge`` (the data-graph
    probes DAF's CS makes unnecessary), and nodes that extend no child
    as ``prune_empty``.
    """
    if stats is None:
        stats = SearchStats()
    result = MatchResult(stats=stats)
    n = query.num_vertices
    if any(not candidate_sets[u] for u in query.vertices()):
        return result
    charge_memory = getattr(deadline, "charge_memory", None)
    embedding_cost = embedding_bytes(n)
    position_of = {u: i for i, u in enumerate(order)}
    backward: list[tuple[int, ...]] = []
    for i, u in enumerate(order):
        backward.append(tuple(w for w in query.neighbors(u) if position_of[w] < i))
    mapping = [-1] * n
    used: set[int] = set()
    obs = observer
    progress = observer.progress if observer is not None else None
    if obs is not None:
        obs.ensure_vertices(n)

    def extend(position: int) -> None:
        stats.recursive_calls += 1
        deadline.tick()
        if progress is not None:
            progress.tick(stats.recursive_calls, position)
        if position == n:
            if charge_memory is not None:
                charge_memory(embedding_cost)
            stats.embeddings_found += 1
            embedding = tuple(mapping)
            result.embeddings.append(embedding)
            if on_embedding is not None:
                on_embedding(embedding)
            if stats.embeddings_found >= limit:
                raise _LimitReached
            return
        u = order[position]
        anchors = backward[position]
        allowed = candidate_sets[u]
        if anchors:
            # Anchor on the mapped neighbor with the smallest data degree.
            anchor = min(anchors, key=lambda w: data.degree(mapping[w]))
            pool = data.neighbors(mapping[anchor])
        else:
            pool = tuple(allowed)
        if obs is not None:
            entered_before = obs.children_entered
        for v in pool:
            if v in used or v not in allowed:
                if obs is not None:
                    obs.candidates_examined += 1
                    if v in used:
                        obs.prune_conflict += 1
                        obs.vertex_conflict[u] += 1
                    else:
                        obs.prune_label_degree += 1
                continue
            if any(not data.has_edge(v, mapping[w]) for w in anchors):
                if obs is not None:
                    obs.candidates_examined += 1
                    obs.prune_cs_edge += 1
                continue
            if obs is not None:
                obs.candidates_examined += 1
                obs.children_entered += 1
                obs.vertex_entered[u] += 1
            mapping[u] = v
            used.add(v)
            extend(position + 1)
            used.discard(v)
            mapping[u] = -1
        if obs is not None and obs.children_entered == entered_before:
            obs.prune_empty += 1
            obs.vertex_empty[u] += 1

    start = time.perf_counter()
    try:
        extend(0)
    except _LimitReached:
        result.limit_reached = True
    except BudgetExceeded as exc:
        result.budget_breach = exc.dimension
        result.timed_out = exc.dimension == "time"
    except TimeoutSignal:
        result.timed_out = True
    except KeyboardInterrupt:
        result.interrupted = True
    stats.search_seconds = time.perf_counter() - start
    return result


def observe_baseline_run(observer, stats, candidate_sets=None) -> None:
    """Finalize one observed baseline run.

    Records the per-vertex candidate histogram (when the baseline has
    candidate sets at all — VF2 does not), maps the baseline's two-stage
    timing onto the shared phase vocabulary (``cs_construct`` = the whole
    filter/order stage, ``search`` = backtracking), snapshots the registry
    into ``stats.metrics`` and emits the counters event.  No-op when
    ``observer`` is ``None`` — callers pass ``self.observer`` through
    unconditionally.
    """
    if observer is None:
        return
    if candidate_sets is not None:
        observer.observe_candidate_sizes(len(c) for c in candidate_sets)
    observer.record_span("cs_construct", stats.preprocess_seconds)
    observer.record_span("search", stats.search_seconds)
    stats.metrics = observer.snapshot()
    observer.emit_counters()


def greedy_candidate_order(query: Graph, candidate_sets: Sequence[set[int]]) -> list[int]:
    """Static left-deep order: start with the smallest candidate set, then
    repeatedly append the connected vertex with the fewest candidates
    (GraphQL's join-order heuristic, reused by the -lite baselines)."""
    seed = sorted(query.vertices(), key=lambda u: (len(candidate_sets[u]), -query.degree(u), u))
    return connectivity_refine_order(query, seed)
