"""Turbo_iso (Han, Lee & Lee, SIGMOD 2013).

Turbo_iso's thesis is that the optimal matching order differs per *region*
of the data graph, so it:

1. picks a start query vertex ``u_s`` ranking by ``|C_ini(u)| / deg(u)``;
2. builds a BFS spanning tree ``q_T`` of the query from ``u_s``;
3. for every start candidate ``v_s``, explores the *candidate region*:
   per-query-vertex candidate sets reachable from ``v_s`` along the
   spanning tree (top-down collection + bottom-up existence pruning —
   the CR structure, here kept as plain per-region candidate sets);
4. computes a *per-region matching order* by the path-ordering technique:
   root-to-leaf paths of ``q_T`` sorted by their estimated number of
   candidate paths (infrequent paths first), concatenated;
5. backtracks inside the region, checking non-tree edges against the data
   graph (the CR holds tree edges only — exactly the limitation the DAF
   paper's §1 challenge 1 discusses).

Simplification (DESIGN.md substitution 2): the NEC (neighborhood
equivalence class) compression of duplicate query vertices is omitted —
it compresses work by constant factors and does not change the region /
path-order behaviour the comparison is about.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Optional

from ..core.filters import initial_candidates, passes_neighborhood_label_frequency
from ..graph.graph import Graph
from ..graph.properties import spanning_tree_edges
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    Matcher,
    MatchResult,
    SearchStats,
    TimeoutSignal,
    validate_inputs,
)
from .generic import observe_baseline_run, ordered_backtrack


class _LimitReached(Exception):
    pass


def choose_start_vertex(query: Graph, data: Graph) -> int:
    """Rank query vertices by |C_ini(u)| / deg(u); smallest wins."""
    from ..core.filters import initial_candidate_count

    def score(u: int) -> float:
        degree = query.degree(u)
        count = initial_candidate_count(query, data, u)
        return count / degree if degree else float(count)

    return min(query.vertices(), key=lambda u: (score(u), u))


def _tree_structure(query: Graph, root: int) -> tuple[dict[int, list[int]], dict[int, int]]:
    """Children map and parent map of the BFS spanning tree from root."""
    edges = spanning_tree_edges(query, root)
    children: dict[int, list[int]] = {u: [] for u in query.vertices()}
    parent: dict[int, int] = {}
    for p, c in edges:
        children[p].append(c)
        parent[c] = p
    return children, parent


def explore_candidate_region(
    query: Graph,
    data: Graph,
    root: int,
    root_candidate: int,
    children: dict[int, list[int]],
    base_candidates: list[set[int]],
) -> Optional[list[set[int]]]:
    """The CR structure for one region, as per-vertex candidate sets.

    Top-down: a candidate of a child must be adjacent to some candidate of
    its tree parent.  Bottom-up: a candidate must retain, for every tree
    child, at least one adjacent candidate.  Returns ``None`` when the
    region cannot host the query tree.
    """
    region: list[set[int]] = [set() for _ in query.vertices()]
    region[root] = {root_candidate}
    order = [root]
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for c in children[u]:
            frontier: set[int] = set()
            allowed = base_candidates[c]
            for v in region[u]:
                for w in data.neighbors(v):
                    if w in allowed:
                        frontier.add(w)
            if not frontier:
                return None
            region[c] = frontier
            order.append(c)
            queue.append(c)
    # Bottom-up existence pruning.
    for u in reversed(order):
        for c in children[u]:
            child_set = region[c]
            region[u] = {
                v for v in region[u] if any(w in child_set for w in data.neighbors(v))
            }
        if not region[u]:
            return None
    return region


def path_order(
    query: Graph,
    root: int,
    children: dict[int, list[int]],
    region: list[set[int]],
) -> list[int]:
    """Turbo_iso's path ordering: root-to-leaf tree paths sorted by their
    estimated candidate-path count, concatenated (first occurrence kept)."""
    paths: list[list[int]] = []

    def walk(u: int, prefix: list[int]) -> None:
        prefix = prefix + [u]
        if not children[u]:
            paths.append(prefix)
            return
        for c in children[u]:
            walk(c, prefix)

    walk(root, [])

    def cost(path: list[int]) -> float:
        total = 1.0
        for u in path[1:]:  # the shared root contributes equally
            total *= max(1, len(region[u]))
        return total

    paths.sort(key=cost)
    order: list[int] = []
    seen: set[int] = set()
    for path in paths:
        for u in path:
            if u not in seen:
                seen.add(u)
                order.append(u)
    return order


class TurboIsoMatcher(Matcher):
    """Turbo_iso: candidate regions + per-region path ordering."""

    name = "TurboISO"

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        validate_inputs(query, data)
        stats = SearchStats()
        result = MatchResult(stats=stats)
        deadline = Deadline(time_limit)
        start = time.perf_counter()
        root = choose_start_vertex(query, data)
        children, _parent = _tree_structure(query, root)
        base_candidates = [
            {
                v
                for v in initial_candidates(query, data, u)
                if passes_neighborhood_label_frequency(query, data, u, v)
            }
            for u in query.vertices()
        ]
        stats.preprocess_seconds = time.perf_counter() - start
        if any(not c for c in base_candidates):
            observe_baseline_run(self.observer, stats, base_candidates)
            return result

        search_start = time.perf_counter()
        try:
            for v_root in sorted(base_candidates[root]):
                if deadline.expired():
                    raise TimeoutSignal
                region = explore_candidate_region(
                    query, data, root, v_root, children, base_candidates
                )
                if region is None:
                    continue
                stats.candidates_total = max(
                    stats.candidates_total, sum(len(c) for c in region)
                )
                order = path_order(query, root, children, region)
                # stats is shared across regions, so embeddings_found is
                # cumulative and the *global* limit is the right bound.
                sub = ordered_backtrack(
                    query,
                    data,
                    order,
                    region,
                    limit,
                    deadline,
                    on_embedding,
                    stats=stats,
                    observer=self.observer,
                )
                result.embeddings.extend(sub.embeddings)
                if sub.timed_out:
                    result.timed_out = True
                    break
                if stats.embeddings_found >= limit:
                    result.limit_reached = True
                    break
        except TimeoutSignal:
            result.timed_out = True
        stats.search_seconds = time.perf_counter() - search_start
        # Counters accumulate across all regions; the histogram records the
        # pre-region candidate sets (the regions are transient refinements).
        observe_baseline_run(self.observer, stats, base_candidates)
        return result
