"""Result certification: validate and cross-check matcher output.

Subgraph matchers are exactly the kind of code whose bugs produce
*plausible* wrong answers (a missed embedding looks like a true negative).
This module provides the checks a downstream user can run cheaply:

- :func:`verify_embeddings` — every reported mapping is a genuine
  (optionally induced) embedding and the list is duplicate-free;
- :func:`cross_validate` — run several matchers on the same instance and
  diff their answer sets (exact when uncapped, count-consistent when the
  k-limit bites);
- :func:`certify_negative` — confirm a "no embeddings" answer with an
  algorithmically unrelated second matcher.

These are also the checks this repository's own CI runs at scale; see
``tests/test_baselines_agreement.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .graph.graph import Graph
from .interfaces import (
    Embedding,
    Matcher,
    MatchOptions,
    MatchRequest,
    is_embedding,
    is_induced_embedding,
)


class VerificationError(AssertionError):
    """Raised when a matcher result fails verification."""


def verify_embeddings(
    embeddings: Sequence[Embedding],
    query: Graph,
    data: Graph,
    induced: bool = False,
) -> None:
    """Raise :class:`VerificationError` unless every embedding is valid
    and the sequence has no duplicates."""
    seen: set[Embedding] = set()
    check = is_induced_embedding if induced else is_embedding
    for position, embedding in enumerate(embeddings):
        if embedding in seen:
            raise VerificationError(f"duplicate embedding at position {position}: {embedding}")
        seen.add(embedding)
        if not check(embedding, query, data):
            kind = "induced embedding" if induced else "embedding"
            raise VerificationError(f"invalid {kind} at position {position}: {embedding}")


@dataclass
class CrossValidationReport:
    """Outcome of running several matchers on one instance."""

    counts: dict[str, int] = field(default_factory=dict)
    capped: dict[str, bool] = field(default_factory=dict)
    #: Embeddings found by some matcher but not all (only populated when
    #: no matcher was capped, i.e. the full sets are comparable).
    disagreements: dict[str, set[Embedding]] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        if any(self.capped.values()):
            # Capped runs may legitimately return different subsets; only
            # the "found at least limit" property is comparable.
            return len(set(self.counts.values())) <= 1 or all(self.capped.values())
        return not self.disagreements and len(set(self.counts.values())) <= 1


def cross_validate(
    query: Graph,
    data: Graph,
    matchers: dict[str, Matcher],
    limit: int = 10_000,
    time_limit: Optional[float] = None,
) -> CrossValidationReport:
    """Run every matcher and diff the results.

    Each result is first validated with :func:`verify_embeddings`; a
    matcher returning an invalid embedding raises immediately.  Matchers
    that did not finish — timeout, interrupt, budget breach, or a lost
    parallel slice — are skipped (their partial sets are not comparable).
    """
    if len(matchers) < 2:
        raise ValueError("cross-validation needs at least two matchers")
    report = CrossValidationReport()
    full_sets: dict[str, set[Embedding]] = {}
    for name, matcher in matchers.items():
        result = matcher.run_request(
            MatchRequest(query, data, options=MatchOptions(limit=limit, time_limit=time_limit))
        )
        if not result.solved:
            continue
        verify_embeddings(result.embeddings, query, data)
        report.counts[name] = result.count
        report.capped[name] = result.limit_reached
        full_sets[name] = set(result.embeddings)
    if full_sets and not any(report.capped.values()):
        union: set[Embedding] = set()
        for embeddings in full_sets.values():
            union |= embeddings
        for name, embeddings in full_sets.items():
            missing = union - embeddings
            if missing:
                report.disagreements[name] = missing
    return report


def certify_negative(
    query: Graph,
    data: Graph,
    primary: Optional[Matcher] = None,
    witness: Optional[Matcher] = None,
    time_limit: Optional[float] = None,
) -> bool:
    """Confirm that no embedding exists, using two unrelated matchers.

    Returns ``True`` when both agree on emptiness; raises
    :class:`VerificationError` if they disagree (a bug in one of them);
    returns ``False`` if an embedding exists.
    """
    from .baselines.vf2 import VF2Matcher
    from .core.matcher import DAFMatcher

    primary = primary if primary is not None else DAFMatcher()
    witness = witness if witness is not None else VF2Matcher()
    options = MatchOptions(limit=1, time_limit=time_limit)
    primary_result = primary.run_request(MatchRequest(query, data, options=options))
    witness_result = witness.run_request(MatchRequest(query, data, options=options))
    if not primary_result.solved or not witness_result.solved:
        raise VerificationError(
            "certification inconclusive: a matcher did not finish "
            "(timeout, interrupt, or budget breach)"
        )
    primary_empty = primary_result.count == 0
    witness_empty = witness_result.count == 0
    if primary_empty != witness_empty:
        raise VerificationError(
            f"matchers disagree on negativity: {type(primary).__name__} says "
            f"{'negative' if primary_empty else 'positive'}, "
            f"{type(witness).__name__} says "
            f"{'negative' if witness_empty else 'positive'}"
        )
    return primary_empty
