"""Top-level DAF matcher (paper Algorithm 1).

``DAFMatcher.match`` runs the three stages — BuildDAG, BuildCS, Backtrack —
and returns a :class:`~repro.interfaces.MatchResult`.  A prepared query
(DAG + CS + weight array) can also be built once with
:meth:`DAFMatcher.prepare` and searched repeatedly or in parallel slices,
which is what the parallel extension (Appendix A.4) uses.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..graph.digraph import RootedDAG
from ..graph.graph import Graph
from ..graph.properties import is_connected
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    Matcher,
    MatchOptions,
    MatchRequest,
    MatchResult,
    SearchStats,
    TimeoutSignal,
    validate_inputs,
)
from ..resilience.budget import Budget, BudgetExceeded
from ..resilience.checkpoint import resume_payload
from .backtrack import BacktrackEngine
from .candidate_space import CandidateSpace, build_candidate_space
from .config import MatchConfig
from .dag import build_dag


@dataclass
class PreparedQuery:
    """A query preprocessed against a data graph: DAG + CS.

    Reusable across searches (e.g. different limits, or the per-worker
    root-candidate slices of parallel DAF).
    """

    query: Graph
    data: Graph
    dag: RootedDAG
    cs: CandidateSpace
    preprocess_seconds: float

    @property
    def is_negative(self) -> bool:
        """True iff the CS proves there are no embeddings (empty C(u))."""
        return self.cs.is_empty()


class DAFMatcher(Matcher):
    """The paper's DAF algorithm (default config: DAF-path).

    Examples
    --------
    >>> from repro.graph import Graph
    >>> data = Graph(labels=["A", "B", "B"], edges=[(0, 1), (0, 2), (1, 2)])
    >>> query = Graph(labels=["A", "B"], edges=[(0, 1)])
    >>> from repro.interfaces import MatchRequest
    >>> result = DAFMatcher().match(MatchRequest(query, data))
    >>> sorted(result.embeddings)
    [(0, 1), (0, 2)]
    """

    #: Beyond the shared surface, DAF honors a multi-dimension resource
    #: ``budget``, the enumerate-only ``count_only`` fast path, resuming
    #: a suspended search from a checkpoint (``resume_from``), and the
    #: EXPLAIN ANALYZE capture path (``explain`` — docs/explain.md).
    supported_options = Matcher.supported_options | {
        "budget",
        "count_only",
        "resume_from",
        "explain",
    }

    def __init__(self, config: Optional[MatchConfig] = None, observer=None) -> None:
        self.config = config if config is not None else MatchConfig()
        self.name = self.config.variant_name
        #: Optional :class:`repro.obs.MetricsRegistry`; ``None`` keeps the
        #: engine entirely un-instrumented (the zero-overhead contract).
        self.observer = observer

    # ------------------------------------------------------------------
    def prepare(
        self,
        query: Graph,
        data: Graph,
        budget: Optional[Budget] = None,
        observer=None,
        keep_trail: bool = False,
    ) -> PreparedQuery:
        """Run BuildDAG + BuildCS (Algorithm 1 lines 1-2).

        ``keep_trail=True`` asks BuildCS to record its per-pass
        refinement snapshots (``cs.trail``) so the serving layer can
        refresh the CS incrementally after data-graph mutations.

        With a ``budget``, CS construction is governed too: an oversized
        or overlong build raises
        :class:`~repro.resilience.BudgetExceeded` (``match`` converts it
        into a flagged result).  ``observer`` overrides the matcher's
        attached registry for this call; the build emits ``dag_build``,
        ``cs_construct`` and ``cs_refine`` spans plus filter-stage prune
        counters and the candidate histogram.
        """
        obs = observer if observer is not None else self.observer
        validate_inputs(query, data)
        if query.num_vertices > 1 and not is_connected(query):
            raise ValueError(
                "query graph must be connected (paper §2); match components separately"
            )
        start = time.perf_counter()
        dag = build_dag(query, data)
        if obs is not None:
            obs.record_span("dag_build", time.perf_counter() - start)
        if self.config.injective:
            initial_sets = None
            use_local_filters = self.config.use_local_filters
        else:
            # Homomorphisms may fold several query vertices onto one data
            # vertex, so the degree-based C_ini and the MND/NLF filters
            # (which all assume injectivity) are unsound: fall back to
            # label-only initial candidates.  The DP itself only checks
            # existence and stays sound for homomorphisms.
            initial_sets = [
                set(data.vertices_with_label(query.label(u))) for u in query.vertices()
            ]
            use_local_filters = False
        cs_start = time.perf_counter()
        cs = build_candidate_space(
            query,
            data,
            dag,
            refinement_steps=self.config.refinement_steps,
            refine_to_fixpoint=self.config.refine_to_fixpoint,
            use_local_filters=use_local_filters,
            initial_sets=initial_sets,
            budget=budget,
            observer=obs,
            keep_trail=keep_trail,
        )
        if obs is not None:
            obs.record_span("cs_construct", time.perf_counter() - cs_start)
        return PreparedQuery(
            query=query,
            data=data,
            dag=dag,
            cs=cs,
            preprocess_seconds=time.perf_counter() - start,
        )

    def search(
        self,
        prepared: PreparedQuery,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
        root_candidate_indices: Optional[list[int]] = None,
        tracer=None,
        budget: Optional[Budget] = None,
        observer=None,
        resume_from=None,
        checkpoint_every: Optional[int] = None,
        on_checkpoint=None,
    ) -> MatchResult:
        """Run Backtrack (Algorithm 1 line 4) over a prepared query.

        Pass a :class:`repro.core.trace.SearchTracer` as ``tracer`` to
        record the full search tree (nodes, leaf classes, failing sets —
        the paper's Figure 6/8 view), or a
        :class:`repro.obs.SamplingTracer` for the bounded version that
        scales to real workloads.

        A ``budget`` replaces the plain wall-clock deadline with the
        multi-dimension governor (``time_limit`` additionally tightens
        its wall-clock dimension when both are given).  The search never
        raises on expiry: timeouts, budget breaches and
        ``KeyboardInterrupt`` all return the partial result with the
        corresponding flag set.

        ``observer`` (or the matcher-level ``self.observer``) records
        prune-reason counters, the ``order``/``search`` spans, and leaves
        its snapshot in ``result.stats.metrics``.

        Suspend/resume: when the search is cut short at a resumable safe
        phase, ``result.checkpoint`` carries a
        :class:`~repro.resilience.checkpoint.SearchCheckpoint`; pass it
        back as ``resume_from`` (with the same prepared query and config)
        to continue bit-identically.  ``checkpoint_every`` /
        ``on_checkpoint`` additionally stream periodic snapshots every
        that-many recursive calls (how parallel workers heartbeat their
        frontier to the supervisor).
        """
        if limit < 1:
            raise ValueError("limit must be >= 1")
        obs = observer if observer is not None else self.observer
        stats = SearchStats(
            candidates_total=prepared.cs.size,
            filter_iterations=prepared.cs.refinement_steps,
            preprocess_seconds=prepared.preprocess_seconds,
        )
        result = MatchResult(stats=stats)
        if prepared.is_negative:
            # Negativity proven by preprocessing alone (A.3); the filter
            # counters still explain *why* (some C(u) emptied).
            if obs is not None:
                stats.metrics = obs.snapshot()
                obs.emit_counters()
            return result
        if budget is not None:
            if time_limit is not None:
                budget.cap_time(time_limit)
            deadline = budget
        else:
            deadline = Deadline(time_limit)
        order_start = time.perf_counter()
        engine = BacktrackEngine(
            prepared.cs,
            self.config,
            limit=limit,
            deadline=deadline,
            stats=stats,
            on_embedding=on_embedding,
            root_candidate_indices=root_candidate_indices,
            tracer=tracer,
            observer=obs,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
        )
        if resume_from is not None:
            ckpt = resume_payload(resume_from)
            engine.restore(ckpt)
            if obs is not None:
                obs.resumes += 1
                # Continue the original request's trace (resume lineage)
                # unless a caller already installed a context.
                obs.adopt_trace(ckpt.trace)
                obs.emit(
                    {
                        "event": "checkpoint.resume",
                        "phase": ckpt.phase,
                        "depth": ckpt.depth,
                        "recursive_calls": ckpt.recursive_calls,
                        "embeddings_found": ckpt.embeddings_found,
                    }
                )
        if obs is not None:
            # Engine setup is dominated by the matching-order machinery
            # (weight arrays for path-size ordering).
            obs.record_span("order", time.perf_counter() - order_start)
        # Queries can reach hundreds of vertices (Fig. 11 uses 400); give
        # the recursion comfortable headroom beyond the interpreter default.
        needed_depth = 1000 + 4 * prepared.query.num_vertices
        old_depth = sys.getrecursionlimit()
        if old_depth < needed_depth:
            sys.setrecursionlimit(needed_depth)
        search_start = time.perf_counter()

        def attach_checkpoint(reason: str) -> None:
            if not engine.can_checkpoint():
                return
            ckpt = engine.capture_checkpoint()
            result.checkpoint = ckpt
            if obs is not None:
                if obs.trace is not None:
                    ckpt.trace = obs.trace.to_dict()
                obs.emit(
                    {
                        "event": "checkpoint.save",
                        "reason": reason,
                        "phase": ckpt.phase,
                        "depth": ckpt.depth,
                        "recursive_calls": ckpt.recursive_calls,
                        "embeddings_found": ckpt.embeddings_found,
                    }
                )

        try:
            engine.run()
        except BudgetExceeded as exc:
            result.budget_breach = exc.dimension
            result.timed_out = exc.dimension == "time"
            attach_checkpoint(f"budget:{exc.dimension}")
        except TimeoutSignal:
            result.timed_out = True
            attach_checkpoint("timeout")
        except KeyboardInterrupt:
            # Cooperative cancel: surface what was found, flagged, instead
            # of discarding the work (the CLI maps this to exit code 130).
            result.interrupted = True
            attach_checkpoint("interrupt")
        except Exception as exc:
            # Unexpected crash (e.g. an injected fault): hang the frontier
            # on the exception so supervisors can resume instead of
            # restarting, then let it propagate.
            if engine.can_checkpoint():
                ckpt = engine.capture_checkpoint()
                if obs is not None and obs.trace is not None:
                    ckpt.trace = obs.trace.to_dict()
                exc.search_checkpoint = ckpt
            raise
        finally:
            stats.search_seconds = time.perf_counter() - search_start
            if old_depth < needed_depth:
                sys.setrecursionlimit(old_depth)
        result.embeddings = engine.embeddings
        result.limit_reached = engine.limit_reached
        if obs is not None:
            obs.record_span("search", stats.search_seconds)
            stats.metrics = obs.snapshot()
            obs.emit_counters()
        return result

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
        budget: Optional[Budget] = None,
        count_only: bool = False,
        resume_from=None,
        explain: bool = False,
    ) -> MatchResult:
        """Algorithm 1: find up to ``limit`` embeddings of query in data.

        ``budget`` optionally governs the *whole* invocation (CS build
        included) across every dimension; a breach returns a flagged
        partial result rather than raising.  ``count_only`` counts
        matches without materializing embedding tuples (the engine's
        ``collect_embeddings=False`` path).  ``resume_from`` continues a
        previously checkpointed search over the same query/data/config.
        ``explain`` captures an EXPLAIN ANALYZE report in
        ``result.explain``: the run executes under a dedicated metrics
        registry and the static plan is joined with its per-vertex
        actuals (``repro.obs.explain``, docs/explain.md).
        """
        if count_only and self.config.collect_embeddings:
            import dataclasses

            counting = DAFMatcher(
                dataclasses.replace(self.config, collect_embeddings=False),
                observer=self.observer,
            )
            return counting._match_impl(
                query,
                data,
                limit=limit,
                time_limit=time_limit,
                on_embedding=on_embedding,
                budget=budget,
                resume_from=resume_from,
                explain=explain,
            )
        if explain:
            from ..obs.explain import run_with_explain

            return run_with_explain(
                self,
                query,
                data,
                limit=limit,
                time_limit=time_limit,
                on_embedding=on_embedding,
                budget=budget,
                resume_from=resume_from,
            )
        overall_deadline = Deadline(time_limit)
        try:
            prepared = self.prepare(query, data, budget=budget)
        except BudgetExceeded as exc:
            result = MatchResult()
            result.budget_breach = exc.dimension
            result.timed_out = exc.dimension == "time"
            return result
        if overall_deadline.expired():
            result = MatchResult(
                stats=SearchStats(
                    candidates_total=prepared.cs.size,
                    filter_iterations=prepared.cs.refinement_steps,
                    preprocess_seconds=prepared.preprocess_seconds,
                )
            )
            result.timed_out = True
            if self.observer is not None:
                result.stats.metrics = self.observer.snapshot()
            return result
        remaining = None
        if time_limit is not None:
            remaining = max(0.0, time_limit - prepared.preprocess_seconds)
        return self.search(
            prepared,
            limit=limit,
            time_limit=remaining,
            on_embedding=on_embedding,
            budget=budget,
            resume_from=resume_from,
        )


def find_embeddings(
    query: Graph,
    data: Graph,
    limit: int = DEFAULT_LIMIT,
    time_limit: Optional[float] = None,
    config: Optional[MatchConfig] = None,
) -> list[Embedding]:
    """Convenience wrapper: the embeddings of ``query`` in ``data``."""
    request = MatchRequest(query, data, options=MatchOptions(limit=limit, time_limit=time_limit))
    return DAFMatcher(config).run_request(request).embeddings


def count_embeddings(
    query: Graph,
    data: Graph,
    limit: int = DEFAULT_LIMIT,
    time_limit: Optional[float] = None,
    config: Optional[MatchConfig] = None,
) -> int:
    """Convenience wrapper: the number of embeddings (capped at limit),
    counted without materializing them."""
    request = MatchRequest(
        query,
        data,
        options=MatchOptions(limit=limit, time_limit=time_limit, count_only=True),
    )
    return DAFMatcher(config).run_request(request).count


def has_embedding(
    query: Graph,
    data: Graph,
    time_limit: Optional[float] = None,
    config: Optional[MatchConfig] = None,
) -> bool:
    """Convenience wrapper: does at least one embedding exist?"""
    return count_embeddings(query, data, limit=1, time_limit=time_limit, config=config) > 0
