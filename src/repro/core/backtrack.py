"""The DAF backtracking engine (paper §5 and §6).

The engine finds embeddings of the query *in the CS structure* (never
touching the data graph — Theorem 4.1 makes that sufficient).  Its three
pillars:

**DAG ordering** (§5.1).  The next vertex to map is always *extendable* —
all its parents in the query DAG are mapped — so every query edge is
checked as early as the DAG allows.  The extendable candidates of ``u``
are ``C_M(u) = intersection over parents p of N^p_u(M(p))``, computed once
when ``u`` becomes extendable (its parents cannot change until we backtrack
past them).

**Adaptive matching order** (§5.2).  Among extendable vertices the engine
picks the one minimizing the configured weight — ``|C_M(u)|``
(candidate-size) or ``w_M(u)`` from the precomputed weight array
(path-size).

**Failing sets** (§6).  With pruning enabled, each search-tree node
computes a failing set — an ancestor-closed set ``F`` of query vertices
such that no (CS-)embedding of ``q[F]`` extends ``M[F]`` — represented as
an int bitmask.  ``None`` encodes "an embedding was found in this subtree"
(the paper's F = emptyset, Case 1).  The three leaf classes:

- *conflict*: extendable candidate already visited by query vertex ``u'``
  → contributes ``anc(u) | anc(u')``;
- *emptyset*: ``C_M(u)`` has no usable candidate → ``anc(u)``;
- *embedding*: a full embedding → ``None``.

Internal nodes take the union of their children's failing sets (Case 2.2)
unless some child's failing set excludes the child's query vertex — then
by Lemma 6.1 all remaining sibling candidates are redundant and the loop
is cut short (Case 2.1).

**Leaf decomposition** (§3).  Degree-one query vertices are deferred and
matched last by a specialized matcher that exploits their independence:
leaves with different labels can never conflict, so in counting mode whole
groups multiply combinatorially instead of being enumerated.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..interfaces import Deadline, Embedding, SearchStats, TimeoutSignal
from ..resilience.budget import embedding_bytes
from ..resilience.faults import FAULTS
from .candidate_space import CandidateSpace
from .config import MatchConfig
from .ordering import make_order


class _LimitReached(Exception):
    """Internal signal: the embedding limit was hit; unwind the search."""


class BacktrackEngine:
    """One search over a prepared candidate space.

    An engine instance is single-use: construct, :meth:`run`, read results.
    ``root_candidate_indices`` restricts the root's candidates, which is
    how parallel DAF partitions the search across workers (Appendix A.4).

    ``observer`` is an optional :class:`repro.obs.MetricsRegistry`.  The
    zero-overhead contract: when it is ``None`` (the default) the hot
    loop performs no observability work beyond ``is not None`` checks on
    locals — there is no no-op registry object, and search results are
    bit-identical with metrics on and off.
    """

    def __init__(
        self,
        cs: CandidateSpace,
        config: MatchConfig,
        limit: int,
        deadline: Deadline,
        stats: SearchStats,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
        root_candidate_indices: Optional[list[int]] = None,
        tracer=None,
        observer=None,
    ) -> None:
        self.cs = cs
        self.config = config
        self.limit = limit
        self.deadline = deadline
        self.stats = stats
        self.on_embedding = on_embedding
        self.tracer = tracer
        self.obs = observer
        self.progress = observer.progress if observer is not None else None
        if observer is not None:
            observer.ensure_vertices(cs.dag.num_vertices)
        self.embeddings: list[Embedding] = []
        self.limit_reached = False

        dag = cs.dag
        n = dag.num_vertices
        self.n = n
        self.dag = dag
        self.anc = tuple(dag.ancestor_mask(u) for u in range(n))
        self.parents = tuple(dag.parents(u) for u in range(n))
        self.children = tuple(dag.children(u) for u in range(n))
        self.order = make_order(config.order, cs)
        self.injective = config.injective
        self.collect = config.collect_embeddings
        # Budget governors expose charge_memory (plain Deadline does not);
        # collected embeddings are the search's dominant allocation.
        self._charge_memory = getattr(deadline, "charge_memory", None)
        self._embedding_cost = embedding_bytes(n)

        query = cs.query
        self.induced = config.induced
        if self.induced:
            # Non-neighbors per query vertex: an induced embedding must
            # map these to data non-neighbors, checked at mapping time.
            self.non_neighbors = tuple(
                tuple(
                    w
                    for w in range(n)
                    if w != u and not query.has_edge(u, w)
                )
                for u in range(n)
            )
        # Leaf combinatorics assume only edge constraints, which induced
        # matching violates; fall back to the plain engine order.
        if config.leaf_decomposition and n > 2 and not self.induced:
            self.deferred = tuple(
                query.degree(u) == 1 and u != dag.root for u in range(n)
            )
        else:
            self.deferred = tuple(False for _ in range(n))
        self.deferred_leaves = tuple(u for u in range(n) if self.deferred[u])
        self.num_core = n - len(self.deferred_leaves)

        # Mutable search state.
        self.mapping = [-1] * n
        self.midx = [-1] * n
        self.visited_by: dict[int, int] = {}
        self.pending = [len(self.parents[u]) for u in range(n)]
        self.extendable: set[int] = set()
        self.cmu: list[Optional[list[int]]] = [None] * n
        self.wmu = [0] * n
        self.mapped_core = 0

        root = dag.root
        if root_candidate_indices is None:
            root_cmu = list(range(len(cs.candidates[root])))
        else:
            root_cmu = list(root_candidate_indices)
        self.cmu[root] = root_cmu
        self.wmu[root] = self.order.vertex_weight(root, root_cmu)
        self.extendable.add(root)

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Execute the search; raises :class:`TimeoutSignal` on deadline."""
        if any(not c for c in self.cs.candidates):
            return  # empty CS: negative query, nothing to search (A.3)
        try:
            if self.config.use_failing_sets:
                self._extend_fs()
            else:
                self._extend_plain()
        except _LimitReached:
            self.limit_reached = True

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def _select(self) -> int:
        """Extendable vertex with minimal weight; ties break on vertex id."""
        best_u = -1
        best_w = None
        for u in self.extendable:
            w = self.wmu[u]
            if best_w is None or w < best_w or (w == best_w and u < best_u):
                best_w = w
                best_u = u
        return best_u

    def _compute_cmu(self, u: int) -> list[int]:
        """C_M(u): intersect the parents' CS adjacency lists (Def. 5.2)."""
        down = self.cs.down
        midx = self.midx
        lists = [down[p][u][midx[p]] for p in self.parents[u]]
        if len(lists) == 1:
            return list(lists[0])
        lists.sort(key=len)
        result = set(lists[0])
        for other in lists[1:]:
            result.intersection_update(other)
            if not result:
                return []
        return sorted(result)

    def _map(self, u: int, i: int, v: int) -> None:
        self.mapping[u] = v
        self.midx[u] = i
        if self.injective:
            self.visited_by[v] = u
        self.extendable.discard(u)
        self.mapped_core += 1
        for c in self.children[u]:
            if self.deferred[c]:
                continue
            self.pending[c] -= 1
            if self.pending[c] == 0:
                cmu = self._compute_cmu(c)
                self.cmu[c] = cmu
                self.wmu[c] = self.order.vertex_weight(c, cmu)
                self.extendable.add(c)

    def _unmap(self, u: int, v: int) -> None:
        for c in self.children[u]:
            if self.deferred[c]:
                continue
            if self.pending[c] == 0:
                self.extendable.discard(c)
                self.cmu[c] = None
            self.pending[c] += 1
        self.mapped_core -= 1
        self.extendable.add(u)
        if self.injective:
            del self.visited_by[v]
        self.mapping[u] = -1
        self.midx[u] = -1

    def _induced_violation(self, u: int, v: int) -> int:
        """Induced-mode check: the first mapped non-neighbor of ``u``
        whose image is adjacent to ``v`` in the data graph, or -1.

        Query non-edges must map to data non-edges; a violation plays the
        same failing-set role as a visited conflict — it pins ``u`` and
        the offending vertex.
        """
        mapping = self.mapping
        data = self.cs.data
        for w in self.non_neighbors[u]:
            image = mapping[w]
            if image >= 0 and data.has_edge(v, image):
                return w
        return -1

    def _report(self) -> None:
        if self.collect and self._charge_memory is not None:
            # Charge before counting so a breach leaves count == collected.
            self._charge_memory(self._embedding_cost)
        self.stats.embeddings_found += 1
        if self.collect or self.on_embedding is not None:
            embedding = tuple(self.mapping)
            if self.collect:
                self.embeddings.append(embedding)
            if self.on_embedding is not None:
                self.on_embedding(embedding)
        if self.stats.embeddings_found >= self.limit:
            raise _LimitReached

    def _report_bulk(self, count: int) -> None:
        """Count ``count`` embeddings without materializing them (leaf
        combinatorics in counting mode)."""
        remaining = self.limit - self.stats.embeddings_found
        take = min(count, remaining)
        self.stats.embeddings_found += take
        if self.stats.embeddings_found >= self.limit:
            raise _LimitReached

    # ------------------------------------------------------------------
    # Search with failing sets (DAF variants)
    # ------------------------------------------------------------------
    def _extend_fs(self) -> Optional[int]:
        """Returns the node's failing-set mask, or None if an embedding was
        found in this subtree (Case 1 makes the parent's F empty)."""
        self.stats.recursive_calls += 1
        self.deadline.tick()
        if FAULTS.active:
            FAULTS.fire("backtrack.step", calls=self.stats.recursive_calls)
        progress = self.progress
        if progress is not None:
            progress.tick(self.stats.recursive_calls, self.mapped_core)
        if self.mapped_core == self.num_core:
            return self._match_leaves_fs()
        u = self._select()
        cmu = self.cmu[u]
        anc = self.anc
        tracer = self.tracer
        obs = self.obs
        if not cmu:
            if obs is not None:
                obs.prune_empty += 1
                obs.vertex_empty[u] += 1
            if tracer is not None:
                tracer.emptyset(u)
            return anc[u]  # emptyset class
        candidates_u = self.cs.candidates[u]
        visited_by = self.visited_by
        fs_union = 0
        found_embedding = False
        for i in cmu:
            v = candidates_u[i]
            if obs is not None:
                obs.candidates_examined += 1
            if self.injective:
                occupier = visited_by.get(v)
                if occupier is not None:
                    contribution = anc[u] | anc[occupier]  # conflict class
                    fs_union |= contribution
                    if obs is not None:
                        obs.prune_conflict += 1
                        obs.vertex_conflict[u] += 1
                    if tracer is not None:
                        tracer.conflict(u, v, contribution)
                    continue
            if self.induced:
                offender = self._induced_violation(u, v)
                if offender >= 0:
                    contribution = anc[u] | anc[offender]
                    fs_union |= contribution
                    if obs is not None:
                        obs.prune_conflict += 1
                        obs.vertex_conflict[u] += 1
                    if tracer is not None:
                        tracer.conflict(u, v, contribution)
                    continue
            if obs is not None:
                obs.children_entered += 1
                obs.vertex_entered[u] += 1
            if tracer is not None:
                tracer.enter(u, v)
            self._map(u, i, v)
            try:
                child_fs = self._extend_fs()
            finally:
                self._unmap(u, v)
            if tracer is not None:
                tracer.leave(child_fs, child_fs is None)
            if child_fs is None:
                found_embedding = True
            elif not (child_fs >> u) & 1:
                # Case 2.1 + Lemma 6.1: remaining siblings are redundant.
                if obs is not None:
                    obs.fs_cuts += 1
                    skipped = len(cmu) - cmu.index(i) - 1
                    obs.prune_failing_set += skipped
                    obs.vertex_fs_pruned[u] += skipped
                if tracer is not None:
                    position = cmu.index(i)
                    for j in cmu[position + 1 :]:
                        tracer.pruned(u, candidates_u[j])
                return None if found_embedding else child_fs
            else:
                fs_union |= child_fs  # Case 2.2
        return None if found_embedding else fs_union

    # ------------------------------------------------------------------
    # Search without failing sets (DA variants)
    # ------------------------------------------------------------------
    def _extend_plain(self) -> None:
        self.stats.recursive_calls += 1
        self.deadline.tick()
        if FAULTS.active:
            FAULTS.fire("backtrack.step", calls=self.stats.recursive_calls)
        progress = self.progress
        if progress is not None:
            progress.tick(self.stats.recursive_calls, self.mapped_core)
        if self.mapped_core == self.num_core:
            self._match_leaves_plain()
            return
        u = self._select()
        cmu = self.cmu[u]
        obs = self.obs
        if not cmu:
            if obs is not None:
                obs.prune_empty += 1
                obs.vertex_empty[u] += 1
            return
        candidates_u = self.cs.candidates[u]
        visited_by = self.visited_by
        tracer = self.tracer
        for i in cmu:
            v = candidates_u[i]
            if obs is not None:
                obs.candidates_examined += 1
            if self.injective and v in visited_by:
                if obs is not None:
                    obs.prune_conflict += 1
                    obs.vertex_conflict[u] += 1
                continue
            if self.induced and self._induced_violation(u, v) >= 0:
                if obs is not None:
                    obs.prune_conflict += 1
                    obs.vertex_conflict[u] += 1
                continue
            if obs is not None:
                obs.children_entered += 1
                obs.vertex_entered[u] += 1
            if tracer is not None:
                tracer.enter(u, v)
            self._map(u, i, v)
            try:
                self._extend_plain()
            finally:
                self._unmap(u, v)
            if tracer is not None:
                tracer.leave(None, False)

    # ------------------------------------------------------------------
    # Leaf matching (§3: degree-one vertices matched last)
    # ------------------------------------------------------------------
    def _leaf_candidate_indices(self, u: int) -> tuple[int, ...]:
        """CS candidates of deferred leaf ``u`` given its mapped parent."""
        (p,) = self.parents[u]
        return self.cs.down[p][u][self.midx[p]]

    def _can_count_combinatorially(self) -> bool:
        return not self.collect and self.on_embedding is None

    def _match_leaves_fs(self) -> Optional[int]:
        leaves = self.deferred_leaves
        if not leaves:
            self._report()
            return None
        if self._can_count_combinatorially():
            return self._count_leaves()
        info = [(u, self._leaf_candidate_indices(u)) for u in leaves]
        return self._leaf_rec_fs(info, 0)

    def _leaf_rec_fs(self, info: list[tuple[int, tuple[int, ...]]], pos: int) -> Optional[int]:
        if pos == len(info):
            self._report()
            return None
        self.deadline.tick()
        u, idxs = info[pos]
        anc = self.anc
        obs = self.obs
        if not idxs:
            if obs is not None:
                obs.prune_empty += 1
                obs.vertex_empty[u] += 1
            return anc[u]
        candidates_u = self.cs.candidates[u]
        visited_by = self.visited_by
        fs_union = 0
        found_embedding = False
        for i in idxs:
            v = candidates_u[i]
            if obs is not None:
                obs.candidates_examined += 1
            if self.injective:
                occupier = visited_by.get(v)
                if occupier is not None:
                    fs_union |= anc[u] | anc[occupier]
                    if obs is not None:
                        obs.prune_conflict += 1
                        obs.vertex_conflict[u] += 1
                    continue
                visited_by[v] = u
            if obs is not None:
                obs.children_entered += 1
                obs.vertex_entered[u] += 1
            self.mapping[u] = v
            try:
                child_fs = self._leaf_rec_fs(info, pos + 1)
            finally:
                self.mapping[u] = -1
                if self.injective:
                    del visited_by[v]
            if child_fs is None:
                found_embedding = True
            elif not (child_fs >> u) & 1:
                if obs is not None:
                    obs.fs_cuts += 1
                    skipped = len(idxs) - idxs.index(i) - 1
                    obs.prune_failing_set += skipped
                    obs.vertex_fs_pruned[u] += skipped
                return None if found_embedding else child_fs
            else:
                fs_union |= child_fs
        return None if found_embedding else fs_union

    def _match_leaves_plain(self) -> None:
        leaves = self.deferred_leaves
        if not leaves:
            self._report()
            return
        if self._can_count_combinatorially():
            self._count_leaves()
            return
        info = [(u, self._leaf_candidate_indices(u)) for u in leaves]
        self._leaf_rec_plain(info, 0)

    def _leaf_rec_plain(self, info: list[tuple[int, tuple[int, ...]]], pos: int) -> None:
        if pos == len(info):
            self._report()
            return
        self.deadline.tick()
        u, idxs = info[pos]
        candidates_u = self.cs.candidates[u]
        visited_by = self.visited_by
        obs = self.obs
        if not idxs and obs is not None:
            obs.prune_empty += 1
            obs.vertex_empty[u] += 1
        for i in idxs:
            v = candidates_u[i]
            if obs is not None:
                obs.candidates_examined += 1
            if self.injective:
                if v in visited_by:
                    if obs is not None:
                        obs.prune_conflict += 1
                        obs.vertex_conflict[u] += 1
                    continue
                visited_by[v] = u
            if obs is not None:
                obs.children_entered += 1
                obs.vertex_entered[u] += 1
            self.mapping[u] = v
            try:
                self._leaf_rec_plain(info, pos + 1)
            finally:
                self.mapping[u] = -1
                if self.injective:
                    del visited_by[v]

    def _count_leaves(self) -> Optional[int]:
        """Count leaf assignments combinatorially (counting mode only).

        Leaves are grouped by label: candidates carry the leaf's label, so
        leaves of *different* labels can never collide and their group
        counts multiply.  Within a label group injective assignments are
        counted by a small DFS capped at the remaining limit (group sizes
        are tiny in practice — they are degree-one query vertices sharing
        a label).

        Returns ``None`` if at least one assignment exists (embeddings were
        reported in bulk), else a failing-set mask for the first failing
        group: the group's leaves' ancestors plus the ancestors of every
        query vertex occupying one of the group's candidates — pinning the
        occupiers makes the same unavailability hold for any extension of
        ``M[F]``.
        """
        query = self.cs.query
        remaining = self.limit - self.stats.embeddings_found
        obs = self.obs
        groups: dict[object, list[int]] = {}
        for u in self.deferred_leaves:
            groups.setdefault(query.label(u), []).append(u)

        total = 1
        for label_leaves in groups.values():
            available: list[tuple[int, list[int]]] = []
            conflict_mask = 0
            for u in label_leaves:
                candidates_u = self.cs.candidates[u]
                usable: list[int] = []
                for i in self._leaf_candidate_indices(u):
                    v = candidates_u[i]
                    if obs is not None:
                        obs.candidates_examined += 1
                    if self.injective:
                        occupier = self.visited_by.get(v)
                        if occupier is not None:
                            conflict_mask |= self.anc[occupier]
                            if obs is not None:
                                obs.prune_conflict += 1
                                obs.vertex_conflict[u] += 1
                            continue
                    usable.append(v)
                available.append((u, usable))
            group_count = _count_injective(
                [usable for _, usable in available], cap=remaining, injective=self.injective
            )
            if group_count == 0:
                if obs is not None:
                    obs.prune_empty += 1
                    # The group failed as a unit; attribute the emptyset
                    # to its first leaf so per-vertex sums stay exact.
                    obs.vertex_empty[label_leaves[0]] += 1
                failing = conflict_mask
                for u, _ in available:
                    failing |= self.anc[u]
                return failing
            total = min(total * group_count, remaining)
        self._report_bulk(total)
        return None


def _count_injective(candidate_lists: list[list[int]], cap: int, injective: bool) -> int:
    """Number of (injective) assignments choosing one value per list.

    Capped at ``cap`` — callers only need ``min(true count, cap)``.  With
    ``injective=False`` this is a plain product.
    """
    if cap <= 0:
        cap = 1
    if not injective:
        total = 1
        for lst in candidate_lists:
            total *= len(lst)
            if total >= cap:
                return cap
        return total
    if len(candidate_lists) == 1:
        return min(len(candidate_lists[0]), cap)
    # Small-group DFS, most-constrained list first for fast failure.
    order = sorted(range(len(candidate_lists)), key=lambda k: len(candidate_lists[k]))
    lists = [candidate_lists[k] for k in order]
    used: set[int] = set()
    count = 0

    def dfs(pos: int) -> bool:
        """Returns True when the cap is reached (stop everything)."""
        nonlocal count
        if pos == len(lists):
            count += 1
            return count >= cap
        for v in lists[pos]:
            if v in used:
                continue
            used.add(v)
            stop = dfs(pos + 1)
            used.discard(v)
            if stop:
                return True
        return False

    dfs(0)
    return count
