"""The DAF backtracking engine (paper §5 and §6).

The engine finds embeddings of the query *in the CS structure* (never
touching the data graph — Theorem 4.1 makes that sufficient).  Its three
pillars:

**DAG ordering** (§5.1).  The next vertex to map is always *extendable* —
all its parents in the query DAG are mapped — so every query edge is
checked as early as the DAG allows.  The extendable candidates of ``u``
are ``C_M(u) = intersection over parents p of N^p_u(M(p))``, computed once
when ``u`` becomes extendable (its parents cannot change until we backtrack
past them).

**Adaptive matching order** (§5.2).  Among extendable vertices the engine
picks the one minimizing the configured weight — ``|C_M(u)|``
(candidate-size) or ``w_M(u)`` from the precomputed weight array
(path-size).

**Failing sets** (§6).  With pruning enabled, each search-tree node
computes a failing set — an ancestor-closed set ``F`` of query vertices
such that no (CS-)embedding of ``q[F]`` extends ``M[F]`` — represented as
an int bitmask.  ``None`` encodes "an embedding was found in this subtree"
(the paper's F = emptyset, Case 1).  The three leaf classes:

- *conflict*: extendable candidate already visited by query vertex ``u'``
  → contributes ``anc(u) | anc(u')``;
- *emptyset*: ``C_M(u)`` has no usable candidate → ``anc(u)``;
- *embedding*: a full embedding → ``None``.

Internal nodes take the union of their children's failing sets (Case 2.2)
unless some child's failing set excludes the child's query vertex — then
by Lemma 6.1 all remaining sibling candidates are redundant and the loop
is cut short (Case 2.1).

**Leaf decomposition** (§3).  Degree-one query vertices are deferred and
matched last by a specialized matcher that exploits their independence:
leaves with different labels can never conflict, so in counting mode whole
groups multiply combinatorially instead of being enumerated.

**Suspend / resume.**  The search runs on an explicit frame stack rather
than Python recursion, so the full frontier — per-depth candidate
cursors, failing-set accumulators, the partial embedding — is ordinary
engine state.  At every *safe phase* (a node entry, a leaf-level entry,
or an embedding report — exactly the points where ``deadline.tick()``,
fault injection, and the cooperative SIGINT flag are polled) the engine
can be captured into a :class:`repro.resilience.checkpoint.SearchCheckpoint`
and later replayed onto a freshly prepared engine, continuing the search
with **bit-identical** embeddings, order, and deterministic counters
versus an uninterrupted run.  Subclasses that override ``_extend_fs`` /
``_extend_plain`` with their own recursion (e.g. the boost extension's
capacity engine) are detected at :meth:`BacktrackEngine.run` and simply
opt out of checkpointing — their semantics are untouched.
"""

from __future__ import annotations

import signal
from typing import Callable, Optional

from ..interfaces import Deadline, Embedding, SearchStats, TimeoutSignal
from ..resilience.budget import embedding_bytes
from ..resilience.checkpoint import (
    CheckpointMismatchError,
    SearchCheckpoint,
    resume_payload,
)
from ..resilience.faults import FAULTS
from .candidate_space import CandidateSpace
from .config import MatchConfig
from .ordering import make_order


class _LimitReached(Exception):
    """Internal signal: the embedding limit was hit; unwind the search."""


# Frame kinds: a core (DAG-ordered) vertex vs a deferred degree-one leaf.
_KIND_CORE = 0
_KIND_LEAF = 1

# Drive states.  The first three are *safe phases*: the engine state is
# consistent and a checkpoint captured there resumes exactly.  _UNSAFE
# marks everything else (mid-advance, mid-return); _ADVANCE/_RETURN are
# driver-internal and never observed across a suspension.
_UNSAFE = 0
_ENTER_CORE = 1
_ENTER_LEAF = 2
_REPORT = 3
_ADVANCE = 4
_RETURN = 5

_PHASE_NAMES = {_ENTER_CORE: "enter_core", _ENTER_LEAF: "enter_leaf", _REPORT: "report"}
_PHASE_CODES = {name: code for code, name in _PHASE_NAMES.items()}

# Explicit frame layout (a plain list for speed):
#   [kind, u, seq, pos, fs_union, found, v]
# where ``seq`` is the candidate *index* sequence (cmu for core frames,
# the parent's CS adjacency for leaf frames), ``pos`` is the cursor one
# past the active candidate (so seq[pos-1] is the index currently
# mapped), ``fs_union`` accumulates sibling failing sets (Case 2.2),
# ``found`` records whether any child subtree found an embedding, and
# ``v`` is the mapped data vertex (-1 while no candidate is active).
_F_KIND = 0
_F_U = 1
_F_SEQ = 2
_F_POS = 3
_F_FS = 4
_F_FOUND = 5
_F_V = 6


class BacktrackEngine:
    """One search over a prepared candidate space.

    An engine instance is single-use: construct, :meth:`run`, read results.
    ``root_candidate_indices`` restricts the root's candidates, which is
    how parallel DAF partitions the search across workers (Appendix A.4).

    ``observer`` is an optional :class:`repro.obs.MetricsRegistry`.  The
    zero-overhead contract: when it is ``None`` (the default) the hot
    loop performs no observability work beyond ``is not None`` checks on
    locals — there is no no-op registry object, and search results are
    bit-identical with metrics on and off.

    ``checkpoint_every`` / ``on_checkpoint`` enable periodic snapshots:
    every that-many recursive calls, ``on_checkpoint`` receives a fresh
    :class:`SearchCheckpoint` (parallel workers piggy-back these on the
    progress pipe so a supervisor can resume a crashed slice).
    """

    def __init__(
        self,
        cs: CandidateSpace,
        config: MatchConfig,
        limit: int,
        deadline: Deadline,
        stats: SearchStats,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
        root_candidate_indices: Optional[list[int]] = None,
        tracer=None,
        observer=None,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[[SearchCheckpoint], None]] = None,
    ) -> None:
        self.cs = cs
        self.config = config
        self.limit = limit
        self.deadline = deadline
        self.stats = stats
        self.on_embedding = on_embedding
        self.tracer = tracer
        self.obs = observer
        self.progress = observer.progress if observer is not None else None
        if observer is not None:
            observer.ensure_vertices(cs.dag.num_vertices)
        self.embeddings: list[Embedding] = []
        self.limit_reached = False
        self.checkpoint_every = checkpoint_every
        self.on_checkpoint = on_checkpoint

        dag = cs.dag
        n = dag.num_vertices
        self.n = n
        self.dag = dag
        self.anc = tuple(dag.ancestor_mask(u) for u in range(n))
        self.parents = tuple(dag.parents(u) for u in range(n))
        self.children = tuple(dag.children(u) for u in range(n))
        self.order = make_order(config.order, cs)
        self.injective = config.injective
        self.collect = config.collect_embeddings
        # Budget governors expose charge_memory (plain Deadline does not);
        # collected embeddings are the search's dominant allocation.
        self._charge_memory = getattr(deadline, "charge_memory", None)
        self._embedding_cost = embedding_bytes(n)

        query = cs.query
        self.induced = config.induced
        if self.induced:
            # Non-neighbors per query vertex: an induced embedding must
            # map these to data non-neighbors, checked at mapping time.
            self.non_neighbors = tuple(
                tuple(
                    w
                    for w in range(n)
                    if w != u and not query.has_edge(u, w)
                )
                for u in range(n)
            )
        # Leaf combinatorics assume only edge constraints, which induced
        # matching violates; fall back to the plain engine order.
        if config.leaf_decomposition and n > 2 and not self.induced:
            self.deferred = tuple(
                query.degree(u) == 1 and u != dag.root for u in range(n)
            )
        else:
            self.deferred = tuple(False for _ in range(n))
        self.deferred_leaves = tuple(u for u in range(n) if self.deferred[u])
        self.num_core = n - len(self.deferred_leaves)

        # Mutable search state.
        self.mapping = [-1] * n
        self.midx = [-1] * n
        self.visited_by: dict[int, int] = {}
        self.pending = [len(self.parents[u]) for u in range(n)]
        self.extendable: set[int] = set()
        self.cmu: list[Optional[list[int]]] = [None] * n
        self.wmu = [0] * n
        self.mapped_core = 0

        # Suspend/resume state.
        self.frames: list[list] = []
        self._state = _ENTER_CORE
        self._report_step = 0
        self._suspended = False
        self._interrupted = False
        self._iterative = False
        self._root_indices = (
            None if root_candidate_indices is None else list(root_candidate_indices)
        )

        root = dag.root
        if root_candidate_indices is None:
            root_cmu = list(range(len(cs.candidates[root])))
        else:
            root_cmu = list(root_candidate_indices)
        self.cmu[root] = root_cmu
        self.wmu[root] = self.order.vertex_weight(root, root_cmu)
        self.extendable.add(root)

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Execute the search; raises :class:`TimeoutSignal` on deadline."""
        if any(not c for c in self.cs.candidates):
            return  # empty CS: negative query, nothing to search (A.3)
        # Subclasses that still override the extend paths with their own
        # recursion keep their exact semantics but cannot checkpoint.
        legacy = (
            type(self)._extend_fs is not BacktrackEngine._extend_fs
            or type(self)._extend_plain is not BacktrackEngine._extend_plain
        )
        self._iterative = not legacy
        prev_handler = None
        installed = False
        if not legacy:
            # Cooperative Ctrl-C: the first SIGINT sets a flag polled at
            # the next safe phase so the suspension is checkpointable; a
            # second SIGINT interrupts immediately (old behavior).
            try:
                prev_handler = signal.getsignal(signal.SIGINT)
                if prev_handler is not None:
                    signal.signal(signal.SIGINT, self._on_sigint)
                    installed = True
            except ValueError:
                installed = False  # not the main thread
        bound = False
        if FAULTS.active:
            # Let injected hangs see the live deadline so they can never
            # sleep past the remaining budget.
            FAULTS.bind_budget(self.deadline)
            bound = True
        try:
            try:
                if self.config.use_failing_sets:
                    self._extend_fs()
                else:
                    self._extend_plain()
            except _LimitReached:
                self._unwind()
                self.limit_reached = True
            except BaseException:
                self._suspended = True
                raise
            if self._interrupted:
                # The flag was raised too late to be polled; the search
                # finished, so surface the interrupt without a checkpoint.
                raise KeyboardInterrupt
        finally:
            if bound:
                FAULTS.unbind_budget(self.deadline)
            if installed:
                signal.signal(signal.SIGINT, prev_handler)

    def _on_sigint(self, signum, frame) -> None:
        if self._interrupted:
            raise KeyboardInterrupt
        self._interrupted = True

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def _select(self) -> int:
        """Extendable vertex with minimal weight; ties break on vertex id."""
        best_u = -1
        best_w = None
        for u in self.extendable:
            w = self.wmu[u]
            if best_w is None or w < best_w or (w == best_w and u < best_u):
                best_w = w
                best_u = u
        return best_u

    def _compute_cmu(self, u: int) -> list[int]:
        """C_M(u): intersect the parents' CS adjacency lists (Def. 5.2)."""
        down = self.cs.down
        midx = self.midx
        lists = [down[p][u][midx[p]] for p in self.parents[u]]
        if len(lists) == 1:
            return list(lists[0])
        lists.sort(key=len)
        result = set(lists[0])
        for other in lists[1:]:
            result.intersection_update(other)
            if not result:
                return []
        return sorted(result)

    def _map(self, u: int, i: int, v: int) -> None:
        self.mapping[u] = v
        self.midx[u] = i
        if self.injective:
            self.visited_by[v] = u
        self.extendable.discard(u)
        self.mapped_core += 1
        for c in self.children[u]:
            if self.deferred[c]:
                continue
            self.pending[c] -= 1
            if self.pending[c] == 0:
                cmu = self._compute_cmu(c)
                self.cmu[c] = cmu
                self.wmu[c] = self.order.vertex_weight(c, cmu)
                self.extendable.add(c)

    def _unmap(self, u: int, v: int) -> None:
        for c in self.children[u]:
            if self.deferred[c]:
                continue
            if self.pending[c] == 0:
                self.extendable.discard(c)
                self.cmu[c] = None
            self.pending[c] += 1
        self.mapped_core -= 1
        self.extendable.add(u)
        if self.injective:
            del self.visited_by[v]
        self.mapping[u] = -1
        self.midx[u] = -1

    def _induced_violation(self, u: int, v: int) -> int:
        """Induced-mode check: the first mapped non-neighbor of ``u``
        whose image is adjacent to ``v`` in the data graph, or -1.

        Query non-edges must map to data non-edges; a violation plays the
        same failing-set role as a visited conflict — it pins ``u`` and
        the offending vertex.
        """
        mapping = self.mapping
        data = self.cs.data
        for w in self.non_neighbors[u]:
            image = mapping[w]
            if image >= 0 and data.has_edge(v, image):
                return w
        return -1

    def _report(self) -> None:
        # Re-entrant across a suspension mid-report: ``_report_step``
        # records what already committed (1 = counted, 2 = counted +
        # collected) so a resumed run neither drops nor double-counts
        # this embedding.  The streaming callback is at-least-once when
        # it is itself the step that raised.
        if self._report_step == 0:
            if self.collect and self._charge_memory is not None:
                # Charge before counting so a breach leaves count == collected.
                self._charge_memory(self._embedding_cost)
            self.stats.embeddings_found += 1
            self._report_step = 1
        if self.collect or self.on_embedding is not None:
            embedding = tuple(self.mapping)
            if self.collect and self._report_step == 1:
                self.embeddings.append(embedding)
            self._report_step = 2
            if self.on_embedding is not None:
                self.on_embedding(embedding)
        self._report_step = 0
        if self.stats.embeddings_found >= self.limit:
            raise _LimitReached

    def _report_bulk(self, count: int) -> None:
        """Count ``count`` embeddings without materializing them (leaf
        combinatorics in counting mode)."""
        remaining = self.limit - self.stats.embeddings_found
        take = min(count, remaining)
        self.stats.embeddings_found += take
        if self.stats.embeddings_found >= self.limit:
            raise _LimitReached

    # ------------------------------------------------------------------
    # Suspend / resume
    # ------------------------------------------------------------------
    def can_checkpoint(self) -> bool:
        """True when the run was suspended at a resumable safe phase."""
        return (
            self._suspended
            and self._iterative
            and self._state in (_ENTER_CORE, _ENTER_LEAF, _REPORT)
        )

    def _fingerprint(self) -> dict:
        cfg = self.config
        return {
            "query_vertices": self.cs.query.num_vertices,
            "query_edges": self.cs.query.num_edges,
            "data_vertices": self.cs.data.num_vertices,
            "data_edges": self.cs.data.num_edges,
            "order": cfg.order,
            "use_failing_sets": cfg.use_failing_sets,
            "injective": cfg.injective,
            "induced": cfg.induced,
            "leaf_decomposition": cfg.leaf_decomposition,
            "collect": self.collect,
            "limit": self.limit,
            "root_candidates": self._root_indices,
        }

    def capture_checkpoint(self) -> SearchCheckpoint:
        """Snapshot the suspended frontier as a serializable checkpoint.

        Only valid at a safe phase — either mid-run from the periodic
        ``on_checkpoint`` hook (which fires exactly there) or after a
        suspension for which :meth:`can_checkpoint` is true.
        """
        if self._state not in _PHASE_NAMES:
            raise RuntimeError("engine is not at a resumable safe phase")
        frames = [
            [frame[_F_KIND], frame[_F_U], frame[_F_POS], frame[_F_FS], int(frame[_F_FOUND])]
            for frame in self.frames
        ]
        return SearchCheckpoint(
            fingerprint=self._fingerprint(),
            phase=_PHASE_NAMES[self._state],
            frames=frames,
            report_step=self._report_step,
            recursive_calls=self.stats.recursive_calls,
            embeddings_found=self.stats.embeddings_found,
            embeddings=list(self.embeddings) if self.collect else [],
        )

    def restore(self, checkpoint) -> None:
        """Replay ``checkpoint`` onto this freshly constructed engine.

        The checkpoint stores candidate *cursors*; the candidate
        sequences are recomputed here (they are deterministic functions
        of the prepared CS), each frame validated as it is replayed.  A
        subsequent :meth:`run` continues the search bit-identically.
        Accepts a :class:`SearchCheckpoint` or its ``to_dict()`` payload.
        """
        ckpt = resume_payload(checkpoint)
        if ckpt is None:
            return
        if self.frames or self.mapped_core or self.stats.recursive_calls:
            raise RuntimeError("restore() requires a freshly constructed engine")
        ckpt.check_fingerprint(self._fingerprint())
        for kind, u, pos, fs_union, found in ckpt.frames:
            depth = len(self.frames)
            if kind == _KIND_CORE:
                if self.mapped_core >= self.num_core or u not in self.extendable:
                    raise CheckpointMismatchError(
                        f"frame {depth}: vertex {u} is not extendable here"
                    )
                if self._select() != u:
                    raise CheckpointMismatchError(
                        f"frame {depth}: adaptive order selects "
                        f"{self._select()}, checkpoint says {u}"
                    )
                seq = self.cmu[u]
                if not 1 <= pos <= len(seq):
                    raise CheckpointMismatchError(
                        f"frame {depth}: cursor {pos} outside 1..{len(seq)}"
                    )
                i = seq[pos - 1]
                v = self.cs.candidates[u][i]
                if self.injective and v in self.visited_by:
                    raise CheckpointMismatchError(
                        f"frame {depth}: candidate {v} already occupied"
                    )
                self.frames.append([_KIND_CORE, u, seq, pos, fs_union, bool(found), v])
                self._map(u, i, v)
            else:
                lpos = depth - self.num_core
                if (
                    self.mapped_core != self.num_core
                    or not 0 <= lpos < len(self.deferred_leaves)
                    or self.deferred_leaves[lpos] != u
                ):
                    raise CheckpointMismatchError(
                        f"frame {depth}: vertex {u} is not the leaf at depth {depth}"
                    )
                idxs = self._leaf_candidate_indices(u)
                if not 1 <= pos <= len(idxs):
                    raise CheckpointMismatchError(
                        f"frame {depth}: cursor {pos} outside 1..{len(idxs)}"
                    )
                i = idxs[pos - 1]
                v = self.cs.candidates[u][i]
                if self.injective:
                    if v in self.visited_by:
                        raise CheckpointMismatchError(
                            f"frame {depth}: candidate {v} already occupied"
                        )
                    self.visited_by[v] = u
                self.frames.append([_KIND_LEAF, u, idxs, pos, fs_union, bool(found), v])
                self.mapping[u] = v
        self.stats.recursive_calls = ckpt.recursive_calls
        self.stats.embeddings_found = ckpt.embeddings_found
        if self.collect:
            self.embeddings = [tuple(e) for e in ckpt.embeddings]
        self._report_step = ckpt.report_step
        self._state = _PHASE_CODES[ckpt.phase]

    def _unwind(self) -> None:
        """Pop all frames after the limit is hit, restoring initial state
        (the recursive form did this via its finally clauses)."""
        frames = self.frames
        while frames:
            frame = frames.pop()
            u = frame[_F_U]
            v = frame[_F_V]
            if frame[_F_KIND] == _KIND_CORE:
                self._unmap(u, v)
            else:
                self.mapping[u] = -1
                if self.injective:
                    del self.visited_by[v]

    # ------------------------------------------------------------------
    # Search with failing sets (DAF variants)
    # ------------------------------------------------------------------
    def _extend_fs(self) -> None:
        """Explicit-stack search with failing-set pruning.

        Each search-tree node owns one frame; the drive loop's ``ret``
        carries the child's failing-set mask upward (None = an embedding
        was found in that subtree, Case 1).
        """
        stats = self.stats
        deadline = self.deadline
        frames = self.frames
        anc = self.anc
        candidates = self.cs.candidates
        visited_by = self.visited_by
        injective = self.injective
        induced = self.induced
        obs = self.obs
        tracer = self.tracer
        progress = self.progress
        every = self.checkpoint_every
        on_checkpoint = self.on_checkpoint
        num_leaves = len(self.deferred_leaves)
        ret: Optional[int] = 0
        state = self._state
        while True:
            if state == _ENTER_CORE:
                self._state = _ENTER_CORE
                if every and on_checkpoint is not None:
                    calls = stats.recursive_calls
                    if calls and calls % every == 0:
                        on_checkpoint(self.capture_checkpoint())
                if self._interrupted:
                    raise KeyboardInterrupt
                deadline.tick()
                if FAULTS.active:
                    FAULTS.fire("backtrack.step", calls=stats.recursive_calls + 1)
                self._state = _UNSAFE
                stats.recursive_calls += 1
                if progress is not None:
                    progress.tick(stats.recursive_calls, self.mapped_core)
                if self.mapped_core == self.num_core:
                    if not num_leaves:
                        state = _REPORT
                        continue
                    if self._can_count_combinatorially():
                        ret = self._count_leaves()
                        state = _RETURN
                        continue
                    state = _ENTER_LEAF
                    continue
                u = self._select()
                cmu = self.cmu[u]
                if not cmu:
                    if obs is not None:
                        obs.prune_empty += 1
                        obs.vertex_empty[u] += 1
                    if tracer is not None:
                        tracer.emptyset(u)
                    ret = anc[u]  # emptyset class
                    state = _RETURN
                    continue
                frames.append([_KIND_CORE, u, cmu, 0, 0, False, -1])
                state = _ADVANCE
            elif state == _ENTER_LEAF:
                self._state = _ENTER_LEAF
                lpos = len(frames) - self.num_core
                if lpos == num_leaves:
                    state = _REPORT
                    continue
                deadline.tick()
                self._state = _UNSAFE
                u = self.deferred_leaves[lpos]
                idxs = self._leaf_candidate_indices(u)
                if not idxs:
                    if obs is not None:
                        obs.prune_empty += 1
                        obs.vertex_empty[u] += 1
                    ret = anc[u]
                    state = _RETURN
                    continue
                frames.append([_KIND_LEAF, u, idxs, 0, 0, False, -1])
                state = _ADVANCE
            elif state == _REPORT:
                self._state = _REPORT
                self._report()
                self._state = _UNSAFE
                ret = None
                state = _RETURN
            elif state == _ADVANCE:
                frame = frames[-1]
                u = frame[_F_U]
                seq = frame[_F_SEQ]
                pos = frame[_F_POS]
                length = len(seq)
                candidates_u = candidates[u]
                advanced = False
                if frame[_F_KIND] == _KIND_CORE:
                    while pos < length:
                        i = seq[pos]
                        pos += 1
                        v = candidates_u[i]
                        if obs is not None:
                            obs.candidates_examined += 1
                        if injective:
                            occupier = visited_by.get(v)
                            if occupier is not None:
                                contribution = anc[u] | anc[occupier]  # conflict class
                                frame[_F_FS] |= contribution
                                if obs is not None:
                                    obs.prune_conflict += 1
                                    obs.vertex_conflict[u] += 1
                                if tracer is not None:
                                    tracer.conflict(u, v, contribution)
                                continue
                        if induced:
                            offender = self._induced_violation(u, v)
                            if offender >= 0:
                                contribution = anc[u] | anc[offender]
                                frame[_F_FS] |= contribution
                                if obs is not None:
                                    obs.prune_conflict += 1
                                    obs.vertex_conflict[u] += 1
                                if tracer is not None:
                                    tracer.conflict(u, v, contribution)
                                continue
                        if obs is not None:
                            obs.children_entered += 1
                            obs.vertex_entered[u] += 1
                        if tracer is not None:
                            tracer.enter(u, v)
                        frame[_F_POS] = pos
                        frame[_F_V] = v
                        self._map(u, i, v)
                        advanced = True
                        break
                    if advanced:
                        state = _ENTER_CORE
                    else:
                        frame[_F_POS] = pos
                        frames.pop()
                        ret = None if frame[_F_FOUND] else frame[_F_FS]
                        state = _RETURN
                else:
                    while pos < length:
                        i = seq[pos]
                        pos += 1
                        v = candidates_u[i]
                        if obs is not None:
                            obs.candidates_examined += 1
                        if injective:
                            occupier = visited_by.get(v)
                            if occupier is not None:
                                frame[_F_FS] |= anc[u] | anc[occupier]
                                if obs is not None:
                                    obs.prune_conflict += 1
                                    obs.vertex_conflict[u] += 1
                                continue
                            visited_by[v] = u
                        if obs is not None:
                            obs.children_entered += 1
                            obs.vertex_entered[u] += 1
                        frame[_F_POS] = pos
                        frame[_F_V] = v
                        self.mapping[u] = v
                        advanced = True
                        break
                    if advanced:
                        state = _ENTER_LEAF
                    else:
                        frame[_F_POS] = pos
                        frames.pop()
                        ret = None if frame[_F_FOUND] else frame[_F_FS]
                        state = _RETURN
            else:  # _RETURN: deliver ret to the parent frame
                if not frames:
                    break
                frame = frames[-1]
                u = frame[_F_U]
                v = frame[_F_V]
                if frame[_F_KIND] == _KIND_CORE:
                    self._unmap(u, v)
                    frame[_F_V] = -1
                    if tracer is not None:
                        tracer.leave(ret, ret is None)
                else:
                    self.mapping[u] = -1
                    if injective:
                        del visited_by[v]
                    frame[_F_V] = -1
                if ret is None:
                    frame[_F_FOUND] = True
                    state = _ADVANCE
                elif not (ret >> u) & 1:
                    # Case 2.1 + Lemma 6.1: remaining siblings are redundant.
                    seq = frame[_F_SEQ]
                    pos = frame[_F_POS]
                    if obs is not None:
                        obs.fs_cuts += 1
                        skipped = len(seq) - pos
                        obs.prune_failing_set += skipped
                        obs.vertex_fs_pruned[u] += skipped
                    if frame[_F_KIND] == _KIND_CORE and tracer is not None:
                        candidates_u = candidates[u]
                        for j in seq[pos:]:
                            tracer.pruned(u, candidates_u[j])
                    frames.pop()
                    ret = None if frame[_F_FOUND] else ret
                    state = _RETURN
                else:
                    frame[_F_FS] |= ret  # Case 2.2
                    state = _ADVANCE

    # ------------------------------------------------------------------
    # Search without failing sets (DA variants)
    # ------------------------------------------------------------------
    def _extend_plain(self) -> None:
        stats = self.stats
        deadline = self.deadline
        frames = self.frames
        candidates = self.cs.candidates
        visited_by = self.visited_by
        injective = self.injective
        induced = self.induced
        obs = self.obs
        tracer = self.tracer
        progress = self.progress
        every = self.checkpoint_every
        on_checkpoint = self.on_checkpoint
        num_leaves = len(self.deferred_leaves)
        state = self._state
        while True:
            if state == _ENTER_CORE:
                self._state = _ENTER_CORE
                if every and on_checkpoint is not None:
                    calls = stats.recursive_calls
                    if calls and calls % every == 0:
                        on_checkpoint(self.capture_checkpoint())
                if self._interrupted:
                    raise KeyboardInterrupt
                deadline.tick()
                if FAULTS.active:
                    FAULTS.fire("backtrack.step", calls=stats.recursive_calls + 1)
                self._state = _UNSAFE
                stats.recursive_calls += 1
                if progress is not None:
                    progress.tick(stats.recursive_calls, self.mapped_core)
                if self.mapped_core == self.num_core:
                    if not num_leaves:
                        state = _REPORT
                        continue
                    if self._can_count_combinatorially():
                        self._count_leaves()
                        state = _RETURN
                        continue
                    state = _ENTER_LEAF
                    continue
                u = self._select()
                cmu = self.cmu[u]
                if not cmu:
                    if obs is not None:
                        obs.prune_empty += 1
                        obs.vertex_empty[u] += 1
                    state = _RETURN
                    continue
                frames.append([_KIND_CORE, u, cmu, 0, 0, False, -1])
                state = _ADVANCE
            elif state == _ENTER_LEAF:
                self._state = _ENTER_LEAF
                lpos = len(frames) - self.num_core
                if lpos == num_leaves:
                    state = _REPORT
                    continue
                deadline.tick()
                self._state = _UNSAFE
                u = self.deferred_leaves[lpos]
                idxs = self._leaf_candidate_indices(u)
                if not idxs:
                    if obs is not None:
                        obs.prune_empty += 1
                        obs.vertex_empty[u] += 1
                    state = _RETURN
                    continue
                frames.append([_KIND_LEAF, u, idxs, 0, 0, False, -1])
                state = _ADVANCE
            elif state == _REPORT:
                self._state = _REPORT
                self._report()
                self._state = _UNSAFE
                state = _RETURN
            elif state == _ADVANCE:
                frame = frames[-1]
                u = frame[_F_U]
                seq = frame[_F_SEQ]
                pos = frame[_F_POS]
                length = len(seq)
                candidates_u = candidates[u]
                advanced = False
                if frame[_F_KIND] == _KIND_CORE:
                    while pos < length:
                        i = seq[pos]
                        pos += 1
                        v = candidates_u[i]
                        if obs is not None:
                            obs.candidates_examined += 1
                        if injective and v in visited_by:
                            if obs is not None:
                                obs.prune_conflict += 1
                                obs.vertex_conflict[u] += 1
                            continue
                        if induced and self._induced_violation(u, v) >= 0:
                            if obs is not None:
                                obs.prune_conflict += 1
                                obs.vertex_conflict[u] += 1
                            continue
                        if obs is not None:
                            obs.children_entered += 1
                            obs.vertex_entered[u] += 1
                        if tracer is not None:
                            tracer.enter(u, v)
                        frame[_F_POS] = pos
                        frame[_F_V] = v
                        self._map(u, i, v)
                        advanced = True
                        break
                    if advanced:
                        state = _ENTER_CORE
                    else:
                        frame[_F_POS] = pos
                        frames.pop()
                        state = _RETURN
                else:
                    while pos < length:
                        i = seq[pos]
                        pos += 1
                        v = candidates_u[i]
                        if obs is not None:
                            obs.candidates_examined += 1
                        if injective:
                            if v in visited_by:
                                if obs is not None:
                                    obs.prune_conflict += 1
                                    obs.vertex_conflict[u] += 1
                                continue
                            visited_by[v] = u
                        if obs is not None:
                            obs.children_entered += 1
                            obs.vertex_entered[u] += 1
                        frame[_F_POS] = pos
                        frame[_F_V] = v
                        self.mapping[u] = v
                        advanced = True
                        break
                    if advanced:
                        state = _ENTER_LEAF
                    else:
                        frame[_F_POS] = pos
                        frames.pop()
                        state = _RETURN
            else:  # _RETURN
                if not frames:
                    break
                frame = frames[-1]
                u = frame[_F_U]
                v = frame[_F_V]
                if frame[_F_KIND] == _KIND_CORE:
                    self._unmap(u, v)
                    frame[_F_V] = -1
                    if tracer is not None:
                        tracer.leave(None, False)
                else:
                    self.mapping[u] = -1
                    if injective:
                        del visited_by[v]
                    frame[_F_V] = -1
                state = _ADVANCE

    # ------------------------------------------------------------------
    # Leaf matching (§3: degree-one vertices matched last)
    # ------------------------------------------------------------------
    def _leaf_candidate_indices(self, u: int) -> tuple[int, ...]:
        """CS candidates of deferred leaf ``u`` given its mapped parent."""
        (p,) = self.parents[u]
        return self.cs.down[p][u][self.midx[p]]

    def _can_count_combinatorially(self) -> bool:
        return not self.collect and self.on_embedding is None

    # The recursive leaf matchers below are no longer used by the
    # explicit-stack drivers (which inline leaf handling so it can be
    # checkpointed); they are kept because extension engines that still
    # override _extend_fs/_extend_plain recursively call into them.
    def _match_leaves_fs(self) -> Optional[int]:
        leaves = self.deferred_leaves
        if not leaves:
            self._report()
            return None
        if self._can_count_combinatorially():
            return self._count_leaves()
        info = [(u, self._leaf_candidate_indices(u)) for u in leaves]
        return self._leaf_rec_fs(info, 0)

    def _leaf_rec_fs(self, info: list[tuple[int, tuple[int, ...]]], pos: int) -> Optional[int]:
        if pos == len(info):
            self._report()
            return None
        self.deadline.tick()
        u, idxs = info[pos]
        anc = self.anc
        obs = self.obs
        if not idxs:
            if obs is not None:
                obs.prune_empty += 1
                obs.vertex_empty[u] += 1
            return anc[u]
        candidates_u = self.cs.candidates[u]
        visited_by = self.visited_by
        fs_union = 0
        found_embedding = False
        for i in idxs:
            v = candidates_u[i]
            if obs is not None:
                obs.candidates_examined += 1
            if self.injective:
                occupier = visited_by.get(v)
                if occupier is not None:
                    fs_union |= anc[u] | anc[occupier]
                    if obs is not None:
                        obs.prune_conflict += 1
                        obs.vertex_conflict[u] += 1
                    continue
                visited_by[v] = u
            if obs is not None:
                obs.children_entered += 1
                obs.vertex_entered[u] += 1
            self.mapping[u] = v
            try:
                child_fs = self._leaf_rec_fs(info, pos + 1)
            finally:
                self.mapping[u] = -1
                if self.injective:
                    del visited_by[v]
            if child_fs is None:
                found_embedding = True
            elif not (child_fs >> u) & 1:
                if obs is not None:
                    obs.fs_cuts += 1
                    skipped = len(idxs) - idxs.index(i) - 1
                    obs.prune_failing_set += skipped
                    obs.vertex_fs_pruned[u] += skipped
                return None if found_embedding else child_fs
            else:
                fs_union |= child_fs
        return None if found_embedding else fs_union

    def _match_leaves_plain(self) -> None:
        leaves = self.deferred_leaves
        if not leaves:
            self._report()
            return
        if self._can_count_combinatorially():
            self._count_leaves()
            return
        info = [(u, self._leaf_candidate_indices(u)) for u in leaves]
        self._leaf_rec_plain(info, 0)

    def _leaf_rec_plain(self, info: list[tuple[int, tuple[int, ...]]], pos: int) -> None:
        if pos == len(info):
            self._report()
            return
        self.deadline.tick()
        u, idxs = info[pos]
        candidates_u = self.cs.candidates[u]
        visited_by = self.visited_by
        obs = self.obs
        if not idxs and obs is not None:
            obs.prune_empty += 1
            obs.vertex_empty[u] += 1
        for i in idxs:
            v = candidates_u[i]
            if obs is not None:
                obs.candidates_examined += 1
            if self.injective:
                if v in visited_by:
                    if obs is not None:
                        obs.prune_conflict += 1
                        obs.vertex_conflict[u] += 1
                    continue
                visited_by[v] = u
            if obs is not None:
                obs.children_entered += 1
                obs.vertex_entered[u] += 1
            self.mapping[u] = v
            try:
                self._leaf_rec_plain(info, pos + 1)
            finally:
                self.mapping[u] = -1
                if self.injective:
                    del visited_by[v]

    def _count_leaves(self) -> Optional[int]:
        """Count leaf assignments combinatorially (counting mode only).

        Leaves are grouped by label: candidates carry the leaf's label, so
        leaves of *different* labels can never collide and their group
        counts multiply.  Within a label group injective assignments are
        counted by a small DFS capped at the remaining limit (group sizes
        are tiny in practice — they are degree-one query vertices sharing
        a label).

        Returns ``None`` if at least one assignment exists (embeddings were
        reported in bulk), else a failing-set mask for the first failing
        group: the group's leaves' ancestors plus the ancestors of every
        query vertex occupying one of the group's candidates — pinning the
        occupiers makes the same unavailability hold for any extension of
        ``M[F]``.
        """
        query = self.cs.query
        remaining = self.limit - self.stats.embeddings_found
        obs = self.obs
        groups: dict[object, list[int]] = {}
        for u in self.deferred_leaves:
            groups.setdefault(query.label(u), []).append(u)

        total = 1
        for label_leaves in groups.values():
            available: list[tuple[int, list[int]]] = []
            conflict_mask = 0
            for u in label_leaves:
                candidates_u = self.cs.candidates[u]
                usable: list[int] = []
                for i in self._leaf_candidate_indices(u):
                    v = candidates_u[i]
                    if obs is not None:
                        obs.candidates_examined += 1
                    if self.injective:
                        occupier = self.visited_by.get(v)
                        if occupier is not None:
                            conflict_mask |= self.anc[occupier]
                            if obs is not None:
                                obs.prune_conflict += 1
                                obs.vertex_conflict[u] += 1
                            continue
                    usable.append(v)
                available.append((u, usable))
            group_count = _count_injective(
                [usable for _, usable in available], cap=remaining, injective=self.injective
            )
            if group_count == 0:
                if obs is not None:
                    obs.prune_empty += 1
                    # The group failed as a unit; attribute the emptyset
                    # to its first leaf so per-vertex sums stay exact.
                    obs.vertex_empty[label_leaves[0]] += 1
                failing = conflict_mask
                for u, _ in available:
                    failing |= self.anc[u]
                return failing
            total = min(total * group_count, remaining)
        self._report_bulk(total)
        return None


def _count_injective(candidate_lists: list[list[int]], cap: int, injective: bool) -> int:
    """Number of (injective) assignments choosing one value per list.

    Capped at ``cap`` — callers only need ``min(true count, cap)``.  With
    ``injective=False`` this is a plain product.
    """
    if cap <= 0:
        cap = 1
    if not injective:
        total = 1
        for lst in candidate_lists:
            total *= len(lst)
            if total >= cap:
                return cap
        return total
    if len(candidate_lists) == 1:
        return min(len(candidate_lists[0]), cap)
    # Small-group DFS, most-constrained list first for fast failure.
    order = sorted(range(len(candidate_lists)), key=lambda k: len(candidate_lists[k]))
    lists = [candidate_lists[k] for k in order]
    used: set[int] = set()
    count = 0

    def dfs(pos: int) -> bool:
        """Returns True when the cap is reached (stop everything)."""
        nonlocal count
        if pos == len(lists):
            count += 1
            return count >= cap
        for v in lists[pos]:
            if v in used:
                continue
            used.add(v)
            stop = dfs(pos + 1)
            used.discard(v)
            if stop:
                return True
        return False

    dfs(0)
    return count
