"""The CS structure and DAG-graph dynamic programming (paper §4).

The candidate space (CS) is the auxiliary structure DAF searches *instead
of* the data graph.  It holds a candidate set ``C(u)`` per query vertex and
— unlike the tree-based CPI/CR structures of CFL-Match and Turbo_iso — an
edge between ``v in C(u)`` and ``v' in C(u')`` for **every** query edge
``(u, u')`` present in the data graph.  That completeness gives the CS the
equivalence property (Theorem 4.1): embeddings of q in G are exactly the
embeddings of q in the CS, so backtracking never probes G.

Construction (``build_candidate_space``):

1. ``C(u) <- C_ini(u)`` (label + degree; sound by construction).
2. Refine by DAG-graph DP alternating between the reversed query DAG
   ``q_D^{-1}`` and ``q_D`` (the paper runs 3 steps by default; we also
   support running to a fixpoint).  The first step additionally applies
   the local MND/NLF filters.  One DP pass over direction ``q'`` keeps
   ``v in C(u)`` only if every child ``u_c`` of ``u`` in ``q'`` has some
   candidate adjacent to ``v`` — i.e. only if a weak embedding of the
   sub-DAG ``q'_u`` exists at ``v`` (Recurrence (1)).
3. Materialize CS edges as per-DAG-edge adjacency lists
   ``N^u_{u_c}(v)`` storing candidate *indices*, which is what the
   backtracking engine intersects to compute extendable candidates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from ..graph.digraph import ReversedDAG, RootedDAG
from ..graph.graph import Graph
from ..resilience.budget import CANDIDATE_BYTES, CS_EDGE_BYTES, Budget
from ..resilience.faults import FAULTS
from .filters import initial_candidates, passes_local_filters_hoisted

AnyDAG = Union[RootedDAG, ReversedDAG]


@dataclass
class CandidateSpace:
    """The materialized CS structure on ``query`` and ``data``.

    Attributes
    ----------
    candidates:
        ``candidates[u]`` is the sorted list of data vertices in ``C(u)``.
    candidate_index:
        ``candidate_index[u][v]`` is the position of data vertex ``v`` in
        ``candidates[u]``.
    down:
        CS edges along the rooted DAG: for each DAG edge ``(u, u_c)``,
        ``down[u][u_c][i]`` is the tuple of positions (into
        ``candidates[u_c]``) of candidates adjacent in ``G`` to the i-th
        candidate of ``u``.  This is the paper's ``N^u_{u_c}(v)`` with
        vertices replaced by indices.
    refinement_steps:
        DP passes actually performed (for stats / Fig. 9-style analysis).
    trail:
        Optional refinement trail recorded when ``keep_trail=True``:
        ``trail[0]`` is a per-query-vertex snapshot of the candidate sets
        after C_ini (and before any DP pass), ``trail[k]`` the snapshot
        after pass ``k``.  The incremental maintenance layer
        (:mod:`repro.core.cs_delta`) replays this trail against a mutated
        data graph to refresh only delta-affected candidates while
        staying bit-identical to a cold rebuild.
    """

    query: Graph
    data: Graph
    dag: RootedDAG
    candidates: list[list[int]]
    candidate_index: list[dict[int, int]]
    down: list[dict[int, list[tuple[int, ...]]]]
    refinement_steps: int
    trail: Optional[list[list[set[int]]]] = None

    @property
    def size(self) -> int:
        """Sum of candidate-set sizes — the Fig. 9 auxiliary-size metric."""
        return sum(len(c) for c in self.candidates)

    @property
    def num_edges(self) -> int:
        """Total CS edges (each stored once, along the DAG direction)."""
        return sum(
            len(neighbors)
            for per_child in self.down
            for adjacency in per_child.values()
            for neighbors in adjacency
        )

    def is_empty(self) -> bool:
        """True iff some candidate set is empty — the query is negative and
        backtracking can be skipped entirely (Appendix A.3)."""
        return any(not c for c in self.candidates)

    def neighbors_down(self, u: int, u_c: int, v: int) -> tuple[int, ...]:
        """``N^u_{u_c}(v)`` as data vertices (paper's notation), for tests
        and examples; the engine uses index-based ``down`` directly."""
        i = self.candidate_index[u][v]
        return tuple(self.candidates[u_c][j] for j in self.down[u][u_c][i])


def _candidate_sets_initial(
    query: Graph, data: Graph, observer=None
) -> list[set[int]]:
    sets = [set(initial_candidates(query, data, u)) for u in query.vertices()]
    if observer is not None:
        # C_ini rejections: data vertices with the right label that the
        # degree condition (or label itself, for unlabeled data) removed.
        considered = sum(
            len(data.vertices_with_label(query.label(u))) for u in query.vertices()
        )
        observer.prune_label_degree += considered - sum(len(s) for s in sets)
    return sets


def _refine_pass(
    query: Graph,
    data: Graph,
    direction: AnyDAG,
    cand: list[set[int]],
    apply_local_filters: bool = False,
    observer=None,
) -> bool:
    """One DAG-graph DP pass in place; returns True if anything changed.

    Processes query vertices in reverse topological order of ``direction``
    so every child's refined set C'(u_c) is final before u is visited
    (the bottom-up evaluation of Recurrence (1)).

    With an ``observer``, rejections are attributed per reason: local
    MND/NLF failures count as ``prune_label_degree``; DP failures (no
    CS edge to some child's candidate set — Recurrence (1)) count as
    ``prune_cs_edge``.
    """
    changed = False
    order = tuple(reversed(direction.topological_order()))
    for u in order:
        children = direction.children(u)
        if not children and not apply_local_filters:
            continue
        if apply_local_filters:
            # Hoist the query-side MND/NLF signatures out of the per-
            # candidate loop; the data side hits the GraphIndex when the
            # serving layer has built one.
            query_mnd = query.max_neighbor_degree(u)
            query_nlf = query.neighbor_label_counts(u)
        survivors: set[int] = set()
        for v in cand[u]:
            if apply_local_filters and not passes_local_filters_hoisted(
                data, v, query_mnd, query_nlf
            ):
                if observer is not None:
                    observer.prune_label_degree += 1
                continue
            ok = True
            v_neighbors = data.neighbor_set(v)
            for u_c in children:
                child_cand = cand[u_c]
                # Iterate the smaller side of the adjacency/candidate pair.
                if len(child_cand) <= len(v_neighbors):
                    if child_cand.isdisjoint(v_neighbors):
                        ok = False
                        break
                else:
                    if not any(w in child_cand for w in v_neighbors):
                        ok = False
                        break
            if ok:
                survivors.add(v)
            elif observer is not None:
                observer.prune_cs_edge += 1
        if len(survivors) != len(cand[u]):
            changed = True
            cand[u] = survivors
    return changed


def build_candidate_space(
    query: Graph,
    data: Graph,
    dag: RootedDAG,
    refinement_steps: int = 3,
    refine_to_fixpoint: bool = False,
    use_local_filters: bool = True,
    max_fixpoint_steps: int = 64,
    initial_sets: Optional[list[set[int]]] = None,
    budget: Optional[Budget] = None,
    observer=None,
    keep_trail: bool = False,
) -> CandidateSpace:
    """BuildCS(q, q_D, G): construct the optimized CS (paper §4).

    Parameters
    ----------
    refinement_steps:
        Number of alternating DP passes (paper default 3: q_D^{-1}, q_D,
        q_D^{-1}; the filtering rate beyond 3 was < 1% in their study).
    refine_to_fixpoint:
        If True, keep alternating until no candidate set changes
        (bounded by ``max_fixpoint_steps`` as a safety net).
    use_local_filters:
        Apply MND + NLF during the first pass, as the paper suggests.
    initial_sets:
        Override the C_ini computation (one set per query vertex).  Used
        when the data graph carries extra semantics the standard label +
        degree filter would get wrong — e.g. the capacity-weighted
        degrees of BoostIso hypergraphs.  The caller is responsible for
        soundness; local filters should usually be disabled alongside.
    budget:
        Optional :class:`repro.resilience.Budget`.  Construction polls
        the wall clock around every DP pass and holds the estimated CS
        footprint (candidate entries + materialized edges) against the
        memory dimension, raising :class:`BudgetExceeded` *before* an
        oversized structure is fully allocated.
    observer:
        Optional :class:`repro.obs.MetricsRegistry`.  Attributes every
        candidate rejection to a prune reason (``prune_label_degree``
        for C_ini/MND/NLF, ``prune_cs_edge`` for DP removals), times the
        refinement loop as the ``cs_refine`` span, and records the final
        per-vertex candidate histogram.
    keep_trail:
        Record per-pass candidate-set snapshots on the returned CS (the
        ``trail`` attribute) so the serving layer can refresh it
        incrementally after data-graph mutations.  Costs one extra set
        copy per pass; off by default.
    """
    if dag.query is not query:
        raise ValueError("the DAG must orient exactly this query graph")
    if initial_sets is not None:
        if len(initial_sets) != query.num_vertices:
            raise ValueError("initial_sets needs one candidate set per query vertex")
        cand = [set(s) for s in initial_sets]
    else:
        cand = _candidate_sets_initial(query, data, observer=observer)
    def _checkpoint(step: int) -> None:
        """Per-pass governance: fault hook + budget time/memory check."""
        if FAULTS.active:
            FAULTS.fire("cs.refine", step=step)
        if budget is not None:
            budget.note_memory(sum(len(c) for c in cand) * CANDIDATE_BYTES)
            budget.poll()

    trail: Optional[list[list[set[int]]]] = [] if keep_trail else None

    def _snapshot() -> None:
        if trail is not None:
            trail.append([set(c) for c in cand])

    directions: tuple[AnyDAG, AnyDAG] = (dag.reverse(), dag)
    steps_done = 0
    bound = False
    if budget is not None and FAULTS.active:
        # Injected hangs at cs.refine must not sleep past this budget.
        FAULTS.bind_budget(budget)
        bound = True
    try:
        _checkpoint(0)
        _snapshot()
        refine_start = time.perf_counter() if observer is not None else 0.0
        if refine_to_fixpoint:
            for step in range(max_fixpoint_steps):
                changed = _refine_pass(
                    query,
                    data,
                    directions[step % 2],
                    cand,
                    apply_local_filters=(step == 0),
                    observer=observer,
                )
                steps_done += 1
                _checkpoint(steps_done)
                _snapshot()
                if not changed and step > 0:
                    break
        else:
            for step in range(refinement_steps):
                _refine_pass(
                    query,
                    data,
                    directions[step % 2],
                    cand,
                    apply_local_filters=(step == 0 and use_local_filters),
                    observer=observer,
                )
                steps_done += 1
                _checkpoint(steps_done)
                _snapshot()
    finally:
        if bound:
            FAULTS.unbind_budget(budget)
    if observer is not None:
        observer.record_span("cs_refine", time.perf_counter() - refine_start)

    candidates = [sorted(c) for c in cand]
    candidate_index = [{v: i for i, v in enumerate(c)} for c in candidates]

    # Materialize CS edges along the rooted-DAG direction.  Edges are
    # "immediate from E(q) and E(G) once candidate sets are decided" (§4):
    # (v, v_c) is a CS edge iff (u, u_c) in E(q_D) and (v, v_c) in E(G).
    down: list[dict[int, list[tuple[int, ...]]]] = [{} for _ in query.vertices()]
    candidate_footprint = sum(len(c) for c in candidates) * CANDIDATE_BYTES
    edges_materialized = 0
    for u in query.vertices():
        for u_c in dag.children(u):
            child_index = candidate_index[u_c]
            adjacency: list[tuple[int, ...]] = []
            for v in candidates[u]:
                adjacency.append(
                    tuple(
                        child_index[w]
                        for w in data.neighbors(v)
                        if w in child_index
                    )
                )
                edges_materialized += len(adjacency[-1])
            down[u][u_c] = adjacency
        if budget is not None:
            # Catch a blowing-up CS per query vertex, before it finishes.
            budget.note_memory(
                candidate_footprint + edges_materialized * CS_EDGE_BYTES
            )
            budget.poll()

    if observer is not None:
        observer.observe_candidate_sizes(len(c) for c in candidates)

    return CandidateSpace(
        query=query,
        data=data,
        dag=dag,
        candidates=candidates,
        candidate_index=candidate_index,
        down=down,
        refinement_steps=steps_done,
        trail=trail,
    )


def has_weak_embedding(
    cs: CandidateSpace, direction: AnyDAG, u: int, v: int
) -> bool:
    """Reference check: is there a weak embedding of ``q'_u`` at ``v``?

    Direct recursive evaluation of Definition 4.5 over the *final* CS —
    quadratic and only for tests/documentation; the DP above is the real
    computation.
    """
    if v not in cs.candidate_index[u]:
        return False

    memo: dict[tuple[int, int], bool] = {}

    def weak(u_: int, v_: int) -> bool:
        key = (u_, v_)
        if key in memo:
            return memo[key]
        memo[key] = True  # break cycles defensively; DAGs have none
        result = True
        for u_c in direction.children(u_):
            child_set = set(cs.candidates[u_c])
            if not any(w in child_set and weak(u_c, w) for w in cs.data.neighbors(v_)):
                result = False
                break
        memo[key] = result
        return result

    return weak(u, v)
