"""Adaptive matching orders: candidate-size and path-size (paper §5.2).

Both orders pick, among the currently *extendable* query vertices, the one
whose estimated cost is minimal — re-evaluated at every partial embedding,
which is what makes them adaptive:

- **candidate-size order** minimizes ``|C_M(u)|``, the number of extendable
  candidates;
- **path-size order** minimizes ``w_M(u) = sum of W_u(v) over v in C_M(u)``
  where the *weight array* ``W_u(v)`` upper-bounds the number of
  embeddings of the most infrequent maximal tree-like path starting at
  ``u`` when ``u`` is mapped to ``v`` (the infrequent-path-first strategy
  transplanted to DAG ordering).

The weight array is computed here, bottom-up over the rooted DAG in time
proportional to the CS size:

- if ``u`` has no single-parent child, ``W_u(v) = 1``;
- otherwise ``W_u(v) = min over single-parent children c of
  sum of W_c(v') over v' in N^u_c(v)``.
"""

from __future__ import annotations

from .candidate_space import CandidateSpace


def compute_weight_array(cs: CandidateSpace) -> list[list[int]]:
    """The path-size weight array ``W[u][i]`` (i indexes ``C(u)``)."""
    dag = cs.dag
    n = cs.query.num_vertices
    weights: list[list[int]] = [[] for _ in range(n)]
    for u in reversed(dag.topological_order()):
        num_candidates = len(cs.candidates[u])
        tree_children = dag.single_parent_children(u)
        if not tree_children:
            weights[u] = [1] * num_candidates
            continue
        row = [0] * num_candidates
        for i in range(num_candidates):
            best = None
            for c in tree_children:
                child_weights = weights[c]
                total = sum(child_weights[j] for j in cs.down[u][c][i])
                if best is None or total < best:
                    best = total
            row[i] = best if best is not None else 1
        weights[u] = row
    return weights


def count_paths_from(cs: CandidateSpace, path: tuple[int, ...], v: int) -> int:
    """n(p, v): the number of CS paths corresponding to query path ``p``
    starting at data vertex ``v`` (paper §5.2).

    Reference implementation used by tests to validate the weight array:
    ``W_u(v) == min over maximal tree-like paths p of n(p, v)``.
    """
    u = path[0]
    if v not in cs.candidate_index[u]:
        return 0

    def count(position: int, index_in_candidates: int) -> int:
        if position == len(path) - 1:
            return 1
        u_here, u_next = path[position], path[position + 1]
        return sum(
            count(position + 1, j) for j in cs.down[u_here][u_next][index_in_candidates]
        )

    return count(0, cs.candidate_index[u][v])


class PathSizeOrder:
    """Selects the extendable vertex with minimal ``w_M(u)`` (§5.2)."""

    name = "path"

    def __init__(self, cs: CandidateSpace) -> None:
        self._weights = compute_weight_array(cs)

    def vertex_weight(self, u: int, extendable_candidate_indices: list[int]) -> int:
        """w_M(u) = sum of W_u(v) over v in C_M(u)."""
        row = self._weights[u]
        return sum(row[i] for i in extendable_candidate_indices)


class CandidateSizeOrder:
    """Selects the extendable vertex with minimal ``|C_M(u)|`` (§5.2)."""

    name = "candidate"

    def __init__(self, cs: CandidateSpace) -> None:
        pass

    def vertex_weight(self, u: int, extendable_candidate_indices: list[int]) -> int:
        return len(extendable_candidate_indices)


def make_order(kind: str, cs: CandidateSpace):
    """Factory for the two adaptive orders (``"path"`` / ``"candidate"``)."""
    if kind == "path":
        return PathSizeOrder(cs)
    if kind == "candidate":
        return CandidateSizeOrder(cs)
    raise ValueError(f"unknown matching order {kind!r}; expected 'path' or 'candidate'")
