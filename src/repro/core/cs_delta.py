"""Incremental candidate-space maintenance after data-graph deltas.

The serving layer caches one :class:`CandidateSpace` per (query, config)
pair.  When the data graph mutates, rebuilding every cached CS from
scratch costs a full BuildCS per entry; this module refreshes a CS by
*replaying* its recorded refinement trail (``CandidateSpace.trail``,
recorded by ``build_candidate_space(keep_trail=True)``) against the
mutated graph, re-evaluating only candidates the delta batch could have
affected.

The contract is strict **bit-identity**: the refreshed CS — candidate
lists, index maps, materialized ``down`` adjacency, and the
``refinement_steps`` count — equals what a cold
:func:`~repro.core.candidate_space.build_candidate_space` on the mutated
graph would produce with the same parameters.  That holds because each
replayed pass re-evaluates a superset of the candidates whose pass
outcome could differ, and copies the trail's recorded outcome for the
rest:

- a vertex in the footprint's ``dirty`` set (adjacency, degree, or label
  possibly changed) is always re-evaluated;
- in the first pass, vertices whose *local-filter signature* may have
  changed (``dirty`` plus its new-graph neighborhood) are re-evaluated;
- within a pass, children refine before parents (the same reverse
  topological order as the cold pass), so each parent re-evaluates the
  vertices adjacent to any child candidate that flipped this pass
  (``N_G'(S'_k(u_c) XOR S_k(u_c))``);
- any vertex newly present in the pass input is re-evaluated.

Every other vertex sees the same neighborhood and the same intersecting
child candidates as the recorded run, so copying its recorded membership
is exact.  Passes beyond the recorded trail (a fixpoint run that now
needs extra passes) fall back to the cold ``_refine_pass`` itself.

:func:`cs_diff` is the cross-validation half: a structural comparison
used by tests, the equivalence suite, and ``repro update
--cross-validate`` to assert the refreshed CS against a cold rebuild.
"""

from __future__ import annotations

import time
from typing import Optional

from ..graph.digraph import RootedDAG
from ..graph.graph import Graph
from ..resilience.budget import CANDIDATE_BYTES, CS_EDGE_BYTES, Budget
from .candidate_space import AnyDAG, CandidateSpace, _refine_pass
from .filters import passes_local_filters_hoisted


def dag_equivalent(a: RootedDAG, b: RootedDAG) -> bool:
    """Same orientation: equal roots and equal child lists everywhere.

    BuildDAG picks the root (and BFS tie-breaks) from *data-graph*
    statistics, so a delta batch can legitimately re-orient a query's
    DAG.  A trail replay is only meaningful against the same DAG; the
    serving layer uses this check to decide refresh-vs-invalidate.
    """
    if a.root != b.root or a.query.num_vertices != b.query.num_vertices:
        return False
    return all(a.children(u) == b.children(u) for u in a.query.vertices())


def _replay_pass(
    query: Graph,
    data: Graph,
    direction: AnyDAG,
    new_prev: list[set[int]],
    old_prev: list[set[int]],
    old_cur: list[set[int]],
    always_dirty: set[int],
    local_dirty: set[int],
    apply_local_filters: bool,
    observer=None,
) -> tuple[list[set[int]], bool]:
    """Replay one recorded DP pass against the mutated graph.

    ``new_prev`` is this pass's input on the new graph; ``old_prev`` /
    ``old_cur`` are the recorded input/output of the same pass on the old
    graph.  Returns the new output sets and the pass's ``changed`` flag
    (True iff some output set differs from its input, matching
    ``_refine_pass``'s fixpoint signal).
    """
    n = query.num_vertices
    new_cur: list[Optional[set[int]]] = [None] * n
    flipped: list[Optional[set[int]]] = [None] * n
    changed = False
    for u in reversed(direction.topological_order()):
        children = direction.children(u)
        if not children and not apply_local_filters:
            # The cold pass skips such vertices entirely: output = input.
            out = set(new_prev[u])
            new_cur[u] = out
            flipped[u] = out ^ old_cur[u]
            continue
        if apply_local_filters:
            query_mnd = query.max_neighbor_degree(u)
            query_nlf = query.neighbor_label_counts(u)
        child_dirty: set[int] = set()
        for u_c in children:
            for w in flipped[u_c]:
                child_dirty.update(data.neighbors(w))
        recorded_in = old_prev[u]
        recorded_out = old_cur[u]
        out = set()
        for v in new_prev[u]:
            if (
                v in recorded_in
                and v not in always_dirty
                and v not in child_dirty
                and not (apply_local_filters and v in local_dirty)
            ):
                # Same neighborhood, same local signature, and the same
                # child candidates intersecting it as the recorded pass:
                # copy the recorded outcome.
                if v in recorded_out:
                    out.add(v)
                continue
            if apply_local_filters and not passes_local_filters_hoisted(
                data, v, query_mnd, query_nlf
            ):
                if observer is not None:
                    observer.prune_label_degree += 1
                continue
            ok = True
            v_neighbors = data.neighbor_set(v)
            for u_c in children:
                child_cand = new_cur[u_c]
                if len(child_cand) <= len(v_neighbors):
                    if child_cand.isdisjoint(v_neighbors):
                        ok = False
                        break
                else:
                    if not any(w in child_cand for w in v_neighbors):
                        ok = False
                        break
            if ok:
                out.add(v)
            elif observer is not None:
                observer.prune_cs_edge += 1
        if out != new_prev[u]:
            changed = True
        new_cur[u] = out
        flipped[u] = out ^ recorded_out
    return new_cur, changed


def refresh_candidate_space(
    old: CandidateSpace,
    data: Graph,
    footprint,
    *,
    refinement_steps: int = 3,
    refine_to_fixpoint: bool = False,
    use_local_filters: bool = True,
    max_fixpoint_steps: int = 64,
    label_only_initial: bool = False,
    budget: Optional[Budget] = None,
    observer=None,
) -> CandidateSpace:
    """Refresh ``old`` (built on the pre-batch graph, with a trail)
    against the mutated graph ``data``.

    ``footprint`` is the batch's :class:`repro.graph.mutate.DeltaFootprint`.
    The refinement parameters must match the ones the old CS was built
    with (the serving layer derives both from the same
    :class:`~repro.core.config.MatchConfig`); ``label_only_initial``
    selects the homomorphism-mode label-only C_ini that
    ``DAFMatcher.prepare`` uses for non-injective configs.

    The caller has already established DAG stability (see
    :func:`dag_equivalent`); the old DAG is reused as-is, which is valid
    because a :class:`RootedDAG` references only the query graph.
    """
    if old.trail is None:
        raise ValueError("candidate space has no refinement trail (keep_trail=False)")
    query = old.query
    dag = old.dag
    always_dirty = set(footprint.dirty)
    local_dirty = footprint.local_dirty(data)

    start = time.perf_counter() if observer is not None else 0.0

    # Pass 0: replay C_ini.  Membership of a clean vertex is unchanged
    # (same label, same degree); dirty vertices are re-tested directly.
    old_init = old.trail[0]
    cur: list[set[int]] = []
    for u in query.vertices():
        sets = {v for v in old_init[u] if v not in always_dirty}
        query_label = query.label(u)
        if label_only_initial:
            for v in always_dirty:
                if data.label(v) == query_label:
                    sets.add(v)
        else:
            query_degree = query.degree(u)
            for v in always_dirty:
                if data.label(v) == query_label and data.degree(v) >= query_degree:
                    sets.add(v)
        cur.append(sets)
    trail: list[list[set[int]]] = [[set(s) for s in cur]]

    def _poll(step: int) -> None:
        if budget is not None:
            budget.note_memory(sum(len(c) for c in cur) * CANDIDATE_BYTES)
            budget.poll()

    _poll(0)
    directions: tuple[AnyDAG, AnyDAG] = (dag.reverse(), dag)
    old_trail = old.trail
    steps_done = 0

    def run_pass(step: int, apply_local: bool) -> bool:
        nonlocal cur
        direction = directions[step % 2]
        pass_index = step + 1
        if pass_index < len(old_trail):
            new_cur, changed = _replay_pass(
                query,
                data,
                direction,
                cur,
                old_trail[pass_index - 1],
                old_trail[pass_index],
                always_dirty,
                local_dirty,
                apply_local,
                observer=observer,
            )
            cur = new_cur
            return changed
        # The old run stopped earlier than this one needs: no recorded
        # outcome to replay against, so run the cold pass directly.
        changed = _refine_pass(
            query, data, direction, cur, apply_local_filters=apply_local, observer=observer
        )
        return changed

    if refine_to_fixpoint:
        for step in range(max_fixpoint_steps):
            changed = run_pass(step, apply_local=(step == 0))
            steps_done += 1
            _poll(steps_done)
            trail.append([set(s) for s in cur])
            if not changed and step > 0:
                break
    else:
        for step in range(refinement_steps):
            run_pass(step, apply_local=(step == 0 and use_local_filters))
            steps_done += 1
            _poll(steps_done)
            trail.append([set(s) for s in cur])
    if observer is not None:
        observer.record_span("cs_refine", time.perf_counter() - start)

    candidates = [sorted(c) for c in cur]
    candidate_index = [{v: i for i, v in enumerate(c)} for c in candidates]

    # Materialize `down`, reusing old adjacency rows where both the row's
    # source vertex kept its neighborhood (not dirty) and the child's
    # candidate *list* — hence its index mapping — is unchanged.
    down: list[dict[int, list[tuple[int, ...]]]] = [{} for _ in query.vertices()]
    candidate_footprint = sum(len(c) for c in candidates) * CANDIDATE_BYTES
    edges_materialized = 0
    for u in query.vertices():
        old_u_index = old.candidate_index[u]
        for u_c in dag.children(u):
            child_index = candidate_index[u_c]
            child_unchanged = candidates[u_c] == old.candidates[u_c]
            old_rows = old.down[u].get(u_c, ())
            adjacency: list[tuple[int, ...]] = []
            for v in candidates[u]:
                if child_unchanged and v not in always_dirty and v in old_u_index:
                    row = old_rows[old_u_index[v]]
                else:
                    row = tuple(
                        child_index[w] for w in data.neighbors(v) if w in child_index
                    )
                adjacency.append(row)
                edges_materialized += len(row)
            down[u][u_c] = adjacency
        if budget is not None:
            budget.note_memory(candidate_footprint + edges_materialized * CS_EDGE_BYTES)
            budget.poll()

    if observer is not None:
        observer.observe_candidate_sizes(len(c) for c in candidates)

    return CandidateSpace(
        query=query,
        data=data,
        dag=dag,
        candidates=candidates,
        candidate_index=candidate_index,
        down=down,
        refinement_steps=steps_done,
        trail=trail,
    )


def cs_diff(a: CandidateSpace, b: CandidateSpace) -> list[str]:
    """Structural differences between two candidate spaces, as messages.

    Empty list means bit-identical candidates, index maps, materialized
    adjacency, and refinement-step counts — the cross-validation check
    behind the incremental-maintenance equivalence guarantee.
    """
    problems: list[str] = []
    if a.query.num_vertices != b.query.num_vertices:
        return [
            f"query size differs: {a.query.num_vertices} vs {b.query.num_vertices}"
        ]
    if a.refinement_steps != b.refinement_steps:
        problems.append(
            f"refinement_steps differ: {a.refinement_steps} vs {b.refinement_steps}"
        )
    for u in a.query.vertices():
        if a.candidates[u] != b.candidates[u]:
            problems.append(
                f"C({u}) differs: {len(a.candidates[u])} candidates vs "
                f"{len(b.candidates[u])}"
            )
        if a.candidate_index[u] != b.candidate_index[u]:
            problems.append(f"candidate_index[{u}] differs")
        if a.down[u] != b.down[u]:
            problems.append(f"down[{u}] adjacency differs")
    return problems


def cs_equal(a: CandidateSpace, b: CandidateSpace) -> bool:
    """True iff :func:`cs_diff` finds nothing."""
    return not cs_diff(a, b)
