"""Local candidate filters (paper §3 and §4, "Optimizing CS").

The initial candidate set is the paper's C_ini (label + degree), and the
first refinement step may additionally apply the local features borrowed
from CFL-Match/Turbo_iso: maximum neighbor degree (MND) and neighborhood
label frequency (NLF).  All filters are *sound*: they never remove a data
vertex that participates in an embedding.
"""

from __future__ import annotations

from ..graph.graph import Graph


def initial_candidates(query: Graph, data: Graph, u: int) -> list[int]:
    """C_ini(u) = { v : L(v) = L(u) and deg(v) >= deg(u) } (paper §3)."""
    deg_u = query.degree(u)
    return [v for v in data.vertices_with_label(query.label(u)) if data.degree(v) >= deg_u]


def initial_candidate_count(query: Graph, data: Graph, u: int) -> int:
    """|C_ini(u)| without materializing the list (root selection, §3)."""
    deg_u = query.degree(u)
    return sum(1 for v in data.vertices_with_label(query.label(u)) if data.degree(v) >= deg_u)


def passes_max_neighbor_degree(query: Graph, data: Graph, u: int, v: int) -> bool:
    """MND filter: v's largest neighbor degree must cover u's.

    If u has a neighbor of degree d, every embedding must map that neighbor
    to a data vertex of degree >= d adjacent to v.
    """
    return data.max_neighbor_degree(v) >= query.max_neighbor_degree(u)


def passes_neighborhood_label_frequency(query: Graph, data: Graph, u: int, v: int) -> bool:
    """NLF filter: v's neighborhood must dominate u's label multiset.

    For every label l, v needs at least as many neighbors with label l as
    u has — otherwise some neighbor of u has nowhere to go.
    """
    data_counts = data.neighbor_label_counts(v)
    for label, needed in query.neighbor_label_counts(u).items():
        if data_counts.get(label, 0) < needed:
            return False
    return True


def passes_local_filters(query: Graph, data: Graph, u: int, v: int) -> bool:
    """MND and NLF combined (applied in the first refinement step, §4)."""
    return passes_max_neighbor_degree(query, data, u, v) and passes_neighborhood_label_frequency(
        query, data, u, v
    )
