"""Local candidate filters (paper §3 and §4, "Optimizing CS").

The initial candidate set is the paper's C_ini (label + degree), and the
first refinement step may additionally apply the local features borrowed
from CFL-Match/Turbo_iso: maximum neighbor degree (MND) and neighborhood
label frequency (NLF).  All filters are *sound*: they never remove a data
vertex that participates in an embedding.

Every data-side check has two implementations with identical results:
the per-call scan (always available) and a lookup against the graph's
:class:`repro.graph.GraphIndex` when one was built via
``data.ensure_index()`` (the ``repro.service`` session does this once per
data graph).  The fast path engages transparently through
``data.cached_index`` — callers never choose.
"""

from __future__ import annotations

from ..graph.graph import Graph, Label


def initial_candidates(query: Graph, data: Graph, u: int) -> list[int]:
    """C_ini(u) = { v : L(v) = L(u) and deg(v) >= deg(u) } (paper §3).

    Returned in ascending vertex-id order on both the scan and the
    indexed path.
    """
    deg_u = query.degree(u)
    index = data.cached_index
    if index is not None:
        return index.candidates_with_min_degree(query.label(u), deg_u)
    return [v for v in data.vertices_with_label(query.label(u)) if data.degree(v) >= deg_u]


def initial_candidate_count(query: Graph, data: Graph, u: int) -> int:
    """|C_ini(u)| without materializing the list (root selection, §3)."""
    deg_u = query.degree(u)
    index = data.cached_index
    if index is not None:
        return index.count_with_min_degree(query.label(u), deg_u)
    return sum(1 for v in data.vertices_with_label(query.label(u)) if data.degree(v) >= deg_u)


def passes_max_neighbor_degree(query: Graph, data: Graph, u: int, v: int) -> bool:
    """MND filter: v's largest neighbor degree must cover u's.

    If u has a neighbor of degree d, every embedding must map that neighbor
    to a data vertex of degree >= d adjacent to v.
    """
    index = data.cached_index
    data_mnd = index.max_neighbor_degree(v) if index is not None else data.max_neighbor_degree(v)
    return data_mnd >= query.max_neighbor_degree(u)


def passes_neighborhood_label_frequency(query: Graph, data: Graph, u: int, v: int) -> bool:
    """NLF filter: v's neighborhood must dominate u's label multiset.

    For every label l, v needs at least as many neighbors with label l as
    u has — otherwise some neighbor of u has nowhere to go.
    """
    index = data.cached_index
    data_counts = (
        index.neighbor_label_counts(v) if index is not None else data.neighbor_label_counts(v)
    )
    for label, needed in query.neighbor_label_counts(u).items():
        if data_counts.get(label, 0) < needed:
            return False
    return True


def passes_local_filters(query: Graph, data: Graph, u: int, v: int) -> bool:
    """MND and NLF combined (applied in the first refinement step, §4)."""
    return passes_max_neighbor_degree(query, data, u, v) and passes_neighborhood_label_frequency(
        query, data, u, v
    )


def passes_local_filters_hoisted(
    data: Graph,
    v: int,
    query_mnd: int,
    query_nlf: dict[Label, int],
) -> bool:
    """MND + NLF against precomputed *query-side* signatures.

    The refinement pass evaluates the local filters for every candidate
    ``v`` of one query vertex ``u``; recomputing u's max-neighbor degree
    and label multiset per (u, v) pair is pure waste.  Callers hoist the
    query side once per u and pass it here; the data side still uses the
    index when present.  Result is identical to
    :func:`passes_local_filters`.
    """
    index = data.cached_index
    if index is not None:
        if index.max_neighbor_degree(v) < query_mnd:
            return False
        data_counts = index.neighbor_label_counts(v)
    else:
        if data.max_neighbor_degree(v) < query_mnd:
            return False
        data_counts = data.neighbor_label_counts(v)
    for label, needed in query_nlf.items():
        if data_counts.get(label, 0) < needed:
            return False
    return True
