"""BuildDAG: orient the query graph into a rooted DAG (paper §3).

Root selection and edge orientation both use *data-graph* statistics:

- the root is ``argmin_u |C_ini(u)| / deg(u)`` — few candidates and high
  degree make the first query vertex maximally selective;
- the query is traversed in BFS order from the root and every edge is
  directed from earlier to later vertices.  Within a BFS level, vertices
  are grouped by label (rarer labels in the data graph first) and, within
  a label group, sorted by descending query degree — so selective vertices
  come earlier in every topological order of the DAG.
"""

from __future__ import annotations

from collections import deque

from ..graph.digraph import RootedDAG
from ..graph.graph import Graph
from .filters import initial_candidate_count


def select_root(query: Graph, data: Graph) -> int:
    """The paper's root rule: argmin_u |C_ini(u)| / deg_q(u).

    Degree-0 queries (a single isolated vertex) fall back to candidate
    count alone.  Ties break on the smaller vertex id for determinism.
    """
    best_vertex = 0
    best_score = float("inf")
    for u in query.vertices():
        count = initial_candidate_count(query, data, u)
        degree = query.degree(u)
        score = count / degree if degree > 0 else float(count)
        if score < best_score:
            best_score = score
            best_vertex = u
    return best_vertex


def bfs_vertex_order(query: Graph, data: Graph, root: int) -> list[int]:
    """The BuildDAG traversal order: BFS levels, each level sorted by
    (data label frequency asc, query degree desc, vertex id)."""

    def level_key(u: int) -> tuple[int, int, int]:
        return (data.label_frequency(query.label(u)), -query.degree(u), u)

    order: list[int] = []
    seen = {root}
    frontier = [root]
    while frontier:
        frontier.sort(key=level_key)
        order.extend(frontier)
        next_frontier: list[int] = []
        for u in frontier:
            for w in query.neighbors(u):
                if w not in seen:
                    seen.add(w)
                    next_frontier.append(w)
        frontier = next_frontier
    if len(order) != query.num_vertices:
        raise ValueError("query graph must be connected to build a query DAG")
    return order


def build_dag(query: Graph, data: Graph, root: int | None = None) -> RootedDAG:
    """BuildDAG(q, G): a rooted DAG containing *every* edge of ``query``.

    Each query edge is directed from the endpoint that appears earlier in
    the BFS vertex order (upper level, or earlier within the same level)
    to the later one — so the result is acyclic with the chosen root as
    its unique source.
    """
    if root is None:
        root = select_root(query, data)
    order = bfs_vertex_order(query, data, root)
    rank = {u: i for i, u in enumerate(order)}
    edges = []
    for u, w in query.edges():
        if rank[u] < rank[w]:
            edges.append((u, w))
        else:
            edges.append((w, u))
    return RootedDAG(query, edges, root)


def bfs_levels_of_order(query: Graph, root: int) -> dict[int, int]:
    """BFS depth of each vertex from ``root`` (exposed for tests)."""
    depth = {root: 0}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in query.neighbors(u):
            if w not in depth:
                depth[w] = depth[u] + 1
                queue.append(w)
    return depth
