"""Deprecated location: the EXPLAIN subsystem moved to ``repro.obs.explain``.

The static :class:`QueryPlan` / :func:`explain` pair grew an EXPLAIN
ANALYZE layer (instrumented runs, report diffing, schema'd JSON output)
that belongs with the observability stack, so the whole module lives at
:mod:`repro.obs.explain` now.  ``from repro.core import explain`` keeps
working without a warning (the package re-exports lazily); importing
*this module* directly is what's deprecated.
"""

from __future__ import annotations

import warnings

from ..obs.explain import QueryPlan, explain

warnings.warn(
    "repro.core.explain moved to repro.obs.explain; import QueryPlan/explain "
    "from repro.obs.explain (or from repro.core, which re-exports them)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["QueryPlan", "explain"]
