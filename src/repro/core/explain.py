"""Query-plan diagnostics: explain what DAF will do before searching.

``explain(query, data)`` runs the preprocessing pipeline (BuildDAG +
BuildCS) and reports the decisions the paper's heuristics made — the
chosen root and why, the DAG orientation, candidate-set sizes per
refinement step, and the weight array summary driving the path-size
order.  Useful for debugging slow queries and for teaching the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.graph import Graph
from .candidate_space import build_candidate_space
from .config import MatchConfig
from .dag import build_dag, select_root
from .filters import initial_candidate_count
from .ordering import compute_weight_array


@dataclass
class QueryPlan:
    """A human-readable account of DAF's preprocessing decisions."""

    root: int
    root_scores: dict[int, float]
    dag_edges: list[tuple[int, int]]
    topological_order: tuple[int, ...]
    candidate_sizes_initial: dict[int, int]
    candidate_sizes_per_step: list[dict[int, int]]
    cs_size: int
    cs_edges: int
    is_negative: bool
    weight_summary: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def filtering_rate(self) -> float:
        """Fraction of initial candidates removed by DAG-graph DP."""
        initial = sum(self.candidate_sizes_initial.values())
        if initial == 0:
            return 0.0
        return 1.0 - self.cs_size / initial

    def render(self) -> str:
        """Multi-line text report."""
        lines = [
            f"root: u{self.root} "
            f"(score |C_ini|/deg = {self.root_scores[self.root]:.3f}, the minimum)",
            f"DAG edges ({len(self.dag_edges)}): "
            + ", ".join(f"u{p}->u{c}" for p, c in self.dag_edges),
            f"matching follows topological orders of: {self.topological_order}",
            "candidate sets:",
        ]
        for u in sorted(self.candidate_sizes_initial):
            trail = " -> ".join(
                str(step[u]) for step in self.candidate_sizes_per_step
            )
            lines.append(
                f"  C(u{u}): {self.candidate_sizes_initial[u]} initial -> {trail}"
            )
        lines.append(
            f"CS: {self.cs_size} candidates, {self.cs_edges} edges "
            f"({100 * self.filtering_rate:.1f}% filtered)"
        )
        if self.is_negative:
            lines.append("NEGATIVE: some candidate set is empty; no search needed")
        elif self.weight_summary:
            lines.append("path-size weights (min, max) per vertex:")
            for u, (low, high) in sorted(self.weight_summary.items()):
                lines.append(f"  W(u{u}): {low}..{high}")
        return "\n".join(lines)


def explain(query: Graph, data: Graph, config: MatchConfig | None = None) -> QueryPlan:
    """Build the preprocessing structures and report every decision."""
    cfg = config if config is not None else MatchConfig()
    root_scores = {}
    for u in query.vertices():
        degree = query.degree(u)
        count = initial_candidate_count(query, data, u)
        root_scores[u] = count / degree if degree else float(count)
    root = select_root(query, data)
    dag = build_dag(query, data, root=root)

    initial_sizes = {
        u: initial_candidate_count(query, data, u) for u in query.vertices()
    }
    per_step: list[dict[int, int]] = []
    for steps in range(1, cfg.refinement_steps + 1):
        cs_step = build_candidate_space(
            query,
            data,
            dag,
            refinement_steps=steps,
            use_local_filters=cfg.use_local_filters,
        )
        per_step.append({u: len(cs_step.candidates[u]) for u in query.vertices()})
    cs = build_candidate_space(
        query,
        data,
        dag,
        refinement_steps=cfg.refinement_steps,
        refine_to_fixpoint=cfg.refine_to_fixpoint,
        use_local_filters=cfg.use_local_filters,
    )
    weight_summary = {}
    if not cs.is_empty():
        weights = compute_weight_array(cs)
        for u in query.vertices():
            row = weights[u]
            if row:
                weight_summary[u] = (min(row), max(row))
    return QueryPlan(
        root=root,
        root_scores=root_scores,
        dag_edges=sorted(dag.edges()),
        topological_order=dag.topological_order(),
        candidate_sizes_initial=initial_sizes,
        candidate_sizes_per_step=per_step,
        cs_size=cs.size,
        cs_edges=cs.num_edges,
        is_negative=cs.is_empty(),
        weight_summary=weight_summary,
    )
