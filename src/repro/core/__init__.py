"""DAF core: DAG construction, candidate space, backtracking, failing sets."""

from .backtrack import BacktrackEngine
from .candidate_space import CandidateSpace, build_candidate_space, has_weak_embedding
from .config import DA_CAND, DA_PATH, DAF_CAND, DAF_PATH, MatchConfig
from .dag import build_dag, select_root
from .trace import SearchTracer, TraceNode
from .filters import (
    initial_candidate_count,
    initial_candidates,
    passes_local_filters,
    passes_max_neighbor_degree,
    passes_neighborhood_label_frequency,
)
from .matcher import (
    DAFMatcher,
    PreparedQuery,
    count_embeddings,
    find_embeddings,
    has_embedding,
)
from .ordering import (
    CandidateSizeOrder,
    PathSizeOrder,
    compute_weight_array,
    count_paths_from,
    make_order,
)

# QueryPlan/explain moved to repro.obs.explain (the EXPLAIN ANALYZE
# subsystem); re-export lazily so `from repro.core import explain` keeps
# working without importing the obs stack — or the deprecated
# repro/core/explain.py shim — during core's own import.
_MOVED_TO_OBS = ("QueryPlan", "explain")


def __getattr__(name: str):
    if name in _MOVED_TO_OBS:
        import importlib

        return getattr(importlib.import_module("repro.obs.explain"), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BacktrackEngine",
    "CandidateSizeOrder",
    "CandidateSpace",
    "DAFMatcher",
    "DA_CAND",
    "DA_PATH",
    "DAF_CAND",
    "DAF_PATH",
    "MatchConfig",
    "PathSizeOrder",
    "PreparedQuery",
    "QueryPlan",
    "SearchTracer",
    "TraceNode",
    "explain",
    "build_candidate_space",
    "build_dag",
    "compute_weight_array",
    "count_embeddings",
    "count_paths_from",
    "find_embeddings",
    "has_embedding",
    "has_weak_embedding",
    "initial_candidate_count",
    "initial_candidates",
    "make_order",
    "passes_local_filters",
    "passes_max_neighbor_degree",
    "passes_neighborhood_label_frequency",
    "select_root",
]
