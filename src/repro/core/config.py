"""Configuration for the DAF matcher and its ablation variants."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MatchConfig:
    """Knobs for :class:`~repro.core.matcher.DAFMatcher`.

    The defaults reproduce the paper's final algorithm, **DAF-path**
    (Appendix A.6 selects the path-size order + failing sets).

    Attributes
    ----------
    order:
        ``"path"`` (path-size, default) or ``"candidate"`` (candidate-size)
        adaptive matching order (§5.2).
    use_failing_sets:
        Enable failing-set pruning (§6).  Off reproduces the *DA* variants.
    leaf_decomposition:
        Match degree-one query vertices last with the specialized leaf
        matcher (§3, adopted from CFL-Match).
    refinement_steps:
        DAG-graph DP passes when building the CS (paper default 3).
    refine_to_fixpoint:
        Keep refining until candidate sets stop changing (§4 notes this is
        possible; the paper stops at 3 because later passes filter < 1%).
    use_local_filters:
        Apply MND/NLF during the first refinement pass (§4).
    injective:
        ``True`` finds embeddings (subgraph isomorphism, the paper's
        problem); ``False`` finds homomorphisms (§2's relaxation) —
        an extension exposed because the engine supports it for free.
    induced:
        ``True`` restricts to *induced* subgraph isomorphism: query
        non-edges must map to data non-edges as well.  An extension
        beyond the paper (which studies the non-induced problem);
        implemented as a non-adjacency check against the data graph at
        mapping time, since the CS equivalence property (Thm 4.1) covers
        edges only.  Requires ``injective=True``.
    collect_embeddings:
        If ``False``, embeddings are counted but not materialized, which
        lets the leaf matcher count combinatorially instead of
        enumerating.  Benchmarks use this; the default keeps the
        user-facing API fully materialized.
    """

    order: str = "path"
    use_failing_sets: bool = True
    leaf_decomposition: bool = True
    refinement_steps: int = 3
    refine_to_fixpoint: bool = False
    use_local_filters: bool = True
    injective: bool = True
    induced: bool = False
    collect_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.order not in ("path", "candidate"):
            raise ValueError(f"order must be 'path' or 'candidate', got {self.order!r}")
        if self.refinement_steps < 1:
            raise ValueError("refinement_steps must be >= 1")
        if self.induced and not self.injective:
            raise ValueError("induced matching requires injective=True")

    @property
    def variant_name(self) -> str:
        """The paper's name for this configuration (Appendix A.6)."""
        base = "DAF" if self.use_failing_sets else "DA"
        return f"{base}-{'path' if self.order == 'path' else 'cand'}"


#: The four variants compared in Appendix A.6 / Fig. 18.
DA_CAND = MatchConfig(order="candidate", use_failing_sets=False)
DA_PATH = MatchConfig(order="path", use_failing_sets=False)
DAF_CAND = MatchConfig(order="candidate", use_failing_sets=True)
DAF_PATH = MatchConfig(order="path", use_failing_sets=True)
