"""Search-tree tracing (the paper's Figures 6 and 8, programmatically).

A :class:`SearchTracer` passed to ``BacktrackEngine`` records every
search-tree node with its mapping pair, outcome class and failing set —
the exact information the paper's search-tree figures display.  Tracing
is for inspection, teaching and deep tests (exact failing-set assertions
on worked examples); it is off by default and costs nothing when absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TraceNode:
    """One node of the traced search tree.

    ``outcome`` is one of:

    - ``"embedding"`` — a full embedding was reported at/below this node;
    - ``"conflict"`` — the extendable candidate was already visited
      (the paper's ``(u, v)!`` leaves);
    - ``"emptyset"`` — the selected vertex had no extendable candidates
      (the paper's ``(u, ∅)`` leaves);
    - ``"internal"`` — an ordinary internal node;
    - ``"pruned"`` — never explored: removed by Lemma 6.1.
    """

    query_vertex: int
    data_vertex: int
    outcome: str = "internal"
    failing_set: Optional[frozenset[int]] = None
    children: list["TraceNode"] = field(default_factory=list)

    def render(self, depth: int = 0) -> str:
        """Indented text rendering, one node per line (Figure 6 style)."""
        mark = {
            "embedding": " *",
            "conflict": " !",
            "emptyset": " ∅",
            "pruned": " x",
            "internal": "",
        }[self.outcome]
        fs = ""
        if self.failing_set is not None:
            fs = "  F={" + ",".join(f"u{u}" for u in sorted(self.failing_set)) + "}"
        line = f"{'  ' * depth}(u{self.query_vertex}, v{self.data_vertex}){mark}{fs}"
        lines = [line]
        for child in self.children:
            lines.append(child.render(depth + 1))
        return "\n".join(lines)

    def count_nodes(self, include_pruned: bool = False) -> int:
        total = 1 if (include_pruned or self.outcome != "pruned") else 0
        return total + sum(c.count_nodes(include_pruned) for c in self.children)


def _mask_to_set(mask: Optional[int], n: int) -> Optional[frozenset[int]]:
    if mask is None:
        return None
    return frozenset(u for u in range(n) if mask >> u & 1)


class SearchTracer:
    """Collects the search tree while the engine runs.

    Use via :meth:`repro.core.matcher.DAFMatcher.search`::

        tracer = SearchTracer(num_query_vertices=q.num_vertices)
        matcher.search(prepared, tracer=tracer)
        print(tracer.render())
    """

    def __init__(self, num_query_vertices: int) -> None:
        self.n = num_query_vertices
        self.roots: list[TraceNode] = []
        self._stack: list[TraceNode] = []

    # -- engine hooks ---------------------------------------------------
    def enter(self, query_vertex: int, data_vertex: int) -> None:
        node = TraceNode(query_vertex, data_vertex)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)

    def leave(self, failing_set_mask: Optional[int], found_embedding: bool) -> None:
        node = self._stack.pop()
        node.failing_set = _mask_to_set(failing_set_mask, self.n)
        if found_embedding:
            node.outcome = "embedding"

    def conflict(self, query_vertex: int, data_vertex: int, contribution_mask: int) -> None:
        node = TraceNode(
            query_vertex,
            data_vertex,
            outcome="conflict",
            failing_set=_mask_to_set(contribution_mask, self.n),
        )
        (self._stack[-1].children if self._stack else self.roots).append(node)

    def emptyset(self, query_vertex: int) -> None:
        if self._stack:
            self._stack[-1].outcome = "emptyset"

    def pruned(self, query_vertex: int, data_vertex: int) -> None:
        node = TraceNode(query_vertex, data_vertex, outcome="pruned")
        (self._stack[-1].children if self._stack else self.roots).append(node)

    # -- reporting --------------------------------------------------------
    def render(self) -> str:
        return "\n".join(root.render() for root in self.roots)

    def all_nodes(self) -> list[TraceNode]:
        collected: list[TraceNode] = []

        def walk(node: TraceNode) -> None:
            collected.append(node)
            for child in node.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return collected
