"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``match``     find embeddings of a query graph in a data graph
``info``      print statistics of a graph file
``convert``   convert between the ``t/v/e`` and edge-list formats
``generate``  materialize a registry dataset or a query workload
``bench``     run one of the paper's experiment drivers

Graph files use the community ``t/v/e`` format by default (see
:mod:`repro.graph.io`); pass ``--format edgelist`` for the plain format.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import DAFMatcher, MatchConfig, __version__
from .baselines import ALL_BASELINES
from .graph.graph import Graph
from .graph.io import read_cfl, read_edge_list, write_cfl, write_edge_list


def _read_graph(path: str, fmt: str) -> Graph:
    if fmt == "cfl":
        return read_cfl(path)
    if fmt == "edgelist":
        return read_edge_list(path)
    raise SystemExit(f"unknown graph format {fmt!r}")


def _write_graph(graph: Graph, path: str, fmt: str) -> None:
    if fmt == "cfl":
        write_cfl(graph, path)
    elif fmt == "edgelist":
        write_edge_list(graph, path)
    else:
        raise SystemExit(f"unknown graph format {fmt!r}")


def _build_matcher(args: argparse.Namespace):
    workers = getattr(args, "workers", 1)
    if args.algorithm == "daf":
        config = MatchConfig(
            order=args.order,
            use_failing_sets=not args.no_failing_sets,
            injective=not args.homomorphism,
            induced=args.induced,
            collect_embeddings=not args.count_only,
        )
        if workers > 1:
            from .extensions import ParallelDAFMatcher

            return ParallelDAFMatcher(num_workers=workers, config=config)
        return DAFMatcher(config)
    try:
        cls = next(
            cls for name, cls in ALL_BASELINES.items() if name.lower() == args.algorithm
        )
    except StopIteration:
        choices = ["daf", *(n.lower() for n in ALL_BASELINES)]
        raise SystemExit(f"unknown algorithm {args.algorithm!r}; choices: {choices}")
    if args.induced or args.homomorphism:
        raise SystemExit("--induced/--homomorphism are DAF-only options")
    if workers > 1:
        raise SystemExit("--workers is a DAF-only option")
    return cls()


def _build_observer(args: argparse.Namespace):
    """Observer + sink for ``--metrics-out`` / ``--profile`` / ``--progress``
    (``(None, None)`` when none of them is given — the zero-overhead path)."""
    if not (args.metrics_out or args.profile or args.progress):
        return None, None
    from .obs import JsonlSink, MetricsRegistry, ProgressReporter

    sink = JsonlSink(args.metrics_out) if args.metrics_out else None
    progress = ProgressReporter(stream=sys.stderr) if args.progress else None
    return MetricsRegistry(sink=sink, progress=progress), sink


def cmd_match(args: argparse.Namespace) -> int:
    query = _read_graph(args.query, args.format)
    data = _read_graph(args.data, args.format)
    matcher = _build_matcher(args)
    max_memory = (
        int(args.max_memory_mb * 1024 * 1024) if args.max_memory_mb is not None else None
    )
    match_kwargs: dict = {}
    if args.resilient:
        from .resilience import ResilientMatcher

        matcher = ResilientMatcher(
            primary=matcher, max_calls=args.max_calls, max_memory=max_memory
        )
    elif args.max_calls is not None or max_memory is not None:
        if not isinstance(matcher, DAFMatcher):
            raise SystemExit(
                "--max-calls/--max-memory-mb need --algorithm daf "
                "with --workers 1 (or add --resilient)"
            )
        from .resilience import Budget

        try:
            match_kwargs["budget"] = Budget(
                time_limit=args.time_limit,
                max_calls=args.max_calls,
                max_memory=max_memory,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
    observer, sink = _build_observer(args)
    if observer is not None:
        matcher.with_observer(observer)
        run_start = {
            "event": "run_start",
            "algorithm": getattr(matcher, "name", args.algorithm),
            "query_vertices": query.num_vertices,
            "data_vertices": data.num_vertices,
            "limit": args.limit,
        }
        if args.time_limit is not None:
            run_start["time_limit"] = args.time_limit
        if getattr(args, "workers", 1) > 1:
            run_start["workers"] = args.workers
        observer.emit(run_start)
    try:
        result = matcher.match(
            query, data, limit=args.limit, time_limit=args.time_limit, **match_kwargs
        )
    except KeyboardInterrupt:
        # The interrupt landed outside the cooperative search window
        # (e.g. during preprocessing): report it rather than traceback.
        if sink is not None:
            sink.close()
        payload = {
            "algorithm": getattr(matcher, "name", args.algorithm),
            "count": 0,
            "interrupted": True,
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 130
    if observer is not None:
        snapshot = result.stats.metrics or observer.snapshot()
        observer.emit(
            {
                "event": "run_end",
                "recursive_calls": result.stats.recursive_calls,
                "embeddings": result.count,
                "solved": result.solved,
                "spans": snapshot["spans"],
                "counters": snapshot["counters"],
                "limit_reached": result.limit_reached,
                "timed_out": result.timed_out,
            }
        )
        if sink is not None:
            sink.close()
        if args.profile:
            from .obs import render_snapshot

            print(render_snapshot(snapshot), file=sys.stderr)
    payload = {
        "algorithm": getattr(matcher, "name", args.algorithm),
        "count": result.count,
        "limit_reached": result.limit_reached,
        "timed_out": result.timed_out,
        "recursive_calls": result.stats.recursive_calls,
        "candidates_total": result.stats.candidates_total,
        "preprocess_seconds": round(result.stats.preprocess_seconds, 6),
        "search_seconds": round(result.stats.search_seconds, 6),
    }
    if result.interrupted:
        payload["interrupted"] = True
    if result.budget_breach is not None:
        payload["budget_breach"] = result.budget_breach
    if result.partial_failure:
        payload["partial_failure"] = True
    if result.degradations:
        payload["degradations"] = result.degradations
    if result.stats.worker_outcomes:
        payload["workers"] = [
            {"slice": o.slice_index, "status": o.status, "attempts": o.attempts}
            for o in result.stats.worker_outcomes
        ]
    if not args.count_only:
        payload["embeddings"] = [list(e) for e in result.embeddings]
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 130 if result.interrupted else 0


def cmd_info(args: argparse.Namespace) -> int:
    graph = _read_graph(args.graph, args.format)
    from .graph.properties import connected_components, density_class

    components = connected_components(graph)
    payload = {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "labels": graph.num_labels,
        "average_degree": round(graph.average_degree(), 3),
        "density_class": density_class(graph),
        "connected_components": len(components),
        "max_degree": max(graph.degrees, default=0),
    }
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    graph = _read_graph(args.input, args.from_format)
    _write_graph(graph, args.output, args.to_format)
    print(f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges to {args.output}")
    return 0


def cmd_generate_dataset(args: argparse.Namespace) -> int:
    from .datasets import load

    graph = load(args.name)
    _write_graph(graph, args.output, args.format)
    print(f"{args.name}: |V|={graph.num_vertices} |E|={graph.num_edges} -> {args.output}")
    return 0


def cmd_generate_queries(args: argparse.Namespace) -> int:
    from .workloads import generate_query_set

    data = _read_graph(args.data, args.format)
    rng = random.Random(args.seed)
    query_set = generate_query_set(
        data, args.size, args.density, args.count, rng, dataset=Path(args.data).stem
    )
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for i, query in enumerate(query_set.queries):
        _write_graph(query, str(out_dir / f"{query_set.name}_{i:03d}.graph"), args.format)
    print(f"wrote {len(query_set)} queries ({query_set.name}) to {out_dir}/")
    if query_set.off_class:
        print(f"warning: {query_set.off_class} queries missed the {args.density} band")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import DEFAULT, SMOKE, print_table
    from .bench import experiments as exp

    drivers = {
        "table2": exp.table2,
        **{f"fig{n}": getattr(exp, f"figure{n}") for n in range(9, 19)},
    }
    if args.experiment not in drivers:
        raise SystemExit(f"unknown experiment {args.experiment!r}; choices: {sorted(drivers)}")
    profile = SMOKE if args.profile == "smoke" else DEFAULT
    rows = drivers[args.experiment](profile)
    print_table(rows, f"{args.experiment} ({profile.name} profile)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAF subgraph matching (SIGMOD 2019 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    match_p = sub.add_parser("match", help="find embeddings of a query in a data graph")
    match_p.add_argument("query", help="query graph file")
    match_p.add_argument("data", help="data graph file")
    match_p.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
    match_p.add_argument("--limit", type=int, default=100_000, help="embedding cap (paper k)")
    match_p.add_argument("--time-limit", type=float, default=None, help="seconds")
    match_p.add_argument(
        "--algorithm",
        default="daf",
        help="daf (default) or a baseline: " + ", ".join(n.lower() for n in ALL_BASELINES),
    )
    match_p.add_argument("--order", default="path", choices=("path", "candidate"))
    match_p.add_argument("--no-failing-sets", action="store_true")
    match_p.add_argument("--induced", action="store_true", help="induced isomorphism")
    match_p.add_argument("--homomorphism", action="store_true", help="drop injectivity")
    match_p.add_argument("--count-only", action="store_true", help="omit embedding lists")
    match_p.add_argument(
        "--workers", type=int, default=1, help="parallel DAF worker processes (DAF only)"
    )
    match_p.add_argument(
        "--max-calls", type=int, default=None, help="recursive-call budget (DAF only)"
    )
    match_p.add_argument(
        "--max-memory-mb",
        type=float,
        default=None,
        help="estimated memory budget in MiB (DAF only)",
    )
    match_p.add_argument(
        "--resilient",
        action="store_true",
        help="wrap the matcher in the graceful-degradation chain (docs/robustness.md)",
    )
    match_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="append observability events as JSONL (docs/observability.md)",
    )
    match_p.add_argument(
        "--profile",
        action="store_true",
        help="print phase timings and prune accounting to stderr",
    )
    match_p.add_argument(
        "--progress",
        action="store_true",
        help="live heartbeat lines on stderr for long searches",
    )
    match_p.set_defaults(func=cmd_match)

    info_p = sub.add_parser("info", help="print graph statistics")
    info_p.add_argument("graph")
    info_p.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
    info_p.set_defaults(func=cmd_info)

    convert_p = sub.add_parser("convert", help="convert between graph formats")
    convert_p.add_argument("input")
    convert_p.add_argument("output")
    convert_p.add_argument("--from-format", default="cfl", choices=("cfl", "edgelist"))
    convert_p.add_argument("--to-format", default="edgelist", choices=("cfl", "edgelist"))
    convert_p.set_defaults(func=cmd_convert)

    generate_p = sub.add_parser("generate", help="generate datasets or query workloads")
    generate_sub = generate_p.add_subparsers(dest="what", required=True)

    dataset_p = generate_sub.add_parser("dataset", help="materialize a registry dataset")
    dataset_p.add_argument("name", help="yeast, human, hprd, email, dblp, yago, twitter")
    dataset_p.add_argument("output")
    dataset_p.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
    dataset_p.set_defaults(func=cmd_generate_dataset)

    queries_p = generate_sub.add_parser("queries", help="extract a query set")
    queries_p.add_argument("data", help="data graph file")
    queries_p.add_argument("out_dir")
    queries_p.add_argument("--size", type=int, required=True)
    queries_p.add_argument("--density", default="nonsparse", choices=("sparse", "nonsparse"))
    queries_p.add_argument("--count", type=int, default=10)
    queries_p.add_argument("--seed", type=int, default=2019)
    queries_p.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
    queries_p.set_defaults(func=cmd_generate_queries)

    bench_p = sub.add_parser("bench", help="run a paper experiment driver")
    bench_p.add_argument("experiment", help="table2 or fig9..fig18")
    bench_p.add_argument("--profile", default="default", choices=("default", "smoke"))
    bench_p.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
