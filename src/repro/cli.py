"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``match``     find embeddings of a query graph in a data graph
``info``      print statistics of a graph file
``convert``   convert between the ``t/v/e`` and edge-list formats
``generate``  materialize a registry dataset or a query workload
``bench``     run experiment drivers; manage run manifests
              (``run`` / ``compare`` / ``history`` / ``hotspots``)
``explain``   post-run search forensics (docs/explain.md): static plans
              (``plan``), instrumented runs joined with the plan
              (``analyze``), and per-vertex report diffs (``diff``)
``update``    apply delta batches to a data graph through a session:
              versioned mutation, incremental candidate-space refresh,
              standing-query diffs (docs/serving.md)
``serve-batch``  run a query batch through a persistent data-graph
              session with prepared-query caching (docs/serving.md)
``trace``     inspect request traces in a metrics JSONL stream
              (``show``: list traces / render one request tree)
``top``       windowed telemetry summary of a metrics stream (latency
              percentiles, cache hit-rate, crash rate, SLO alerts)
``chaos``     sweep seeded fault injections across serving workloads and
              gate on exact-answer equality (docs/robustness.md)
``lint``      statically check the codebase's invariants
              (docs/static-analysis.md)

Graph files use the community ``t/v/e`` format by default (see
:mod:`repro.graph.io`); pass ``--format edgelist`` for the plain format.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import DAFMatcher, MatchConfig, __version__
from .baselines import ALL_BASELINES
from .interfaces import MatchOptions, MatchRequest
from .graph.graph import Graph
from .graph.io import read_cfl, read_edge_list, write_cfl, write_edge_list


def _read_graph(path: str, fmt: str) -> Graph:
    if fmt == "cfl":
        return read_cfl(path)
    if fmt == "edgelist":
        return read_edge_list(path)
    raise SystemExit(f"unknown graph format {fmt!r}")


def _write_graph(graph: Graph, path: str, fmt: str) -> None:
    if fmt == "cfl":
        write_cfl(graph, path)
    elif fmt == "edgelist":
        write_edge_list(graph, path)
    else:
        raise SystemExit(f"unknown graph format {fmt!r}")


def _read_update_batches(path: str):
    """Parse an updates file: JSONL where each non-empty, non-``#`` line
    is one :class:`~repro.interfaces.UpdateBatch` — either a single delta
    object (``{"op": "insert-edge", "u": 0, "v": 2}``) or an array of
    delta objects applied atomically."""
    from .interfaces import UpdateBatch, UpdateError

    batches = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: not JSON: {exc}")
            if isinstance(payload, dict):
                payload = [payload]
            if not isinstance(payload, list):
                raise SystemExit(
                    f"{path}:{lineno}: expected a delta object or an array of them"
                )
            try:
                batches.append(UpdateBatch.from_dicts(payload, tag=lineno))
            except (UpdateError, ValueError) as exc:
                raise SystemExit(f"{path}:{lineno}: {exc}")
    if not batches:
        raise SystemExit(f"{path}: no update batches")
    return batches


def _build_matcher(args: argparse.Namespace):
    workers = getattr(args, "workers", 1)
    if args.algorithm == "daf":
        config = MatchConfig(
            order=args.order,
            use_failing_sets=not args.no_failing_sets,
            injective=not args.homomorphism,
            induced=args.induced,
            collect_embeddings=not args.count_only,
        )
        if workers > 1:
            from .extensions import ParallelDAFMatcher

            return ParallelDAFMatcher(num_workers=workers, config=config)
        return DAFMatcher(config)
    try:
        cls = next(
            cls for name, cls in ALL_BASELINES.items() if name.lower() == args.algorithm
        )
    except StopIteration:
        choices = ["daf", *(n.lower() for n in ALL_BASELINES)]
        raise SystemExit(f"unknown algorithm {args.algorithm!r}; choices: {choices}")
    if args.induced or args.homomorphism:
        raise SystemExit("--induced/--homomorphism are DAF-only options")
    if workers > 1:
        raise SystemExit("--workers is a DAF-only option")
    return cls()


def _build_observer(args: argparse.Namespace):
    """Observer + sink for ``--metrics-out`` / ``--profile`` / ``--progress``
    (``(None, None)`` when none of them is given — the zero-overhead path)."""
    if not (args.metrics_out or args.profile or args.progress):
        return None, None
    from .obs import JsonlSink, MetricsRegistry, ProgressReporter

    sink = JsonlSink(args.metrics_out) if args.metrics_out else None
    progress = ProgressReporter(stream=sys.stderr) if args.progress else None
    return MetricsRegistry(sink=sink, progress=progress), sink


def cmd_match(args: argparse.Namespace) -> int:
    query = _read_graph(args.query, args.format)
    data = _read_graph(args.data, args.format)
    matcher = _build_matcher(args)
    max_memory = (
        int(args.max_memory_mb * 1024 * 1024) if args.max_memory_mb is not None else None
    )
    match_kwargs: dict = {}
    if args.resilient:
        from .resilience import ResilientMatcher

        matcher = ResilientMatcher(
            primary=matcher, max_calls=args.max_calls, max_memory=max_memory
        )
    elif args.max_calls is not None or max_memory is not None:
        if not isinstance(matcher, DAFMatcher):
            raise SystemExit(
                "--max-calls/--max-memory-mb need --algorithm daf "
                "with --workers 1 (or add --resilient)"
            )
        from .resilience import Budget

        try:
            match_kwargs["budget"] = Budget(
                time_limit=args.time_limit,
                max_calls=args.max_calls,
                max_memory=max_memory,
            )
        except ValueError as exc:
            raise SystemExit(str(exc))
    if args.resume:
        if (
            args.resilient
            or getattr(args, "workers", 1) > 1
            or not isinstance(matcher, DAFMatcher)
        ):
            raise SystemExit(
                "--resume needs --algorithm daf with --workers 1 (no --resilient)"
            )
        from .resilience import SearchCheckpoint

        try:
            match_kwargs["resume_from"] = SearchCheckpoint.load(args.resume)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"cannot load checkpoint {args.resume}: {exc}")
    observer, sink = _build_observer(args)
    if observer is not None:
        matcher.with_observer(observer)
        from .obs.telemetry import TraceIdAllocator, resumed_context

        resume_ckpt = match_kwargs.get("resume_from")
        trace = resumed_context(getattr(resume_ckpt, "trace", None))
        observer.trace = trace if trace is not None else TraceIdAllocator().allocate()
        run_start = {
            "event": "run_start",
            "algorithm": getattr(matcher, "name", args.algorithm),
            "query_vertices": query.num_vertices,
            "data_vertices": data.num_vertices,
            "limit": args.limit,
        }
        if args.time_limit is not None:
            run_start["time_limit"] = args.time_limit
        if getattr(args, "workers", 1) > 1:
            run_start["workers"] = args.workers
        observer.emit(run_start)
    try:
        result = matcher.run_request(
            MatchRequest(
                query,
                data,
                options=MatchOptions(
                    limit=args.limit, time_limit=args.time_limit, **match_kwargs
                ),
            )
        )
    except KeyboardInterrupt:
        # The interrupt landed outside the cooperative search window
        # (e.g. during preprocessing): report it rather than traceback.
        if sink is not None:
            sink.close()
        payload = {
            "algorithm": getattr(matcher, "name", args.algorithm),
            "count": 0,
            "interrupted": True,
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 130
    if observer is not None:
        snapshot = result.stats.metrics or observer.snapshot()
        observer.emit(
            {
                "event": "run_end",
                "recursive_calls": result.stats.recursive_calls,
                "embeddings": result.count,
                "solved": result.solved,
                "spans": snapshot["spans"],
                "counters": snapshot["counters"],
                "limit_reached": result.limit_reached,
                "timed_out": result.timed_out,
            }
        )
        if sink is not None:
            sink.close()
        if args.profile:
            from .obs import render_snapshot

            print(render_snapshot(snapshot), file=sys.stderr)
    payload = {
        "algorithm": getattr(matcher, "name", args.algorithm),
        "count": result.count,
        "limit_reached": result.limit_reached,
        "timed_out": result.timed_out,
        "recursive_calls": result.stats.recursive_calls,
        "candidates_total": result.stats.candidates_total,
        "preprocess_seconds": round(result.stats.preprocess_seconds, 6),
        "search_seconds": round(result.stats.search_seconds, 6),
    }
    if result.interrupted:
        payload["interrupted"] = True
    if result.budget_breach is not None:
        payload["budget_breach"] = result.budget_breach
    if result.partial_failure:
        payload["partial_failure"] = True
    if result.degradations:
        payload["degradations"] = result.degradations
    if result.stats.worker_outcomes:
        payload["workers"] = [
            {"slice": o.slice_index, "status": o.status, "attempts": o.attempts}
            for o in result.stats.worker_outcomes
        ]
    if args.checkpoint_out and result.checkpoint is not None:
        result.checkpoint.save(args.checkpoint_out)
        payload["checkpoint"] = args.checkpoint_out
    if not args.count_only:
        payload["embeddings"] = [list(e) for e in result.embeddings]
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 130 if result.interrupted else 0


def cmd_info(args: argparse.Namespace) -> int:
    graph = _read_graph(args.graph, args.format)
    from .graph.properties import connected_components, density_class

    components = connected_components(graph)
    payload = {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "labels": graph.num_labels,
        "average_degree": round(graph.average_degree(), 3),
        "density_class": density_class(graph),
        "connected_components": len(components),
        "max_degree": max(graph.degrees, default=0),
    }
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    graph = _read_graph(args.input, args.from_format)
    _write_graph(graph, args.output, args.to_format)
    print(f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges to {args.output}")
    return 0


def cmd_generate_dataset(args: argparse.Namespace) -> int:
    from .datasets import load

    graph = load(args.name)
    _write_graph(graph, args.output, args.format)
    print(f"{args.name}: |V|={graph.num_vertices} |E|={graph.num_edges} -> {args.output}")
    return 0


def cmd_generate_queries(args: argparse.Namespace) -> int:
    from .workloads import generate_query_set

    data = _read_graph(args.data, args.format)
    rng = random.Random(args.seed)
    query_set = generate_query_set(
        data, args.size, args.density, args.count, rng, dataset=Path(args.data).stem
    )
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for i, query in enumerate(query_set.queries):
        _write_graph(query, str(out_dir / f"{query_set.name}_{i:03d}.graph"), args.format)
    print(f"wrote {len(query_set)} queries ({query_set.name}) to {out_dir}/")
    if query_set.off_class:
        print(f"warning: {query_set.off_class} queries missed the {args.density} band")
    return 0


def _bench_drivers() -> dict:
    from .bench import experiments as exp

    return {
        "table2": exp.table2,
        **{f"fig{n}": getattr(exp, f"figure{n}") for n in range(9, 19)},
    }


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import DEFAULT, SMOKE, print_table

    drivers = _bench_drivers()
    if args.experiment not in drivers:
        raise SystemExit(f"unknown experiment {args.experiment!r}; choices: {sorted(drivers)}")
    profile = SMOKE if args.profile == "smoke" else DEFAULT
    rows = drivers[args.experiment](profile)
    print_table(rows, f"{args.experiment} ({profile.name} profile)")
    return 0


def cmd_bench_run(args: argparse.Namespace) -> int:
    """``repro bench run``: run drivers, write a BENCH_<n>.json manifest."""
    from .bench import DEFAULT, SMOKE, ManifestWriter, print_table

    drivers = _bench_drivers()
    names = [name.strip() for name in args.figures.split(",") if name.strip()]
    unknown = [name for name in names if name not in drivers]
    if unknown:
        raise SystemExit(f"unknown figure(s) {unknown}; choices: {sorted(drivers)}")
    if not names:
        raise SystemExit("--figures must name at least one driver")
    profile = SMOKE if args.profile == "smoke" else DEFAULT
    sink = None
    if args.metrics_out:
        from .obs import JsonlSink

        sink = JsonlSink(args.metrics_out)
    writer = ManifestWriter(root=args.out, profile=profile, sink=sink)
    for name in names:
        rows = drivers[name](profile)
        writer.add_figure(name, rows, title=f"{name} ({profile.name} profile)")
        if not args.quiet:
            print_table(rows, f"{name} ({profile.name} profile)")
    path = writer.write()
    if sink is not None:
        sink.close()
    print(f"manifest: {path}")
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """``repro bench compare``: diff two manifests, optionally as a gate."""
    from .bench import compare_manifests, load_manifest, validate_manifest

    documents = []
    for name in (args.baseline, args.current):
        try:
            document = load_manifest(name)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"{name}: not a readable manifest ({exc})")
        errors = validate_manifest(document)
        if errors:
            raise SystemExit(f"{name}: invalid manifest: " + "; ".join(errors))
        documents.append(document)
    comparison = compare_manifests(
        documents[0],
        documents[1],
        counter_threshold=args.counter_threshold,
        time_threshold=args.time_threshold,
        baseline_name=Path(args.baseline).name,
        current_name=Path(args.current).name,
    )
    print(comparison.render(only_changed=args.only_changed))
    if args.gate and comparison.counter_regressions:
        return 1
    return 0


def cmd_bench_history(args: argparse.Namespace) -> int:
    """``repro bench history``: sparkline trends over BENCH_*.json."""
    from .bench import history_rows, list_manifests, load_manifest
    from .bench.report import render_table

    paths = list_manifests(args.root)
    if not paths:
        raise SystemExit(f"no BENCH_*.json manifests under {args.root}")
    manifests = [load_manifest(p) for p in paths]
    print("history: " + " -> ".join(p.name for p in paths))
    rows = history_rows(manifests, metric=args.metric, figure=args.figure)
    if not rows:
        raise SystemExit(f"no cells report metric {args.metric!r}")
    print(render_table(rows, f"trend of {args.metric}", precise=True))
    return 0


def cmd_bench_hotspots(args: argparse.Namespace) -> int:
    """``repro bench hotspots``: per-vertex search-effort attribution."""
    from .bench import render_hotspot_report, run_hotspots

    if bool(args.query) != bool(args.data):
        raise SystemExit("--query and --data must be given together")
    collect_folded = args.folded is not None
    if args.query:
        query = _read_graph(args.query, args.format)
        data = _read_graph(args.data, args.format)
        payload = run_hotspots(query, data, limit=args.limit, collect_folded=collect_folded)
    else:
        payload = run_hotspots(limit=args.limit, collect_folded=collect_folded)
    print(render_hotspot_report(payload, top=args.top))
    if collect_folded and payload["tracer"] is not None:
        payload["tracer"].write_folded(args.folded)
        print(f"folded stacks -> {args.folded}")
    return 0


def _explain_instance(args: argparse.Namespace) -> tuple[Graph, Graph]:
    """The (query, data) pair an explain command operates on: the given
    files, or the paper's §6 worked example when both are omitted."""
    if args.query and args.data:
        return _read_graph(args.query, args.format), _read_graph(args.data, args.format)
    if args.query or args.data:
        raise SystemExit("pass both QUERY and DATA files, or neither (§6 example)")
    from .bench.hotspots import paper_worked_example

    return paper_worked_example()


def _explain_config(args: argparse.Namespace) -> MatchConfig:
    return MatchConfig(
        order=args.order,
        use_failing_sets=not args.no_failing_sets,
        collect_embeddings=False,
    )


def cmd_explain_plan(args: argparse.Namespace) -> int:
    """``repro explain plan``: the static BuildDAG + BuildCS decisions."""
    from .obs.explain import explain as build_plan

    query, data = _explain_instance(args)
    plan = build_plan(query, data, _explain_config(args))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(plan.to_dict(), stream, indent=2)
            stream.write("\n")
    print(plan.render())
    return 0


def cmd_explain_analyze(args: argparse.Namespace) -> int:
    """``repro explain analyze``: an instrumented run joined with its plan."""
    from .obs.explain import explain_analyze

    query, data = _explain_instance(args)
    if args.algorithm == "daf":
        matcher = DAFMatcher(_explain_config(args))
    else:
        try:
            cls = next(
                cls
                for name, cls in ALL_BASELINES.items()
                if name.lower() == args.algorithm
            )
        except StopIteration:
            choices = ["daf", *(n.lower() for n in ALL_BASELINES)]
            raise SystemExit(f"unknown algorithm {args.algorithm!r}; choices: {choices}")
        matcher = cls()
    sink = None
    trace = None
    if args.metrics_out:
        from .obs import JsonlSink
        from .obs.telemetry import TraceIdAllocator

        sink = JsonlSink(args.metrics_out)
        trace = TraceIdAllocator().allocate()
    try:
        report = explain_analyze(
            query,
            data,
            matcher=matcher,
            limit=args.limit,
            time_limit=args.time_limit,
            sink=sink,
            trace=trace,
        )
    finally:
        if sink is not None:
            sink.close()
    if args.json:
        report.save(args.json)
    print(report.render())
    return 0


def cmd_explain_diff(args: argparse.Namespace) -> int:
    """``repro explain diff``: classify per-vertex report differences."""
    from .obs.explain import diff_reports, load_report

    try:
        base = load_report(args.base)
        current = load_report(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot load explain report: {exc}")
    diff = diff_reports(base, current, ratio=args.ratio, min_delta=args.min_delta)
    if args.format == "json":
        json.dump(diff.to_dict(), sys.stdout, indent=2)
        print()
    else:
        print(diff.render())
    if args.gate and diff.regressions:
        print(
            f"explain gate: {len(diff.regressions)} regression(s)", file=sys.stderr
        )
        return 1
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    """``repro update``: apply delta batches to a graph through a session."""
    from .interfaces import UpdateError
    from .service import DataGraphSession

    data = _read_graph(args.data, args.format)
    batches = _read_update_batches(args.updates)
    observer, sink = None, None
    if args.metrics_out:
        from .obs import JsonlSink, MetricsRegistry

        sink = JsonlSink(args.metrics_out)
        observer = MetricsRegistry(sink=sink)
    session = DataGraphSession(data, cache_size=args.cache_size, observer=observer)

    subscriptions = []
    options = MatchOptions(time_limit=args.time_limit)
    for spec in args.queries or []:
        query_path = Path(spec)
        query = _read_graph(str(query_path), args.format)
        standing = session.subscribe(MatchRequest(query, options=options, tag=query_path.name))
        subscriptions.append((query_path.name, standing))

    applied = []
    try:
        for batch in batches:
            result = session.apply(batch, cross_validate=args.cross_validate)
            record = {
                "batch": batch.tag,  # the updates-file line number
                "graph_version": result.graph_version,
                "deltas": result.deltas,
                "cache_refreshed": result.cache_refreshed,
                "cache_invalidated": result.cache_invalidated,
                "appeared": result.appeared,
                "disappeared": result.disappeared,
                "seconds": round(result.seconds, 6),
            }
            if result.added_vertices:
                record["added_vertices"] = list(result.added_vertices)
            if subscriptions:
                record["events"] = [
                    {
                        "query": name,
                        "kind": event.kind,
                        "embedding": list(event.embedding),
                    }
                    for name, standing in subscriptions
                    for event in standing.drain()
                ]
            applied.append(record)
    except UpdateError as exc:
        if sink is not None:
            sink.close()
        raise SystemExit(f"update failed: {exc}")
    if sink is not None:
        sink.close()

    if args.out:
        _write_graph(session.data, args.out, args.format)
    payload = {
        "graph_version": session.graph_version,
        "batches": applied,
        "cache": session.cache.stats(),
        "cross_validated": bool(args.cross_validate),
    }
    if subscriptions:
        payload["standing"] = {
            name: sorted(list(emb) for emb in standing.embeddings)
            for name, standing in subscriptions
        }
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0


def cmd_serve_batch(args: argparse.Namespace) -> int:
    """``repro serve-batch``: batch queries through a persistent session."""
    from .service import BatchEngine, BatchJournal, DataGraphSession

    if args.journal and args.rounds != 1:
        raise SystemExit("--journal requires --rounds 1 (a journal keys on request index)")
    if args.telemetry_out and not args.metrics_out:
        raise SystemExit("--telemetry-out requires --metrics-out (it summarizes that stream)")
    journal = BatchJournal(args.journal) if args.journal else None
    if args.updates and args.journal:
        raise SystemExit("--updates and --journal are mutually exclusive "
                         "(a journal replays against one graph version)")
    update_batches = _read_update_batches(args.updates) if args.updates else []
    data = _read_graph(args.data, args.format)
    query_paths: list = []
    for spec in args.queries:
        path = Path(spec)
        if path.is_dir():
            files = sorted(p for p in path.iterdir() if p.is_file())
            if not files:
                raise SystemExit(f"no query files in directory {spec}")
            query_paths.extend(files)
        else:
            query_paths.append(path)
    queries = [(p, _read_graph(str(p), args.format)) for p in query_paths]
    observer, sink, aggregator = None, None, None
    if args.metrics_out:
        from .obs import JsonlSink, MetricsRegistry, TeeSink
        from .obs.telemetry import TelemetryAggregator

        sink = JsonlSink(args.metrics_out)
        # The aggregator folds the live stream into telemetry.window
        # events (latency percentiles, hit-rate, crash-rate) written to
        # the same sidecar; one window per batch round by default.
        aggregator = TelemetryAggregator(
            window_requests=args.window if args.window else max(1, len(queries)),
            out=sink,
        )
        observer = MetricsRegistry(sink=TeeSink(sink, aggregator))
    session = DataGraphSession(data, cache_size=args.cache_size, observer=observer)
    engine = BatchEngine(session, num_workers=args.workers)
    options = MatchOptions(
        limit=args.limit, time_limit=args.time_limit, count_only=args.count_only
    )
    requests = [
        MatchRequest(query, options=options, tag=path.name) for path, query in queries
    ]
    per_round = []
    results = []
    completed = failed = 0
    interrupted = False
    for round_index in range(args.rounds):
        try:
            batch = engine.run(requests, journal=journal)
        except KeyboardInterrupt:
            # The interrupt landed outside a search (e.g. preprocessing);
            # completed requests are already journaled — wind down.
            interrupted = True
            break
        completed += batch.completed
        failed += batch.failed
        per_round.append(
            {
                "round": round_index,
                "graph_version": session.graph_version,
                "completed": batch.completed,
                "failed": batch.failed,
                "cache_hits": batch.cache_hits,
                "cache_misses": batch.cache_misses,
                "hit_rate": round(batch.hit_rate, 4),
                "unique_queries": batch.unique_queries,
                "elapsed_seconds": round(batch.elapsed_seconds, 6),
            }
        )
        for item in batch.by_index():
            entry = {
                "round": round_index,
                "tag": item.tag,
                "status": item.status,
                "cache": item.cache,
            }
            if item.result is not None:
                entry["count"] = item.result.count
                entry["recursive_calls"] = item.result.stats.recursive_calls
                entry["preprocess_seconds"] = round(
                    item.result.stats.preprocess_seconds, 6
                )
                if item.result.timed_out:
                    entry["timed_out"] = True
            if item.result is not None and item.result.interrupted:
                entry["interrupted"] = True
                interrupted = True
            if item.error:
                entry["error"] = item.error
            results.append(entry)
        if interrupted:
            break
        if update_batches and round_index < args.rounds - 1:
            # Mutate between rounds: the next round's batch runs against
            # the new graph version through the rebased cache.
            update = session.apply(update_batches.pop(0))
            per_round[-1]["applied"] = {
                "graph_version": update.graph_version,
                "deltas": update.deltas,
                "cache_refreshed": update.cache_refreshed,
                "cache_invalidated": update.cache_invalidated,
            }
    if aggregator is not None:
        aggregator.close()  # close the final (possibly partial) window
    if sink is not None:
        sink.close()
    payload = {
        "queries": len(queries),
        "rounds": args.rounds,
        "requests": len(queries) * args.rounds,
        "completed": completed,
        "failed": failed,
        "workers": args.workers,
        "cache": session.cache.stats(),
        "per_round": per_round,
        "results": results,
    }
    if aggregator is not None:
        payload["telemetry"] = aggregator.summary()
        if args.telemetry_out:
            aggregator.export_json(args.telemetry_out)
    if interrupted:
        payload["interrupted"] = True
    json.dump(payload, sys.stdout, indent=2)
    print()
    if interrupted:
        return 130
    return 0 if failed == 0 else 1


def cmd_trace_show(args: argparse.Namespace) -> int:
    """``repro trace show``: list traces or render one request tree."""
    from .obs.telemetry import (
        collect_traces,
        read_events,
        render_trace_list,
        render_trace_tree,
    )

    try:
        events = read_events(args.events)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.events}: {exc}")
    if args.trace:
        print(render_trace_tree(events, args.trace))
        return 0 if any(e.get("trace_id") == args.trace for e in events) else 1
    print(render_trace_list(collect_traces(events)))
    return 0


def _top_watchdog(args: argparse.Namespace):
    from .obs.telemetry import SloWatchdog, default_slo_rules

    return SloWatchdog(
        default_slo_rules(
            p95_seconds=args.slo_p95,
            hit_rate_floor=args.slo_hit_rate,
            crash_rate_ceiling=args.slo_crash_rate,
        )
    )


def cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: windowed telemetry summary of a metrics stream."""
    import time as _time

    from .obs.telemetry import TelemetryAggregator, render_top

    aggregator = TelemetryAggregator(
        window_requests=args.window, watchdog=_top_watchdog(args)
    )
    try:
        stream = open(args.events, "r", encoding="utf-8")
    except OSError as exc:
        raise SystemExit(f"cannot read {args.events}: {exc}")

    def drain() -> None:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail; the writer may still be appending
            if isinstance(event, dict):
                aggregator.emit(event)

    with stream:
        if not args.follow:
            drain()
            aggregator.flush()
            print(render_top(aggregator))
            return 0
        try:
            while True:
                drain()
                print(render_top(aggregator))
                print("---")
                sys.stdout.flush()
                _time.sleep(args.interval)
        except KeyboardInterrupt:
            aggregator.flush()
            print(render_top(aggregator))
            return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: seeded fault sweeps gated on exact-answer equality."""
    from .resilience.chaos import DEFAULT_SCENARIOS, ChaosHarness
    from .resilience.faults import KINDS, SITES

    split = lambda v: [s.strip() for s in v.split(",") if s.strip()] if v else None  # noqa: E731
    sites, kinds = split(args.sites), split(args.kinds)
    for name, valid in ((sites, SITES), (kinds, KINDS)):
        for entry in name or ():
            if entry not in valid:
                raise SystemExit(f"unknown {entry!r}; choices: {', '.join(valid)}")
    scenarios = [
        (site, kind)
        for site, kind in DEFAULT_SCENARIOS
        if (sites is None or site in sites) and (kinds is None or kind in kinds)
    ]
    if not scenarios:
        raise SystemExit("no scenarios match the --sites/--kinds filters")
    observer, sink = None, None
    if args.metrics_out:
        from .obs import JsonlSink, MetricsRegistry

        sink = JsonlSink(args.metrics_out)
        observer = MetricsRegistry(sink=sink)
    try:
        harness = ChaosHarness(
            seed=args.seed,
            observer=observer,
            num_workers=args.workers,
            workdir=args.workdir,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    outcomes = harness.run(scenarios)
    if sink is not None:
        sink.close()
    payload = {
        "seed": args.seed,
        "scenarios": len(outcomes),
        "ok": sum(o.status == "ok" for o in outcomes),
        "skipped": sum(o.status == "skipped" for o in outcomes),
        "failed": sum(o.status in ("mismatch", "error") for o in outcomes),
        "results": [
            {
                "scenario": o.scenario,
                "site": o.site,
                "kind": o.kind,
                "status": o.status,
                "matched": o.matched,
                "fired": o.fired,
                "resumed": o.resumed,
                "elapsed_seconds": round(o.elapsed_seconds, 3),
                **({"detail": o.detail} if o.detail else {}),
            }
            for o in outcomes
        ],
    }
    json.dump(payload, sys.stdout, indent=2)
    print()
    return 0 if all(o.status in ("ok", "skipped") for o in outcomes) else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: run the static invariant checkers, exit 1 on findings."""
    from pathlib import Path

    from .lint import (
        BaselineError,
        UnknownCheckError,
        catalog,
        render_json,
        render_text,
        run_lint_report,
    )

    if args.list:
        for check_id, description in catalog():
            print(f"{check_id}  {description}")
        return 0
    split = lambda v: [s for s in v.split(",") if s.strip()] if v else None  # noqa: E731
    try:
        report = run_lint_report(
            root=args.root,
            select=split(args.select),
            ignore=split(args.ignore),
            jobs=args.jobs,
            baseline=Path(args.baseline) if args.baseline else None,
            update_baseline=args.update_baseline,
        )
    except (FileNotFoundError, UnknownCheckError, BaselineError) as exc:
        print(str(exc), file=sys.stderr)
        raise SystemExit(2)
    if args.metrics_out:
        from .obs import JsonlSink

        sink = JsonlSink(args.metrics_out)
        try:
            sink.emit(
                {
                    "event": "lint.run",
                    "files": report.files,
                    "findings": len(report.findings),
                    "elapsed_seconds": round(report.elapsed_seconds, 3),
                    "checkers": list(report.checkers),
                    "by_check": dict(report.by_check),
                    "baseline_suppressed": report.baseline_suppressed,
                    "stale_baseline": report.stale_baseline,
                    "jobs": report.jobs,
                }
            )
        finally:
            sink.close()
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report.findings))
        if report.baseline_suppressed:
            print(f"repro lint: {report.baseline_suppressed} baseline-suppressed")
    return 1 if report.findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAF subgraph matching (SIGMOD 2019 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    match_p = sub.add_parser("match", help="find embeddings of a query in a data graph")
    match_p.add_argument("query", help="query graph file")
    match_p.add_argument("data", help="data graph file")
    match_p.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
    match_p.add_argument("--limit", type=int, default=100_000, help="embedding cap (paper k)")
    match_p.add_argument("--time-limit", type=float, default=None, help="seconds")
    match_p.add_argument(
        "--algorithm",
        default="daf",
        help="daf (default) or a baseline: " + ", ".join(n.lower() for n in ALL_BASELINES),
    )
    match_p.add_argument("--order", default="path", choices=("path", "candidate"))
    match_p.add_argument("--no-failing-sets", action="store_true")
    match_p.add_argument("--induced", action="store_true", help="induced isomorphism")
    match_p.add_argument("--homomorphism", action="store_true", help="drop injectivity")
    match_p.add_argument("--count-only", action="store_true", help="omit embedding lists")
    match_p.add_argument(
        "--workers", type=int, default=1, help="parallel DAF worker processes (DAF only)"
    )
    match_p.add_argument(
        "--max-calls", type=int, default=None, help="recursive-call budget (DAF only)"
    )
    match_p.add_argument(
        "--max-memory-mb",
        type=float,
        default=None,
        help="estimated memory budget in MiB (DAF only)",
    )
    match_p.add_argument(
        "--resilient",
        action="store_true",
        help="wrap the matcher in the graceful-degradation chain (docs/robustness.md)",
    )
    match_p.add_argument(
        "--checkpoint-out",
        default=None,
        metavar="PATH",
        help="write the suspended search state here when the run is "
        "interrupted (Ctrl-C) or breaches a budget; resume with --resume",
    )
    match_p.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="continue a previous run from a --checkpoint-out file "
        "(same query/data/config; DAF with --workers 1 only)",
    )
    match_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="append observability events as JSONL (docs/observability.md)",
    )
    match_p.add_argument(
        "--profile",
        action="store_true",
        help="print phase timings and prune accounting to stderr",
    )
    match_p.add_argument(
        "--progress",
        action="store_true",
        help="live heartbeat lines on stderr for long searches",
    )
    match_p.set_defaults(func=cmd_match)

    info_p = sub.add_parser("info", help="print graph statistics")
    info_p.add_argument("graph")
    info_p.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
    info_p.set_defaults(func=cmd_info)

    convert_p = sub.add_parser("convert", help="convert between graph formats")
    convert_p.add_argument("input")
    convert_p.add_argument("output")
    convert_p.add_argument("--from-format", default="cfl", choices=("cfl", "edgelist"))
    convert_p.add_argument("--to-format", default="edgelist", choices=("cfl", "edgelist"))
    convert_p.set_defaults(func=cmd_convert)

    generate_p = sub.add_parser("generate", help="generate datasets or query workloads")
    generate_sub = generate_p.add_subparsers(dest="what", required=True)

    dataset_p = generate_sub.add_parser("dataset", help="materialize a registry dataset")
    dataset_p.add_argument("name", help="yeast, human, hprd, email, dblp, yago, twitter")
    dataset_p.add_argument("output")
    dataset_p.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
    dataset_p.set_defaults(func=cmd_generate_dataset)

    queries_p = generate_sub.add_parser("queries", help="extract a query set")
    queries_p.add_argument("data", help="data graph file")
    queries_p.add_argument("out_dir")
    queries_p.add_argument("--size", type=int, required=True)
    queries_p.add_argument("--density", default="nonsparse", choices=("sparse", "nonsparse"))
    queries_p.add_argument("--count", type=int, default=10)
    queries_p.add_argument("--seed", type=int, default=2019)
    queries_p.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
    queries_p.set_defaults(func=cmd_generate_queries)

    bench_p = sub.add_parser(
        "bench", help="run experiment drivers, manage run manifests (docs/benchmarks.md)"
    )
    bench_sub = bench_p.add_subparsers(dest="experiment", required=True)

    # Driver names stay first-class subcommands: `repro bench table2 --profile smoke`.
    for driver in ["table2", *(f"fig{n}" for n in range(9, 19))]:
        driver_p = bench_sub.add_parser(driver, help=f"run the {driver} driver")
        driver_p.add_argument("--profile", default="default", choices=("default", "smoke"))
        driver_p.set_defaults(func=cmd_bench, experiment=driver)

    run_p = bench_sub.add_parser("run", help="run drivers and write a BENCH_<n>.json manifest")
    run_p.add_argument("--profile", default="default", choices=("default", "smoke"))
    run_p.add_argument(
        "--figures",
        default="fig10",
        help="comma-separated driver names (table2, fig9..fig18); default fig10",
    )
    run_p.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory for the BENCH_<n>.json manifest (index auto-assigned)",
    )
    run_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="also mirror bench.run/bench.summary events as JSONL",
    )
    run_p.add_argument("--quiet", action="store_true", help="suppress per-figure tables")
    run_p.set_defaults(func=cmd_bench_run)

    compare_p = bench_sub.add_parser("compare", help="diff two manifests (regression gate)")
    compare_p.add_argument("baseline", help="baseline manifest (e.g. BENCH_0.json)")
    compare_p.add_argument("current", help="current manifest")
    compare_p.add_argument(
        "--counter-threshold",
        type=float,
        default=0.02,
        help="relative tolerance for deterministic counters (default 0.02)",
    )
    compare_p.add_argument(
        "--time-threshold",
        type=float,
        default=0.25,
        help="relative tolerance for wall-clock columns (default 0.25)",
    )
    compare_p.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 on deterministic-counter regressions (never on wall clock)",
    )
    compare_p.add_argument(
        "--only-changed", action="store_true", help="hide neutral cells from the table"
    )
    compare_p.set_defaults(func=cmd_bench_compare)

    history_p = bench_sub.add_parser("history", help="trend sparklines over BENCH_*.json")
    history_p.add_argument("--root", default=".", help="directory holding BENCH_*.json")
    history_p.add_argument("--metric", default="avg_calls", help="metric column to trend")
    history_p.add_argument("--figure", default=None, help="restrict to one figure")
    history_p.set_defaults(func=cmd_bench_history)

    hotspots_p = bench_sub.add_parser(
        "hotspots", help="per-vertex search-effort attribution (paper worked example)"
    )
    hotspots_p.add_argument("--query", default=None, help="query graph file (else worked example)")
    hotspots_p.add_argument("--data", default=None, help="data graph file (else worked example)")
    hotspots_p.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
    hotspots_p.add_argument("--top", type=int, default=5, help="hottest vertices to show")
    hotspots_p.add_argument("--limit", type=int, default=100_000, help="embedding cap")
    hotspots_p.add_argument(
        "--folded",
        default=None,
        metavar="PATH",
        help="write flamegraph.pl folded stacks here",
    )
    hotspots_p.set_defaults(func=cmd_bench_hotspots)

    explain_p = sub.add_parser(
        "explain",
        help="post-run search forensics: plans, instrumented runs, diffs "
        "(docs/explain.md)",
    )
    explain_sub = explain_p.add_subparsers(dest="explain_command", required=True)

    def _explain_instance_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "query", nargs="?", default=None, help="query graph file (else §6 example)"
        )
        parser.add_argument(
            "data", nargs="?", default=None, help="data graph file (else §6 example)"
        )
        parser.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
        parser.add_argument("--order", default="path", choices=("path", "candidate"))
        parser.add_argument(
            "--no-failing-sets",
            action="store_true",
            help="disable failing-set pruning",
        )
        parser.add_argument(
            "--json", default=None, metavar="PATH", help="also write JSON here"
        )

    plan_p = explain_sub.add_parser(
        "plan", help="static plan: BuildDAG root/order + BuildCS candidate sizes"
    )
    _explain_instance_args(plan_p)
    plan_p.set_defaults(func=cmd_explain_plan)

    analyze_p = explain_sub.add_parser(
        "analyze", help="instrumented run joined with the static plan"
    )
    _explain_instance_args(analyze_p)
    analyze_p.add_argument(
        "--algorithm",
        default="daf",
        help="daf (default) or a baseline name (ullmann, vf2, ...)",
    )
    analyze_p.add_argument("--limit", type=int, default=100_000, help="embedding cap")
    analyze_p.add_argument(
        "--time-limit", type=float, default=None, help="seconds before giving up"
    )
    analyze_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="also stream run events (incl. explain.report) to this JSONL file",
    )
    analyze_p.set_defaults(func=cmd_explain_analyze)

    diff_p = explain_sub.add_parser(
        "diff", help="classify per-vertex differences between two reports"
    )
    diff_p.add_argument("base", help="baseline explain report (JSON)")
    diff_p.add_argument("current", help="current explain report (JSON)")
    diff_p.add_argument(
        "--ratio",
        type=float,
        default=2.0,
        help="entered-count blowup factor that flags a regression",
    )
    diff_p.add_argument(
        "--min-delta",
        type=int,
        default=16,
        help="absolute entered-count change below which differences are noise",
    )
    diff_p.add_argument("--format", default="text", choices=("text", "json"))
    diff_p.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 when the diff contains any regression",
    )
    diff_p.set_defaults(func=cmd_explain_diff)

    update_p = sub.add_parser(
        "update",
        help="apply delta batches to a data graph through a session "
        "(docs/serving.md)",
    )
    update_p.add_argument("data", help="data graph file")
    update_p.add_argument(
        "updates",
        help="JSONL updates file: one batch per line, each a delta object "
        'like {"op": "insert-edge", "u": 0, "v": 2} or an array of them',
    )
    update_p.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
    update_p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the post-update graph here (tombstoned vertices are "
        "kept as isolated '__tombstone__' placeholders so ids stay stable)",
    )
    update_p.add_argument(
        "--queries",
        nargs="*",
        default=None,
        metavar="FILE",
        help="query graph files to register as standing queries; their "
        "appeared/disappeared events are reported per batch",
    )
    update_p.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="seconds per standing-query enumeration",
    )
    update_p.add_argument(
        "--cross-validate",
        action="store_true",
        help="rebuild every refreshed candidate space from cold and fail "
        "on any divergence from the incremental result",
    )
    update_p.add_argument(
        "--cache-size",
        type=int,
        default=64,
        help="prepared-query LRU capacity in entries (default 64)",
    )
    update_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="append update.batch and embedding.appeared/disappeared "
        "events as JSONL",
    )
    update_p.set_defaults(func=cmd_update)

    serve_p = sub.add_parser(
        "serve-batch",
        help="run a query batch through a persistent session (docs/serving.md)",
    )
    serve_p.add_argument("data", help="data graph file (loaded and indexed once)")
    serve_p.add_argument(
        "queries", nargs="+", help="query graph files and/or directories of them"
    )
    serve_p.add_argument("--format", default="cfl", choices=("cfl", "edgelist"))
    serve_p.add_argument(
        "--limit", type=int, default=100_000, help="embedding cap per query"
    )
    serve_p.add_argument(
        "--time-limit", type=float, default=None, help="seconds per query"
    )
    serve_p.add_argument(
        "--count-only", action="store_true", help="skip embedding collection"
    )
    serve_p.add_argument(
        "--workers", type=int, default=1, help="search-stage worker processes"
    )
    serve_p.add_argument(
        "--cache-size",
        type=int,
        default=64,
        help="prepared-query LRU capacity in entries (default 64)",
    )
    serve_p.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="run the batch N times through the same session "
        "(rounds after the first hit the warm cache)",
    )
    serve_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="append batch.request/batch.run events as JSONL "
        "(plus telemetry.window summaries; see `repro top`)",
    )
    serve_p.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="requests per telemetry window in the metrics stream "
        "(default: the batch size, i.e. one window per round)",
    )
    serve_p.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="write the aggregated telemetry windows/alerts as a JSON "
        "document (validated by scripts/check_metrics_schema.py); "
        "requires --metrics-out",
    )
    serve_p.add_argument(
        "--updates",
        default=None,
        metavar="FILE",
        help="JSONL updates file (same format as `repro update`); one "
        "batch is applied between consecutive rounds, so later rounds "
        "run against mutated graph versions through the rebased cache",
    )
    serve_p.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="persist per-request outcomes and in-flight checkpoints "
        "here; re-running with the same journal replays completed "
        "requests and resumes interrupted ones (requires --rounds 1)",
    )
    serve_p.set_defaults(func=cmd_serve_batch)

    trace_p = sub.add_parser(
        "trace", help="inspect request traces in a metrics JSONL stream"
    )
    trace_sub = trace_p.add_subparsers(dest="what", required=True)
    show_p = trace_sub.add_parser(
        "show", help="list traces, or render one request's span tree"
    )
    show_p.add_argument("events", help="metrics JSONL file (from --metrics-out)")
    show_p.add_argument(
        "--trace",
        default=None,
        metavar="ID",
        help="render this trace id as a tree with per-span phase/prune "
        "attribution (omit to list all traces in the stream)",
    )
    show_p.set_defaults(func=cmd_trace_show)

    top_p = sub.add_parser(
        "top",
        help="windowed telemetry summary of a metrics stream "
        "(docs/observability.md)",
    )
    top_p.add_argument("events", help="metrics JSONL file (from --metrics-out)")
    top_p.add_argument(
        "--follow",
        action="store_true",
        help="keep reading appended events and refresh the summary "
        "(Ctrl-C exits cleanly)",
    )
    top_p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh cadence with --follow (default 2)",
    )
    top_p.add_argument(
        "--window",
        type=int,
        default=16,
        metavar="N",
        help="completed requests per aggregation window (default 16)",
    )
    top_p.add_argument(
        "--slo-p95",
        type=float,
        default=None,
        metavar="SECONDS",
        help="alert when a window's p95 latency exceeds this many seconds",
    )
    top_p.add_argument(
        "--slo-hit-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="alert when a window's cache hit-rate falls below this (0..1)",
    )
    top_p.add_argument(
        "--slo-crash-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="alert when a window's worker crash rate exceeds this (0..1)",
    )
    top_p.set_defaults(func=cmd_top)

    chaos_p = sub.add_parser(
        "chaos",
        help="sweep seeded fault injections, gate on exact-answer equality",
    )
    chaos_p.add_argument("--seed", type=int, default=0, help="workload + injector seed")
    chaos_p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="parallel-scenario fan-out (must be >= 2 so kills hit forks)",
    )
    chaos_p.add_argument(
        "--sites",
        default=None,
        help="comma list of fault sites to sweep (default: all)",
    )
    chaos_p.add_argument(
        "--kinds",
        default=None,
        help="comma list of fault kinds to sweep (default: all)",
    )
    chaos_p.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="directory for scenario batch journals (default: a temp dir)",
    )
    chaos_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="append one chaos.run event per scenario as JSONL",
    )
    chaos_p.set_defaults(func=cmd_chaos)

    lint_p = sub.add_parser(
        "lint", help="statically check codebase invariants (docs/static-analysis.md)"
    )
    lint_p.add_argument(
        "--root", default=None, help="repository root (default: auto-detect)"
    )
    lint_p.add_argument("--format", default="text", choices=("text", "json"))
    lint_p.add_argument(
        "--select", default=None, metavar="IDS", help="comma-separated check ids to run"
    )
    lint_p.add_argument(
        "--ignore", default=None, metavar="IDS", help="comma-separated check ids to skip"
    )
    lint_p.add_argument(
        "--list", action="store_true", help="print the check catalog and exit"
    )
    lint_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan per-file checker passes out over N worker processes",
    )
    lint_p.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="suppress findings accepted in this baseline file; stale entries fail",
    )
    lint_p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline to accept exactly the current findings",
    )
    lint_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="append one lint.run event as JSONL",
    )
    lint_p.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # A downstream consumer (head, grep -q) closed the pipe; point
        # stdout at devnull so the interpreter's shutdown flush does not
        # raise a second time, and exit with the conventional 128+SIGPIPE.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    raise SystemExit(main())
