"""Generalized matching — the remaining §2 extensions: disconnected
queries, multi-label vertices, and edge labels.  (Directed graphs live
in :mod:`repro.directed`.)"""

from .disconnected import BRIDGE_LABEL, DisconnectedDAFMatcher, bridge_graphs
from .edgelabel import (
    EdgeLabeledDAFMatcher,
    EdgeLabeledGraph,
    build_edge_labeled_candidate_space,
    edge_labeled_candidates,
    is_edge_labeled_embedding,
)
from .multilabel import (
    MultiLabelDAFMatcher,
    is_multilabel_embedding,
    label_index,
    multilabel_candidates,
    multilabel_graph,
    passes_multilabel_nlf,
)

__all__ = [
    "BRIDGE_LABEL",
    "DisconnectedDAFMatcher",
    "EdgeLabeledDAFMatcher",
    "EdgeLabeledGraph",
    "MultiLabelDAFMatcher",
    "bridge_graphs",
    "build_edge_labeled_candidate_space",
    "edge_labeled_candidates",
    "is_edge_labeled_embedding",
    "is_multilabel_embedding",
    "label_index",
    "multilabel_candidates",
    "multilabel_graph",
    "passes_multilabel_nlf",
]
