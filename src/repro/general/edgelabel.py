"""Edge-labeled matching (the last of §2's "readily extended" cases).

Property graphs label their relationships ("knows", "cites", bond
types); an edge-labeled embedding additionally requires
``L_q(u, u') = L_G(M(u), M(u'))`` for every query edge.  As with the
directed extension, only the candidate layer changes: the DAG-graph DP
and CS edge materialization admit a data edge only when its label
matches the query edge's, and the unmodified engine searches the result.

:class:`EdgeLabeledGraph` wraps an undirected structure plus an
edge-label map; build one with ``add_edge(u, v, label)``.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Iterable
from typing import Callable, Optional

from ..core.backtrack import BacktrackEngine
from ..core.candidate_space import CandidateSpace
from ..core.config import MatchConfig
from ..core.dag import bfs_vertex_order
from ..graph.digraph import RootedDAG
from ..graph.graph import Graph
from ..graph.properties import is_connected
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    MatchResult,
    SearchStats,
    TimeoutSignal,
)


class EdgeLabeledGraph:
    """An undirected graph with one label per vertex *and* per edge."""

    def __init__(self) -> None:
        self._skeleton = Graph()
        self._edge_labels: dict[tuple[int, int], Hashable] = {}
        self._frozen = False

    @classmethod
    def build(
        cls,
        vertex_labels: Iterable[Hashable],
        edges: Iterable[tuple[int, int, Hashable]],
    ) -> "EdgeLabeledGraph":
        g = cls()
        for label in vertex_labels:
            g.add_vertex(label)
        for u, v, label in edges:
            g.add_edge(u, v, label)
        return g.freeze()

    def add_vertex(self, label: Hashable) -> int:
        return self._skeleton.add_vertex(label)

    def add_edge(self, u: int, v: int, label: Hashable) -> None:
        self._skeleton.add_edge(u, v)
        self._edge_labels[(u, v) if u < v else (v, u)] = label

    def freeze(self) -> "EdgeLabeledGraph":
        self._skeleton.freeze()
        self._frozen = True
        return self

    @property
    def skeleton(self) -> Graph:
        """The underlying vertex-labeled Graph (no edge labels)."""
        return self._skeleton

    def edge_label(self, u: int, v: int) -> Hashable:
        return self._edge_labels[(u, v) if u < v else (v, u)]

    def edge_label_counts(self, v: int) -> dict[tuple[Hashable, Hashable], int]:
        """Multiset of (neighbor vertex label, edge label) pairs at ``v``
        — the edge-labeled NLF signature."""
        counts: dict[tuple[Hashable, Hashable], int] = {}
        for w in self._skeleton.neighbors(v):
            key = (self._skeleton.label(w), self.edge_label(v, w))
            counts[key] = counts.get(key, 0) + 1
        return counts

    # Delegations used by matching.
    @property
    def num_vertices(self) -> int:
        return self._skeleton.num_vertices

    @property
    def num_edges(self) -> int:
        return self._skeleton.num_edges

    def vertices(self) -> range:
        return self._skeleton.vertices()

    def label(self, v: int) -> Hashable:
        return self._skeleton.label(v)

    def edges(self) -> Iterable[tuple[int, int, Hashable]]:
        for u, v in self._skeleton.edges():
            yield u, v, self.edge_label(u, v)

    def __repr__(self) -> str:
        return (
            f"EdgeLabeledGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"edge_labels={len(set(self._edge_labels.values()))})"
        )


def is_edge_labeled_embedding(
    mapping: Embedding, query: EdgeLabeledGraph, data: EdgeLabeledGraph
) -> bool:
    """Injective, vertex-label-, edge- and edge-label-preserving."""
    skeleton_q, skeleton_d = query.skeleton, data.skeleton
    if len(mapping) != skeleton_q.num_vertices or len(set(mapping)) != len(mapping):
        return False
    for u in skeleton_q.vertices():
        if skeleton_q.label(u) != skeleton_d.label(mapping[u]):
            return False
    for u, w in skeleton_q.edges():
        if not skeleton_d.has_edge(mapping[u], mapping[w]):
            return False
        if query.edge_label(u, w) != data.edge_label(mapping[u], mapping[w]):
            return False
    return True


def edge_labeled_candidates(
    query: EdgeLabeledGraph, data: EdgeLabeledGraph, u: int, use_nlf: bool = True
) -> set[int]:
    """C_ini with the edge-labeled NLF: per (vertex label, edge label)
    pair domination."""
    skeleton_q, skeleton_d = query.skeleton, data.skeleton
    needed = query.edge_label_counts(u) if use_nlf else {}
    degree_u = skeleton_q.degree(u)
    survivors = set()
    for v in skeleton_d.vertices_with_label(skeleton_q.label(u)):
        if skeleton_d.degree(v) < degree_u:
            continue
        if needed:
            available = data.edge_label_counts(v)
            if any(available.get(key, 0) < count for key, count in needed.items()):
                continue
        survivors.add(v)
    return survivors


def build_edge_labeled_candidate_space(
    query: EdgeLabeledGraph,
    data: EdgeLabeledGraph,
    refinement_steps: int = 3,
    use_local_filters: bool = True,
    injective: bool = True,
) -> tuple[CandidateSpace, RootedDAG]:
    """BuildDAG + BuildCS with edge-label-aware adjacency."""
    skeleton_q, skeleton_d = query.skeleton, data.skeleton
    if skeleton_q.num_vertices > 1 and not is_connected(skeleton_q):
        raise ValueError("query graph must be connected")
    if injective:
        candidate_sets = [
            edge_labeled_candidates(query, data, u, use_nlf=use_local_filters)
            for u in skeleton_q.vertices()
        ]
    else:
        candidate_sets = [
            set(skeleton_d.vertices_with_label(skeleton_q.label(u)))
            for u in skeleton_q.vertices()
        ]

    def score(u: int) -> float:
        degree = skeleton_q.degree(u)
        count = len(candidate_sets[u])
        return count / degree if degree else float(count)

    root = min(skeleton_q.vertices(), key=lambda u: (score(u), u))
    order = bfs_vertex_order(skeleton_q, skeleton_d, root)
    rank = {u: i for i, u in enumerate(order)}
    dag = RootedDAG(
        skeleton_q,
        [(u, w) if rank[u] < rank[w] else (w, u) for u, w in skeleton_q.edges()],
        root,
    )

    def compatible_neighbors(v: int, u: int, u_c: int) -> list[int]:
        """Data neighbors of ``v`` reachable over the right edge label."""
        wanted = query.edge_label(u, u_c)
        return [w for w in skeleton_d.neighbors(v) if data.edge_label(v, w) == wanted]

    passes = [dag.reverse(), dag]
    for step in range(refinement_steps):
        direction = passes[step % 2]
        for u in reversed(direction.topological_order()):
            children = direction.children(u)
            if not children:
                continue
            survivors: set[int] = set()
            for v in candidate_sets[u]:
                if all(
                    any(w in candidate_sets[u_c] for w in compatible_neighbors(v, u, u_c))
                    for u_c in children
                ):
                    survivors.add(v)
            candidate_sets[u] = survivors

    candidates = [sorted(c) for c in candidate_sets]
    candidate_index = [{v: i for i, v in enumerate(c)} for c in candidates]
    down: list[dict[int, list[tuple[int, ...]]]] = [{} for _ in skeleton_q.vertices()]
    for u in skeleton_q.vertices():
        for u_c in dag.children(u):
            child_index = candidate_index[u_c]
            down[u][u_c] = [
                tuple(
                    child_index[w]
                    for w in compatible_neighbors(v, u, u_c)
                    if w in child_index
                )
                for v in candidates[u]
            ]
    cs = CandidateSpace(
        query=skeleton_q,
        data=skeleton_d,
        dag=dag,
        candidates=candidates,
        candidate_index=candidate_index,
        down=down,
        refinement_steps=refinement_steps,
    )
    return cs, dag


class EdgeLabeledDAFMatcher:
    """DAF over edge-labeled graphs (same contract as DAFMatcher)."""

    def __init__(self, config: Optional[MatchConfig] = None) -> None:
        self.config = config if config is not None else MatchConfig()
        if self.config.induced:
            raise ValueError("induced matching is not supported for edge-labeled graphs")
        self.name = f"{self.config.variant_name}-edgelabeled"

    def match(
        self,
        query: EdgeLabeledGraph,
        data: EdgeLabeledGraph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        start = time.perf_counter()
        cs, _dag = build_edge_labeled_candidate_space(
            query,
            data,
            refinement_steps=self.config.refinement_steps,
            use_local_filters=self.config.use_local_filters,
            injective=self.config.injective,
        )
        stats = SearchStats(
            candidates_total=cs.size,
            filter_iterations=cs.refinement_steps,
            preprocess_seconds=time.perf_counter() - start,
        )
        result = MatchResult(stats=stats)
        if cs.is_empty():
            return result
        engine = BacktrackEngine(
            cs,
            self.config,
            limit=limit,
            deadline=Deadline(time_limit),
            stats=stats,
            on_embedding=on_embedding,
        )
        search_start = time.perf_counter()
        try:
            engine.run()
        except TimeoutSignal:
            result.timed_out = True
        stats.search_seconds = time.perf_counter() - search_start
        result.embeddings = engine.embeddings
        result.limit_reached = engine.limit_reached
        return result

    def count(self, query: EdgeLabeledGraph, data: EdgeLabeledGraph, **kwargs) -> int:
        # Not the deprecated interfaces.Matcher shim: positional match()
        # is this subsystem's own surface.
        return self.match(query, data, **kwargs).count  # lint: ignore[IFC003]
