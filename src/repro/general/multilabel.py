"""Multi-label vertices (paper §2's extension, implemented).

Vertices carry *sets* of labels; a mapping is label-preserving when the
query vertex's label set is a **subset** of its image's:
``L_q(u) ⊆ L_G(v)``.  This is the RDF/property-graph setting where an
entity has several types.

Representation: plain :class:`~repro.graph.graph.Graph` objects whose
vertex labels are ``frozenset`` instances (:func:`multilabel_graph`
builds them).  Only the candidate layer changes:

- candidates are computed by subset containment over a per-label inverted
  index, with degree domination;
- the NLF generalizes per label: for every label ``l``, ``v`` needs at
  least as many neighbors carrying ``l`` as ``u`` has neighbors requiring
  ``l``;
- DAG-graph DP and the engine run unchanged via the
  ``initial_sets`` hook of :func:`~repro.core.candidate_space.build_candidate_space`.

Leaf decomposition is disabled: its combinatorics assume same-label
leaves share candidates and different-label leaves never collide, which
subset semantics breaks (a ``{A}`` leaf and a ``{B}`` leaf both match an
``{A, B}`` vertex).
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Iterable
from typing import Callable, Optional

from ..core.backtrack import BacktrackEngine
from ..core.candidate_space import build_candidate_space
from ..core.config import MatchConfig
from ..core.dag import bfs_vertex_order
from ..graph.digraph import RootedDAG
from ..graph.graph import Graph
from ..graph.properties import is_connected
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    MatchResult,
    SearchStats,
    TimeoutSignal,
)


def multilabel_graph(labels: Iterable[Iterable[object]], edges) -> Graph:
    """A graph whose vertex labels are frozensets of atomic labels."""
    return Graph(labels=[frozenset(label_set) for label_set in labels], edges=edges)


def label_index(data: Graph) -> dict[object, set[int]]:
    """Inverted index: atomic label -> data vertices carrying it."""
    index: dict[object, set[int]] = {}
    for v in data.vertices():
        for atom in data.label(v):
            index.setdefault(atom, set()).add(v)
    return index


def multilabel_candidates(
    query: Graph,
    data: Graph,
    u: int,
    index: Optional[dict[object, set[int]]] = None,
    check_degree: bool = True,
) -> set[int]:
    """C_ini under subset semantics: containment + degree domination.

    ``check_degree=False`` drops the (injectivity-assuming) degree filter
    — used in homomorphism mode.
    """
    if index is None:
        index = label_index(data)
    required = query.label(u)
    degree_u = query.degree(u) if check_degree else 0
    if not required:  # unlabeled query vertex matches anything
        return {v for v in data.vertices() if data.degree(v) >= degree_u}
    atom_iter = iter(required)
    pool = set(index.get(next(atom_iter), set()))
    for atom in atom_iter:
        pool &= index.get(atom, set())
        if not pool:
            return set()
    return {v for v in pool if data.degree(v) >= degree_u}


def passes_multilabel_nlf(query: Graph, data: Graph, u: int, v: int) -> bool:
    """Per-atomic-label neighbor-count domination."""
    needed: dict[object, int] = {}
    for w in query.neighbors(u):
        for atom in query.label(w):
            needed[atom] = needed.get(atom, 0) + 1
    if not needed:
        return True
    available: dict[object, int] = {}
    for x in data.neighbors(v):
        for atom in data.label(x):
            available[atom] = available.get(atom, 0) + 1
    return all(available.get(atom, 0) >= count for atom, count in needed.items())


def is_multilabel_embedding(mapping: Embedding, query: Graph, data: Graph) -> bool:
    """Injective, subset-label-preserving, edge-preserving."""
    if len(mapping) != query.num_vertices or len(set(mapping)) != len(mapping):
        return False
    for u in query.vertices():
        if not query.label(u) <= data.label(mapping[u]):
            return False
    return all(data.has_edge(mapping[u], mapping[w]) for u, w in query.edges())


class MultiLabelDAFMatcher:
    """DAF under subset-label semantics.

    Queries and data are :func:`multilabel_graph` objects; everything
    else matches the :class:`~repro.core.matcher.DAFMatcher` contract.
    """

    def __init__(self, config: Optional[MatchConfig] = None) -> None:
        base = config if config is not None else MatchConfig()
        if base.induced:
            raise ValueError("induced matching is not supported for multi-label graphs")
        # Leaf combinatorics assume exact-label candidate disjointness.
        self.config = dataclasses.replace(base, leaf_decomposition=False)
        self.name = f"{self.config.variant_name}-multilabel"

    def match(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        query._require_frozen()
        data._require_frozen()
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        if query.num_vertices > 1 and not is_connected(query):
            raise ValueError("query graph must be connected (wrap with the "
                             "disconnected-query matcher otherwise)")
        start = time.perf_counter()
        index = label_index(data)
        if self.config.injective:
            initial_sets = [
                {
                    v
                    for v in multilabel_candidates(query, data, u, index)
                    if not self.config.use_local_filters
                    or passes_multilabel_nlf(query, data, u, v)
                }
                for u in query.vertices()
            ]
        else:
            # Homomorphisms: degree/NLF assume injectivity; label-only.
            initial_sets = [
                multilabel_candidates(query, data, u, index, check_degree=False)
                for u in query.vertices()
            ]

        # Root rule over the true candidate counts; the BFS order's label
        # frequency (exact-set frequency) is only a tie-break heuristic.
        def score(u: int) -> float:
            degree = query.degree(u)
            count = len(initial_sets[u])
            return count / degree if degree else float(count)

        root = min(query.vertices(), key=lambda u: (score(u), u))
        order = bfs_vertex_order(query, data, root)
        rank = {u: i for i, u in enumerate(order)}
        dag_edges = [
            (u, w) if rank[u] < rank[w] else (w, u) for u, w in query.edges()
        ]
        dag = RootedDAG(query, dag_edges, root)
        cs = build_candidate_space(
            query,
            data,
            dag,
            refinement_steps=self.config.refinement_steps,
            refine_to_fixpoint=self.config.refine_to_fixpoint,
            use_local_filters=False,  # folded into initial_sets above
            initial_sets=initial_sets,
        )
        stats = SearchStats(
            candidates_total=cs.size,
            filter_iterations=cs.refinement_steps,
            preprocess_seconds=time.perf_counter() - start,
        )
        result = MatchResult(stats=stats)
        if cs.is_empty():
            return result
        engine = BacktrackEngine(
            cs,
            self.config,
            limit=limit,
            deadline=Deadline(time_limit),
            stats=stats,
            on_embedding=on_embedding,
        )
        search_start = time.perf_counter()
        try:
            engine.run()
        except TimeoutSignal:
            result.timed_out = True
        stats.search_seconds = time.perf_counter() - search_start
        result.embeddings = engine.embeddings
        result.limit_reached = engine.limit_reached
        return result

    def count(self, query: Graph, data: Graph, **kwargs) -> int:
        # Not the deprecated interfaces.Matcher shim: positional match()
        # is this subsystem's own surface.
        return self.match(query, data, **kwargs).count  # lint: ignore[IFC003]
