"""Disconnected query graphs (paper §2's extension, implemented).

DAF requires a connected query (the DAG ordering walks edges), but §2
notes disconnected queries are a routine extension.  The clean reduction
used here: add a fresh *bridge* vertex with a unique label, adjacent to
one vertex of every query component, and a corresponding bridge vertex
in the data graph adjacent to **all** data vertices.  Then

    embeddings of q∪bridge in G∪bridge  <=>  embeddings of q in G

because the bridge can only map to the bridge (unique label), its query
edges are trivially satisfied (the data bridge neighbors everything),
and the remaining vertices must form an ordinary injective embedding —
crucially, *injectivity across components* comes for free from the
single search.  The wrapper strips the bridge coordinate from results.

Cost: one data-graph copy with |V(G)| extra edges per distinct data
graph (cached), and a query-DAG whose root is typically the bridge.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.config import MatchConfig
from ..core.matcher import DAFMatcher
from ..graph.graph import Graph
from ..graph.properties import connected_components
from ..interfaces import (
    DEFAULT_LIMIT,
    Embedding,
    Matcher,
    MatchResult,
    validate_inputs,
)

#: The reserved bridge label; a data graph already using it is rejected
#: loudly rather than silently miscounted.
BRIDGE_LABEL = "__repro_bridge__"


def bridge_graphs(query: Graph, data: Graph) -> tuple[Graph, Graph]:
    """The bridged (connected) query and bridged data graph."""
    if BRIDGE_LABEL in data.distinct_labels() or BRIDGE_LABEL in query.distinct_labels():
        raise ValueError(f"the reserved label {BRIDGE_LABEL!r} appears in the input")
    bridged_query = query.copy()
    bridge_q = bridged_query.add_vertex(BRIDGE_LABEL)
    for component in connected_components(query):
        bridged_query.add_edge(bridge_q, component[0])
    bridged_query.freeze()

    bridged_data = data.copy()
    bridge_d = bridged_data.add_vertex(BRIDGE_LABEL)
    for v in data.vertices():
        bridged_data.add_edge(bridge_d, v)
    bridged_data.freeze()
    return bridged_query, bridged_data


class DisconnectedDAFMatcher(Matcher):
    """DAF accepting disconnected (and connected) query graphs.

    Same contract as :class:`~repro.core.matcher.DAFMatcher`; connected
    queries are delegated untouched, so this wrapper is a safe default
    when query connectivity is unknown.
    """

    def __init__(self, config: Optional[MatchConfig] = None) -> None:
        self.config = config if config is not None else MatchConfig()
        if self.config.induced:
            # The data bridge would violate every non-edge involving it.
            raise ValueError("induced matching is not supported for disconnected queries")
        self.name = f"{self.config.variant_name}-disconnected"
        self._matcher = DAFMatcher(self.config)

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        validate_inputs(query, data)
        if len(connected_components(query)) <= 1:
            return self._matcher._match_impl(
                query, data, limit=limit, time_limit=time_limit, on_embedding=on_embedding
            )
        bridged_query, bridged_data = bridge_graphs(query, data)
        n = query.num_vertices

        stripped_callback = None
        if on_embedding is not None:

            def stripped_callback(embedding: Embedding) -> None:
                on_embedding(embedding[:n])

        result = self._matcher._match_impl(
            bridged_query,
            bridged_data,
            limit=limit,
            time_limit=time_limit,
            on_embedding=stripped_callback,
        )
        result.embeddings = [embedding[:n] for embedding in result.embeddings]
        return result
