"""Persistent data-graph sessions.

A :class:`DataGraphSession` amortizes everything that is per-*data-graph*
rather than per-query:

- the graph is frozen once and its :class:`repro.graph.GraphIndex` is
  materialized eagerly (degree-sorted label buckets, NLF signatures,
  max-neighbor degrees), so the C_ini and MND/NLF filters inside
  BuildDAG/BuildCS — and the baselines' candidate filters — become index
  lookups instead of per-call scans;
- prepared queries (DAG + CS) are retained in a
  :class:`~repro.service.PreparedQueryCache` keyed by WL canonical hash,
  so a repeated or isomorphic query skips BuildDAG + BuildCS entirely
  and goes straight to Backtrack.

Results are bit-identical to the sessionless path: the index fast paths
compute exactly the same candidate sets in the same order, and a cache
hit replays the search over the identical prepared structure (embeddings
of an isomorphic-but-relabeled probe are translated through the verified
vertex bijection, which preserves the embedding *set*).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

from ..core.matcher import DAFMatcher, PreparedQuery
from ..graph.graph import Graph
from ..interfaces import (
    Matcher,
    MatchRequest,
    MatchResult,
    SearchStats,
    UnsupportedOptionError,
)
from ..obs.telemetry import TraceContext, TraceIdAllocator, resumed_context
from ..resilience.budget import BudgetExceeded
from . import dynamic
from .cache import PreparedQueryCache


def _remap(embedding: tuple[int, ...], pi: tuple[int, ...]) -> tuple[int, ...]:
    """Translate an embedding found in cached-query coordinates back to
    the probe query's coordinates (``pi``: probe vertex -> cached vertex)."""
    return tuple(embedding[pi[u]] for u in range(len(pi)))


class DataGraphSession:
    """One resident data graph, shared indexes, and a prepared-query cache.

    Parameters
    ----------
    data:
        The data graph to serve queries against.  Frozen on entry (if not
        already) and indexed once via :meth:`repro.graph.Graph.ensure_index`.
    matcher:
        Default matcher for :meth:`run`; a :class:`DAFMatcher` (whose
        ``prepare``/``search`` split is what the cache retains) unless
        overridden.  Non-DAF matchers still benefit from the shared graph
        index but bypass the prepared cache.
    cache_size:
        Prepared-query LRU capacity (entries, not buckets).
    observer:
        Optional :class:`repro.obs.MetricsRegistry`; receives the
        ``cache_hit``/``cache_miss``/``cache_eviction`` counters and the
        usual per-search spans/counters for session-run queries.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> from repro.interfaces import MatchRequest
    >>> data = Graph(labels=["A", "B", "B"], edges=[(0, 1), (0, 2), (1, 2)])
    >>> session = DataGraphSession(data)
    >>> query = Graph(labels=["A", "B"], edges=[(0, 1)])
    >>> sorted(session.run(MatchRequest(query)).embeddings)
    [(0, 1), (0, 2)]
    >>> session.cache.stats()["misses"]
    1
    >>> sorted(session.run(MatchRequest(query)).embeddings)  # cache hit
    [(0, 1), (0, 2)]
    >>> session.cache.stats()["hits"]
    1
    """

    def __init__(
        self,
        data: Graph,
        matcher: Optional[Matcher] = None,
        cache_size: int = 64,
        observer=None,
    ) -> None:
        if not data.frozen:
            data.freeze()
        data.ensure_index()
        self.data = data
        self.matcher: Matcher = matcher if matcher is not None else DAFMatcher()
        self.observer = observer
        self.cache = PreparedQueryCache(cache_size, observer=observer)
        # Deterministic per-session trace ids: request N is always tN
        # (same-seed reruns produce bit-identical streams).
        self.traces = TraceIdAllocator()
        # Dynamic-graph state: the mutation counter and the standing
        # queries notified after every applied batch (repro.service.dynamic).
        self._graph_version = 0
        self._subscriptions: dict[str, "dynamic.StandingQuery"] = {}
        self._subscription_seq = 0

    # ------------------------------------------------------------------
    def run(
        self,
        request: MatchRequest,
        matcher: Optional[Matcher] = None,
        trace: Optional[TraceContext] = None,
    ) -> MatchResult:
        """Execute one :class:`~repro.interfaces.MatchRequest` against the
        session's data graph.

        ``request.data`` must be ``None`` (the session supplies its graph)
        or the session's graph itself; anything else is an error — a
        session's cache entries are only valid for its own graph.

        When the session is observed, every event the request emits is
        stamped with a :class:`~repro.obs.TraceContext` — the one passed
        in (``BatchEngine`` pre-allocates), the resumed request's original
        context (when ``options.resume_from`` carries one), or a fresh id
        from the session's allocator.
        """
        matcher = matcher if matcher is not None else self.matcher
        if request.data is not None and request.data is not self.data:
            raise ValueError(
                "request carries a different data graph than this session; "
                "open a separate DataGraphSession for it"
            )
        observer = self.observer
        previous = None
        if observer is not None:
            if trace is None:
                trace = self._request_trace(request)
            previous = observer.trace
            observer.trace = trace
        try:
            if isinstance(matcher, DAFMatcher):
                return self._run_daf(matcher, request)
            bound = MatchRequest(
                query=request.query,
                data=self.data,
                options=request.options,
                tag=request.tag,
            )
            return matcher.run_request(bound)
        finally:
            if observer is not None:
                observer.trace = previous

    def _request_trace(self, request: MatchRequest) -> TraceContext:
        """The context a request runs under: resume lineage wins (the
        continuation stays inside the original request's trace), else a
        fresh deterministic id."""
        resume = request.options.resume_from
        payload = None
        if resume is not None:
            payload = (
                resume.get("trace")
                if isinstance(resume, dict)
                else getattr(resume, "trace", None)
            )
        resumed = resumed_context(payload)
        if resumed is not None:
            return resumed
        return self.traces.allocate()

    def warm(self, queries) -> int:
        """Prepare (or touch) each query so later requests hit the cache.

        Returns the number of queries that were *built* (cache misses).
        """
        matcher = self.matcher
        if not isinstance(matcher, DAFMatcher):
            raise TypeError("warm() requires the session matcher to be a DAFMatcher")
        built = 0
        for query in queries:
            _prepared, _pi, _seconds, state = self._lookup_or_prepare(matcher, query, None)
            if state == "miss":
                built += 1
        return built

    # ------------------------------------------------------------------
    # Dynamic graphs and continuous queries (repro.service.dynamic)
    # ------------------------------------------------------------------
    @property
    def graph_version(self) -> int:
        """Monotone mutation counter: 0 at construction, +1 per applied
        batch.  Mirrored in :meth:`PreparedQueryCache.stats`."""
        return self._graph_version

    def apply(self, batch, cross_validate: bool = False):
        """Apply an :class:`~repro.interfaces.UpdateBatch` of graph deltas.

        Atomically replaces the session's data graph with the mutated
        version, bumps :attr:`graph_version`, refreshes the graph index
        and every cached prepared query incrementally (entries whose DAG
        the batch re-oriented are invalidated instead), and notifies all
        standing queries with the exact appeared/disappeared embedding
        difference.  Returns an :class:`repro.service.UpdateResult`.

        ``cross_validate=True`` additionally rebuilds every refreshed CS
        cold and raises :class:`~repro.interfaces.UpdateError` on any
        divergence — the incremental path's equivalence check.

        Checkpoints taken before a batch (``options.resume_from``) are
        tied to the pre-batch graph: resuming them afterwards is the
        caller's responsibility (re-run instead when in doubt).
        """
        return dynamic.apply_batch(self, batch, cross_validate=cross_validate)

    def subscribe(self, request: MatchRequest):
        """Register ``request`` as a continuous query.

        Runs one full enumeration as the baseline, then streams the exact
        embedding difference after every :meth:`apply` as
        ``embedding.appeared`` / ``embedding.disappeared`` events.  Only
        ``time_limit`` and ``budget`` options are meaningful here; any
        other non-default option raises
        :class:`~repro.interfaces.UnsupportedOptionError`.  Returns the
        :class:`repro.service.StandingQuery`.
        """
        return dynamic.subscribe(self, request)

    @property
    def subscriptions(self) -> tuple:
        """The active standing queries, in subscription order."""
        return tuple(self._subscriptions.values())

    # ------------------------------------------------------------------
    def _lookup_or_prepare(
        self, matcher: DAFMatcher, query: Graph, budget, observer=None
    ) -> tuple[PreparedQuery, Optional[tuple[int, ...]], float, str]:
        """Cache lookup, falling back to a full BuildDAG + BuildCS.

        Returns ``(prepared, pi, preprocess_seconds, "hit"|"miss")``;
        ``pi`` is ``None`` when no coordinate translation is needed
        (miss, or hit under the identity).  May raise
        :class:`~repro.resilience.BudgetExceeded` from the build.
        ``observer`` overrides the session registry for the build itself
        (the explain path routes it to a per-request registry); the
        ``cache_lookup`` span always lands on the session registry.
        """
        build_observer = observer if observer is not None else self.observer
        start = time.perf_counter()
        found = self.cache.lookup(query)
        if self.observer is not None:
            self.observer.record_span("cache_lookup", time.perf_counter() - start)
        if found is not None:
            entry, pi = found
            if pi == tuple(range(query.num_vertices)):
                pi = None
            # A hit's preprocessing cost is the lookup itself (hash +
            # isomorphism verification); the dag_build/cs_construct spans
            # are *not* recorded, which is how the bench measures the
            # amortization.
            return entry.prepared, pi, time.perf_counter() - start, "hit"
        # keep_trail: sessions serve mutable graphs, and the refinement
        # trail is what lets apply() refresh this entry incrementally.
        if build_observer is not None:
            prepared = matcher.prepare(
                query, self.data, budget=budget, observer=build_observer, keep_trail=True
            )
        else:
            prepared = matcher.prepare(query, self.data, budget=budget, keep_trail=True)
        self.cache.insert(query, prepared)
        return prepared, None, time.perf_counter() - start, "miss"

    def _run_daf(self, matcher: DAFMatcher, request: MatchRequest) -> MatchResult:
        options = request.options
        unsupported = [
            name
            for name in options.non_default_fields()
            if name not in matcher.supported_options
        ]
        if unsupported:
            raise UnsupportedOptionError(matcher, unsupported)
        budget = options.budget
        explain_registry = None
        if options.explain:
            # The report's per-vertex actuals must equal the registry
            # totals for exactly this request, so the run is observed by
            # a dedicated registry sharing the session sink/trace rather
            # than the session-wide accumulating one.
            from ..obs.metrics import MetricsRegistry

            explain_registry = MetricsRegistry(
                sink=getattr(self.observer, "sink", None)
            )
            if self.observer is not None and self.observer.trace is not None:
                explain_registry.trace = self.observer.trace
        try:
            prepared, pi, preprocess, _state = self._lookup_or_prepare(
                matcher, request.query, budget, observer=explain_registry
            )
        except BudgetExceeded as exc:
            result = MatchResult()
            result.budget_breach = exc.dimension
            result.timed_out = exc.dimension == "time"
            return result
        remaining = None
        if options.time_limit is not None:
            remaining = options.time_limit - preprocess
            if remaining <= 0:
                result = MatchResult(
                    stats=SearchStats(
                        candidates_total=prepared.cs.size,
                        filter_iterations=prepared.cs.refinement_steps,
                        preprocess_seconds=preprocess,
                    )
                )
                result.timed_out = True
                return result
        search_matcher = matcher
        if options.count_only and matcher.config.collect_embeddings:
            search_matcher = DAFMatcher(
                dataclasses.replace(matcher.config, collect_embeddings=False),
                observer=matcher.observer,
            )
        on_embedding = options.on_embedding
        if pi is not None and on_embedding is not None:
            user_callback = on_embedding

            def on_embedding(embedding, _cb=user_callback, _pi=pi):
                _cb(_remap(embedding, _pi))

        result = search_matcher.search(
            prepared,
            limit=options.resolved_limit,
            time_limit=remaining,
            on_embedding=on_embedding,
            budget=budget,
            observer=explain_registry if explain_registry is not None else self.observer,
            resume_from=options.resume_from,
        )
        result.stats.preprocess_seconds = preprocess
        if pi is not None and result.embeddings:
            result.embeddings = [_remap(e, pi) for e in result.embeddings]
        if explain_registry is not None:
            # A cache hit replays the *cached* query's prepared structure,
            # so the per-vertex dims come back in its coordinates; pi
            # translates them like the embeddings above.
            from ..obs.explain import attach_report, explain as build_plan

            plan = build_plan(request.query, self.data, matcher.config)
            attach_report(
                result,
                algorithm=matcher.name,
                query=request.query,
                data=self.data,
                plan=plan,
                registry=explain_registry,
                pi=pi,
            )
        return result

    def __repr__(self) -> str:
        return (
            f"DataGraphSession(|V|={self.data.num_vertices}, "
            f"|E|={self.data.num_edges}, matcher={self.matcher.name!r}, "
            f"cache={len(self.cache)}/{self.cache.capacity})"
        )
