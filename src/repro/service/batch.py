"""Batch execution over a data-graph session.

:class:`BatchEngine` takes a list of :class:`~repro.interfaces.MatchRequest`
objects and executes them against one :class:`DataGraphSession`:

- **deduplication** — requests whose queries are isomorphic *and* whose
  options agree are grouped; the group leader runs once and followers
  receive the leader's result translated through the verified vertex
  bijection (so each follower's embeddings are in its own coordinates);
- **caching** — every leader goes through the session's prepared-query
  cache, so repeated shapes across *batches* skip preprocessing too;
- **shared budget** — an optional :class:`repro.resilience.Budget`
  governs the whole batch: in sequential mode every request runs under
  it directly (all three dimensions); in parallel mode its wall-clock
  dimension caps each worker's deadline (calls/memory cannot be summed
  across processes and are not enforced there);
- **parallel search** — with ``num_workers > 1``, preprocessing stays in
  the parent (keeping the cache and its counters consistent) and the
  search stage fans out across forked worker processes in the style of
  :class:`repro.extensions.ParallelDAFMatcher`: each job gets a result
  pipe, crashed workers are retried once, and results stream back in
  completion order.

:meth:`BatchEngine.run_iter` yields one :class:`BatchItem` per request
in completion order; :meth:`BatchEngine.run` collects them and returns a
:class:`BatchResult` summary.  Under an observer the engine emits one
``batch.request`` event per completed request and one ``batch.run``
event per batch (see ``repro.obs.schema``).

Batches are **resumable**: pass a :class:`BatchJournal` and every
completed request is persisted to ``outcomes.jsonl`` as it finishes,
while interrupted searches (Ctrl-C, budget breach) persist their
:class:`~repro.resilience.checkpoint.SearchCheckpoint` to
``ckpt_<index>.json``.  Re-running the same batch with the same journal
replays completed requests from disk (``cache="journal"``) and resumes
checkpointed ones from where they stopped.
"""

from __future__ import annotations

import copy
import json
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

from ..core.matcher import DAFMatcher
from ..graph.canonical import canonical_hash
from ..interfaces import MatchRequest, MatchResult, SearchStats, UnsupportedOptionError
from ..obs.telemetry import TraceContext, resumed_context
from ..resilience.checkpoint import CheckpointMismatchError, SearchCheckpoint
from .cache import find_isomorphism
from .session import DataGraphSession, _remap

# Fork-shared slot for the job a worker should run: set in the parent
# immediately before each Process.start() (fork snapshots it copy-on-write,
# so concurrent workers each hold their own job).
_BATCH_SHARED: dict[str, object] = {}


@dataclass
class BatchItem:
    """Outcome of one request in a batch, yielded in completion order."""

    index: int
    tag: Any
    status: str  # "ok" | "error"
    result: Optional[MatchResult]
    #: How the request's preprocessing was satisfied: ``"hit"`` /
    #: ``"miss"`` (prepared-query cache), ``"dedup"`` (follower of an
    #: isomorphic leader in the same batch), ``"bypass"`` (non-DAF
    #: matcher — no prepared cache on that path).
    cache: str
    error: str = ""
    elapsed_seconds: float = 0.0


@dataclass
class BatchResult:
    """Everything :meth:`BatchEngine.run` learned about one batch."""

    items: list[BatchItem] = field(default_factory=list)
    completed: int = 0
    failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    unique_queries: int = 0
    workers: int = 1
    elapsed_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Cache hits over cache lookups for this batch (dedup followers
        never reach the cache and are excluded)."""
        total = self.cache_hits + self.cache_misses
        return (self.cache_hits / total) if total else 0.0

    def by_index(self) -> list[BatchItem]:
        """Items reordered to match the submitted request list."""
        return sorted(self.items, key=lambda item: item.index)


class BatchJournal:
    """Crash-safe persistence for one batch: per-request outcomes plus
    in-flight search checkpoints, all under one directory.

    - ``outcomes.jsonl`` — one line per *completed* request (appended as
      it finishes; a torn final line from a killed writer is tolerated);
    - ``ckpt_<index>.json`` — the suspended search state of a request
      that was interrupted mid-search, cleared once it completes.

    Feed the same journal back into :meth:`BatchEngine.run_iter` and the
    engine replays completed requests from disk (``cache="journal"``)
    and resumes checkpointed ones instead of restarting them.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.outcomes_path = self.root / "outcomes.jsonl"

    # -- completed outcomes -------------------------------------------
    def load(self) -> dict[int, dict]:
        """All persisted outcome records, by request index (last wins)."""
        records: dict[int, dict] = {}
        if not self.outcomes_path.exists():
            return records
        with open(self.outcomes_path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a killed writer
                records[record["index"]] = record
        return records

    def record(self, item: BatchItem) -> None:
        """Append one completed item (embeddings included, so a replay
        can reconstruct the full :class:`MatchResult`)."""
        record: dict[str, Any] = {
            "index": item.index,
            "status": item.status,
            "cache": item.cache,
            "error": item.error,
            "elapsed_seconds": item.elapsed_seconds,
        }
        result = item.result
        if result is not None:
            record["result"] = {
                "embeddings": [list(e) for e in result.embeddings],
                "embeddings_found": result.stats.embeddings_found,
                "recursive_calls": result.stats.recursive_calls,
                "search_seconds": result.stats.search_seconds,
                "preprocess_seconds": result.stats.preprocess_seconds,
                "limit_reached": result.limit_reached,
                "timed_out": result.timed_out,
            }
        with open(self.outcomes_path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(record) + "\n")
            stream.flush()

    def replay_item(self, index: int, record: dict, request: MatchRequest) -> BatchItem:
        """Rebuild the :class:`BatchItem` a persisted record describes."""
        result = None
        payload = record.get("result")
        if payload is not None:
            stats = SearchStats()
            stats.embeddings_found = payload["embeddings_found"]
            stats.recursive_calls = payload["recursive_calls"]
            stats.search_seconds = payload["search_seconds"]
            stats.preprocess_seconds = payload["preprocess_seconds"]
            result = MatchResult(
                embeddings=[tuple(e) for e in payload["embeddings"]],
                stats=stats,
                limit_reached=payload["limit_reached"],
                timed_out=payload["timed_out"],
            )
        return BatchItem(
            index=index,
            tag=request.tag,
            status=record["status"],
            result=result,
            cache="journal",
            error=record.get("error", ""),
        )

    # -- in-flight checkpoints ----------------------------------------
    def _checkpoint_path(self, index: int) -> Path:
        return self.root / f"ckpt_{index}.json"

    def save_checkpoint(self, index: int, checkpoint: SearchCheckpoint) -> None:
        checkpoint.save(self._checkpoint_path(index))

    def load_checkpoint(self, index: int) -> Optional[SearchCheckpoint]:
        path = self._checkpoint_path(index)
        if not path.exists():
            return None
        try:
            return SearchCheckpoint.load(path)
        except (ValueError, KeyError, OSError):
            return None  # corrupt/torn checkpoint: restart from scratch

    def clear_checkpoint(self, index: int) -> None:
        try:
            self._checkpoint_path(index).unlink()
        except FileNotFoundError:
            pass


@dataclass
class _Group:
    """One deduplicated unit of work: a leader request index plus
    followers, each with its bijection onto the leader's query."""

    leader: int
    followers: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)


@dataclass
class _Job:
    """A parallel-mode search job (preprocessing already done in-parent)."""

    group: _Group
    search_matcher: DAFMatcher
    prepared: object
    pi: Optional[tuple[int, ...]]
    preprocess_seconds: float
    cache_state: str
    limit: int
    time_limit: Optional[float]
    start: float = 0.0
    attempt: int = 0


def _batch_worker(conn) -> None:
    """Worker body: search the fork-inherited job, send one envelope."""
    try:
        matcher, prepared, limit, time_limit = _BATCH_SHARED["job"]  # type: ignore[misc]
        result = matcher.search(prepared, limit=limit, time_limit=time_limit)
        conn.send(
            ("ok", result.embeddings, result.stats, result.limit_reached, result.timed_out)
        )
    except BaseException as exc:  # the envelope IS the error channel
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class BatchEngine:
    """Deduplicating, cache-aware batch executor over one session.

    Parameters
    ----------
    session:
        The :class:`DataGraphSession` supplying the data graph, the
        default matcher and the prepared-query cache.
    num_workers:
        Search-stage process fan-out; ``1`` (default) runs everything in
        the calling process.
    max_retries:
        Re-dispatches allowed per parallel job after a worker crash.
    """

    def __init__(
        self, session: DataGraphSession, num_workers: int = 1, max_retries: int = 1
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.session = session
        self.num_workers = num_workers
        self.max_retries = max_retries
        # Request index -> TraceContext for the batch currently running;
        # _finish() stamps each batch.request event from it.
        self._active_traces: dict[int, TraceContext] = {}

    # ------------------------------------------------------------------
    def run(
        self, requests: Iterable[MatchRequest], budget=None, journal=None
    ) -> BatchResult:
        """Execute the batch and return the collected :class:`BatchResult`."""
        cache = self.session.cache
        hits0, misses0, evictions0 = cache.hits, cache.misses, cache.evictions
        start = time.perf_counter()
        batch = BatchResult(workers=self.num_workers)
        for item in self.run_iter(requests, budget=budget, journal=journal, _batch=batch):
            batch.items.append(item)
            if item.status == "ok":
                batch.completed += 1
            else:
                batch.failed += 1
        batch.cache_hits = cache.hits - hits0
        batch.cache_misses = cache.misses - misses0
        batch.cache_evictions = cache.evictions - evictions0
        batch.elapsed_seconds = time.perf_counter() - start
        observer = self.session.observer
        if observer is not None:
            observer.emit(
                {
                    "event": "batch.run",
                    "graph_version": self.session.graph_version,
                    "requests": len(batch.items),
                    "completed": batch.completed,
                    "failed": batch.failed,
                    "cache_hits": batch.cache_hits,
                    "cache_misses": batch.cache_misses,
                    "cache_evictions": batch.cache_evictions,
                    "unique_queries": batch.unique_queries,
                    "workers": self.num_workers,
                    "elapsed_seconds": round(batch.elapsed_seconds, 6),
                }
            )
        return batch

    def run_iter(
        self,
        requests: Iterable[MatchRequest],
        budget=None,
        journal: Optional[BatchJournal] = None,
        _batch: Optional[BatchResult] = None,
    ) -> Iterator[BatchItem]:
        """Yield one :class:`BatchItem` per request, in completion order.

        A deduplicated group's leader item is followed immediately by its
        followers' items (same underlying search, remapped embeddings).

        With a ``journal``, requests already completed in a previous run
        are replayed from disk (``cache="journal"``) without searching,
        requests with a persisted checkpoint resume from it, and every
        newly-completed item is persisted before it is yielded.  When a
        search comes back interrupted (Ctrl-C mid-search), its checkpoint
        is persisted and the remaining requests are *not* dispatched —
        the next run with the same journal picks up exactly there.
        """
        requests = list(requests)
        self._active_traces.clear()
        observer = self.session.observer
        replayed: dict[int, dict] = {}
        if journal is not None:
            for index, record in journal.load().items():
                # Errors are retried on a re-run; only clean completions
                # are replayed.
                if index < len(requests) and record["status"] == "ok":
                    replayed[index] = record
        for index in sorted(replayed):
            if observer is not None:
                # Replays did not search, but their batch.request events
                # should still correlate (a fresh trace per replay).
                self._active_traces[index] = self.session.traces.allocate()
            yield self._finish(
                journal.replay_item(index, replayed[index], requests[index])
            )
        groups = self._group(requests, skip=replayed.keys())
        if _batch is not None:
            _batch.unique_queries = len(groups)
        if self.num_workers > 1 and len(groups) > 1:
            inner = self._run_parallel(requests, groups, budget, journal)
        else:
            inner = self._chain_groups(requests, groups, budget, journal)
        for item in inner:
            yield self._journal_note(journal, item)
            if item.result is not None and item.result.interrupted:
                # Stop dispatching: the interrupt was a request to wind
                # down, and the journal (when present) already holds the
                # suspended state for this request.
                inner.close()
                return

    def _chain_groups(
        self, requests: list[MatchRequest], groups: list[_Group], budget, journal
    ) -> Iterator[BatchItem]:
        for group in groups:
            yield from self._run_group(requests, group, budget, journal)

    def _journal_note(
        self, journal: Optional[BatchJournal], item: BatchItem
    ) -> BatchItem:
        """Persist one freshly-completed item (or its checkpoint)."""
        if journal is None:
            return item
        result = item.result
        checkpoint = None if result is None else result.checkpoint
        if checkpoint is not None:
            journal.save_checkpoint(item.index, checkpoint)
        elif result is not None and result.interrupted:
            pass  # no state captured: the re-run restarts it from scratch
        else:
            journal.record(item)
            journal.clear_checkpoint(item.index)
        return item

    # ------------------------------------------------------------------
    def _group(self, requests: list[MatchRequest], skip=frozenset()) -> list[_Group]:
        """Group requests by (isomorphism class, options).

        Requests carrying per-request callbacks, budgets or explain
        captures are never merged (a follower cannot share the leader's
        callback stream, its budget accounting, or its per-request
        forensics report).  Indices in ``skip`` (journal replays) are
        excluded entirely.
        """
        groups: list[_Group] = []
        by_key: dict[tuple, list[int]] = {}
        for index, request in enumerate(requests):
            if index in skip:
                continue
            options = request.options
            if (
                options.on_embedding is not None
                or options.budget is not None
                or options.explain
            ):
                groups.append(_Group(leader=index))
                continue
            key = (
                canonical_hash(request.query),
                options.limit,
                options.time_limit,
                options.count_only,
            )
            merged = False
            for position in by_key.get(key, ()):
                leader_query = requests[groups[position].leader].query
                pi = find_isomorphism(request.query, leader_query)
                if pi is not None:
                    groups[position].followers.append((index, pi))
                    merged = True
                    break
            if not merged:
                groups.append(_Group(leader=index))
                by_key.setdefault(key, []).append(len(groups) - 1)
        return groups

    def _effective_options(self, request: MatchRequest, budget):
        options = request.options
        if budget is not None and options.budget is None:
            options = replace(options, budget=budget)
        return options

    def _request_trace(self, group: _Group, options) -> TraceContext:
        """Pre-allocate the group's trace: resume lineage wins, else a
        fresh id; followers become ``dup<i>`` child spans of the leader
        (the dedup relationship stays visible in the trace tree)."""
        resume = options.resume_from
        payload = None
        if resume is not None:
            payload = (
                resume.get("trace")
                if isinstance(resume, dict)
                else getattr(resume, "trace", None)
            )
        context = resumed_context(payload)
        if context is None:
            context = self.session.traces.allocate()
        self._active_traces[group.leader] = context
        for follower_index, _pi in group.followers:
            self._active_traces[follower_index] = context.child(f"dup{follower_index}")
        return context

    def _items_for_group(
        self,
        requests: list[MatchRequest],
        group: _Group,
        status: str,
        result: Optional[MatchResult],
        cache_state: str,
        error: str,
        elapsed: float,
    ) -> Iterator[BatchItem]:
        """Materialize the leader's item plus remapped follower items."""
        leader_request = requests[group.leader]
        yield self._finish(
            BatchItem(
                index=group.leader,
                tag=leader_request.tag,
                status=status,
                result=result,
                cache=cache_state,
                error=error,
                elapsed_seconds=elapsed,
            )
        )
        for follower_index, pi in group.followers:
            follower_result = None
            if result is not None:
                follower_result = MatchResult(
                    embeddings=[_remap(e, pi) for e in result.embeddings],
                    stats=copy.copy(result.stats),
                    limit_reached=result.limit_reached,
                    timed_out=result.timed_out,
                    budget_breach=result.budget_breach,
                    interrupted=result.interrupted,
                    partial_failure=result.partial_failure,
                    degradations=list(result.degradations),
                )
            yield self._finish(
                BatchItem(
                    index=follower_index,
                    tag=requests[follower_index].tag,
                    status=status,
                    result=follower_result,
                    cache="dedup",
                    error=error,
                    elapsed_seconds=0.0,
                )
            )

    def _run_group(
        self, requests: list[MatchRequest], group: _Group, budget, journal=None
    ) -> Iterator[BatchItem]:
        """Sequential execution of one group through the session."""
        request = requests[group.leader]
        options = self._effective_options(request, budget)
        if journal is not None and options.resume_from is None:
            resume = journal.load_checkpoint(group.leader)
            if resume is not None:
                options = replace(options, resume_from=resume)
        cache = self.session.cache
        hits0, misses0 = cache.hits, cache.misses
        trace = None
        if self.session.observer is not None:
            trace = self._request_trace(group, options)
        start = time.perf_counter()
        while True:
            try:
                result = self.session.run(
                    MatchRequest(query=request.query, options=options, tag=request.tag),
                    trace=trace,
                )
                status, error = "ok", ""
            except CheckpointMismatchError as exc:
                if options.resume_from is not None:
                    # Stale journal checkpoint (query/config changed
                    # between runs): drop it and restart from scratch.
                    options = replace(options, resume_from=None)
                    continue
                result, status = None, "error"
                error = f"{type(exc).__name__}: {exc}"
            except Exception as exc:
                result, status = None, "error"
                error = f"{type(exc).__name__}: {exc}"
            break
        elapsed = time.perf_counter() - start
        if cache.hits > hits0:
            cache_state = "hit"
        elif cache.misses > misses0:
            cache_state = "miss"
        else:
            cache_state = "bypass"
        yield from self._items_for_group(
            requests, group, status, result, cache_state, error, elapsed
        )

    # ------------------------------------------------------------------
    def _run_parallel(
        self, requests: list[MatchRequest], groups: list[_Group], budget, journal=None
    ) -> Iterator[BatchItem]:
        """Parent-side preprocessing, forked search, completion-order yield."""
        session = self.session
        matcher = session.matcher
        jobs: deque[_Job] = deque()
        for group in groups:
            request = requests[group.leader]
            options = request.options
            if (
                not isinstance(matcher, DAFMatcher)
                or options.on_embedding is not None
                or options.budget is not None
                or options.explain
                or (
                    journal is not None
                    and journal.load_checkpoint(group.leader) is not None
                )
            ):
                # Callbacks, per-request budgets, explain captures and
                # checkpoint resumes cannot cross a fork; run these
                # inline (still cache-aware via the session).
                yield from self._run_group(requests, group, budget, journal)
                continue
            observer = session.observer
            trace = None
            if observer is not None:
                trace = self._request_trace(group, options)
            unsupported = [
                name
                for name in options.non_default_fields()
                if name not in matcher.supported_options
            ]
            if unsupported:
                error = str(UnsupportedOptionError(matcher, unsupported))
                yield from self._items_for_group(
                    requests, group, "error", None, "bypass", error, 0.0
                )
                continue
            prep_start = time.perf_counter()
            try:
                if observer is not None:
                    # Parent-side preprocessing runs under the request's
                    # context (the forked search itself is unobserved).
                    previous = observer.trace
                    observer.trace = trace
                    try:
                        prepared, pi, preprocess, cache_state = (
                            session._lookup_or_prepare(matcher, request.query, None)
                        )
                    finally:
                        observer.trace = previous
                else:
                    prepared, pi, preprocess, cache_state = session._lookup_or_prepare(
                        matcher, request.query, None
                    )
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                yield from self._items_for_group(
                    requests,
                    group,
                    "error",
                    None,
                    "miss",
                    error,
                    time.perf_counter() - prep_start,
                )
                continue
            search_matcher = matcher
            if options.count_only and matcher.config.collect_embeddings:
                import dataclasses as _dc

                search_matcher = DAFMatcher(
                    _dc.replace(matcher.config, collect_embeddings=False)
                )
            time_limit = None
            if options.time_limit is not None:
                time_limit = max(0.001, options.time_limit - preprocess)
            jobs.append(
                _Job(
                    group=group,
                    search_matcher=search_matcher,
                    prepared=prepared,
                    pi=pi,
                    preprocess_seconds=preprocess,
                    cache_state=cache_state,
                    limit=options.resolved_limit,
                    time_limit=time_limit,
                )
            )
        yield from self._supervise(requests, jobs, budget)

    def _supervise(
        self, requests: list[MatchRequest], jobs: deque, budget
    ) -> Iterator[BatchItem]:
        """Windowed dispatch of search jobs with one-retry crash salvage."""
        if not jobs:
            return
        ctx = multiprocessing.get_context("fork")
        active: dict[int, tuple[object, object, _Job]] = {}  # id -> (process, conn, job)
        next_id = 0
        try:
            while jobs or active:
                while jobs and len(active) < self.num_workers:
                    job = jobs.popleft()
                    time_limit = job.time_limit
                    if budget is not None:
                        remaining = budget.remaining_time()
                        if remaining is not None:
                            remaining = max(0.001, remaining)
                            time_limit = (
                                remaining
                                if time_limit is None
                                else min(time_limit, remaining)
                            )
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    _BATCH_SHARED["job"] = (
                        job.search_matcher,
                        job.prepared,
                        job.limit,
                        time_limit,
                    )
                    process = ctx.Process(target=_batch_worker, args=(child_conn,), daemon=True)
                    job.start = time.perf_counter()
                    process.start()
                    child_conn.close()
                    active[next_id] = (process, parent_conn, job)
                    next_id += 1
                ready = mp_connection.wait(
                    [conn for (_p, conn, _j) in active.values()], timeout=0.05
                )
                for conn in ready:
                    job_id = next(k for k, v in active.items() if v[1] is conn)
                    process, _conn, job = active.pop(job_id)
                    try:
                        envelope = conn.recv()
                    except (EOFError, OSError):
                        envelope = None  # died without a word: hard crash
                    process.join(timeout=5.0)
                    if process.is_alive():
                        process.terminate()
                        process.join()
                    conn.close()
                    elapsed = time.perf_counter() - job.start
                    if envelope is not None and envelope[0] == "ok":
                        _tag, embeddings, stats, limit_reached, timed_out = envelope
                        stats.preprocess_seconds = job.preprocess_seconds
                        result = MatchResult(
                            embeddings=(
                                [_remap(e, job.pi) for e in embeddings]
                                if job.pi is not None
                                else embeddings
                            ),
                            stats=stats,
                            limit_reached=limit_reached,
                            timed_out=timed_out,
                        )
                        yield from self._items_for_group(
                            requests, job.group, "ok", result, job.cache_state, "", elapsed
                        )
                        continue
                    if job.attempt < self.max_retries:
                        job.attempt += 1
                        jobs.append(job)
                        continue
                    error = (
                        envelope[1] if envelope is not None else "worker process died"
                    )
                    yield from self._items_for_group(
                        requests, job.group, "error", None, job.cache_state, error, elapsed
                    )
        finally:
            for process, conn, _job in active.values():
                process.terminate()
                process.join()
                conn.close()
            _BATCH_SHARED.clear()

    # ------------------------------------------------------------------
    def _finish(self, item: BatchItem) -> BatchItem:
        """Emit the per-request event (when observed) and pass the item on."""
        observer = self.session.observer
        if observer is not None:
            event = {
                "event": "batch.request",
                "index": item.index,
                "status": item.status,
                "cache": item.cache,
            }
            if item.tag is not None:
                event["tag"] = str(item.tag)
            if item.result is not None:
                event["embeddings"] = item.result.stats.embeddings_found
                event["recursive_calls"] = item.result.stats.recursive_calls
                event["elapsed_seconds"] = round(item.result.stats.elapsed_seconds, 6)
                event["preprocess_seconds"] = round(
                    item.result.stats.preprocess_seconds, 6
                )
            if item.error:
                event["error"] = item.error
            trace = self._active_traces.get(item.index)
            if trace is not None:
                trace.stamp(event)
            observer.emit(event)
        return item
