"""Serving layer: resident data graphs, prepared-query caching, batching.

The core library optimizes one-shot ``match()`` calls; this package
optimizes the *service* shape of the workload — one big data graph,
many queries over time:

- :class:`DataGraphSession` keeps a data graph resident with its
  :class:`repro.graph.GraphIndex` built once and a
  :class:`PreparedQueryCache` of DAG + CS structures keyed by WL
  canonical hash (isomorphic queries share an entry);
- :class:`BatchEngine` executes request lists with cross-request
  deduplication, an optional shared :class:`repro.resilience.Budget`,
  and a forked search-stage worker pool, streaming
  :class:`BatchItem` results in completion order;
- :meth:`DataGraphSession.apply` mutates the resident graph through
  versioned :class:`repro.interfaces.UpdateBatch` deltas, refreshing
  cached candidate spaces incrementally, and
  :meth:`DataGraphSession.subscribe` registers :class:`StandingQuery`
  continuous queries whose embedding sets are diffed exactly after
  every batch (see :mod:`repro.service.dynamic`).

:class:`repro.core.matcher.PreparedQuery` is re-exported here as the
public name for the cached preprocessing artifact.

See ``docs/serving.md`` for the architecture and the request-API
migration guide.
"""

from ..core.matcher import PreparedQuery
from .batch import BatchEngine, BatchItem, BatchJournal, BatchResult
from .cache import CacheEntry, PreparedQueryCache, find_isomorphism
from .dynamic import EmbeddingEvent, StandingQuery, UpdateResult
from .session import DataGraphSession

__all__ = [
    "BatchEngine",
    "BatchItem",
    "BatchJournal",
    "BatchResult",
    "CacheEntry",
    "DataGraphSession",
    "EmbeddingEvent",
    "PreparedQuery",
    "PreparedQueryCache",
    "StandingQuery",
    "UpdateResult",
    "find_isomorphism",
]
