"""Dynamic-graph serving: versioned mutation and standing queries.

This module is the serving-layer half of incremental maintenance.  A
:class:`~repro.service.DataGraphSession` delegates here when its data
graph mutates:

- :func:`apply_batch` turns an :class:`repro.interfaces.UpdateBatch`
  into a new graph version — replacement graph via
  :func:`repro.graph.mutate.apply_update`, incremental
  :class:`~repro.graph.GraphIndex` refresh, and a
  :meth:`PreparedQueryCache.rebase` pass that refreshes each cached
  candidate space through :func:`repro.core.cs_delta.refresh_candidate_space`
  (or invalidates the entry when the batch re-oriented the query's DAG);
- :class:`StandingQuery` implements continuous queries: after every
  batch the subscription's embedding set is brought forward by
  re-checking only old embeddings that touch the delta footprint
  (disappearance) and enumerating only embeddings anchored at
  delta-touched vertices (appearance), then streamed as schema'd
  ``embedding.appeared`` / ``embedding.disappeared`` events.

The appearance search is exact, not heuristic: a new embedding that was
not valid before the batch must use an inserted edge or vertex (or, in
induced mode, lose a conflicting edge), so its image intersects the
anchor set; enumerating all embeddings through each anchor and
subtracting the previous set yields exactly the fresh-run difference.
The equivalence suite and the ``dynamic smoke`` CI step assert this
against full re-enumeration after every batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..core.cs_delta import cs_diff, dag_equivalent, refresh_candidate_space
from ..core.dag import build_dag
from ..core.matcher import DAFMatcher, PreparedQuery
from ..graph.graph import Graph
from ..graph.index import refresh_index
from ..graph.mutate import DeltaFootprint, apply_update
from ..interfaces import (
    MatchRequest,
    UnsupportedOptionError,
    UpdateBatch,
    UpdateError,
)

#: MatchOptions fields a standing query understands: per-batch governance
#: only.  Everything else (limits, callbacks, count-only, resume,
#: explain) contradicts the exact-difference streaming contract.
SUBSCRIBE_SUPPORTED_OPTIONS = frozenset({"time_limit", "budget"})


class _StandingSurface:
    """Adapter giving :class:`UnsupportedOptionError` (which reports a
    matcher-like ``name`` and ``supported_options``) a subscription
    surface to describe."""

    name = "standing-query"
    supported_options = SUBSCRIBE_SUPPORTED_OPTIONS


@dataclass(frozen=True)
class EmbeddingEvent:
    """One streamed change of a standing query's embedding set."""

    kind: str  # "appeared" | "disappeared"
    embedding: tuple[int, ...]
    graph_version: int


@dataclass
class UpdateResult:
    """What one :meth:`DataGraphSession.apply` call did."""

    graph_version: int
    deltas: int
    added_vertices: tuple[int, ...]
    cache_refreshed: int
    cache_invalidated: int
    appeared: int
    disappeared: int
    seconds: float


# ----------------------------------------------------------------------
# Exact embedding maintenance primitives
# ----------------------------------------------------------------------
def _still_embeds(
    query: Graph, data: Graph, embedding: tuple[int, ...], injective: bool, induced: bool
) -> bool:
    """Direct validity re-check of one mapping against the mutated graph.

    Vertex ids are stable across mutations (tombstoning), so injectivity
    cannot change; labels and edges can.
    """
    for u in query.vertices():
        if data.label(embedding[u]) != query.label(u):
            return False
    for u1, u2 in query.edges():
        if not data.has_edge(embedding[u1], embedding[u2]):
            return False
    if induced:
        n = query.num_vertices
        for u1 in range(n):
            for u2 in range(u1 + 1, n):
                if not query.has_edge(u1, u2) and data.has_edge(
                    embedding[u1], embedding[u2]
                ):
                    return False
    return True


def _candidate_sets(query: Graph, data: Graph, injective: bool) -> list[set[int]]:
    """Per-query-vertex candidate pools for the anchored delta search —
    the same label(+degree) regions BuildCS starts from, served from the
    session's :class:`~repro.graph.GraphIndex` fast path."""
    from ..core.filters import initial_candidates

    if injective:
        return [set(initial_candidates(query, data, u)) for u in query.vertices()]
    return [set(data.vertices_with_label(query.label(u))) for u in query.vertices()]


def _search_order(query: Graph, start: int) -> list[int]:
    """BFS order from ``start`` so every later vertex (in a connected
    query) has an already-mapped neighbor to extend from."""
    order = [start]
    seen = {start}
    head = 0
    while head < len(order):
        for w in query.neighbors(order[head]):
            if w not in seen:
                seen.add(w)
                order.append(w)
        head += 1
    for u in query.vertices():  # disconnected queries: append the rest
        if u not in seen:
            order.append(u)
    return order


def _anchored_embeddings(
    query: Graph,
    data: Graph,
    cand_sets: list[set[int]],
    anchor_u: int,
    anchor_v: int,
    injective: bool,
    induced: bool,
    out: set[tuple[int, ...]],
    deadline: Optional[float],
    budget,
) -> None:
    """All embeddings of ``query`` in ``data`` with ``anchor_u -> anchor_v``,
    added to ``out``.  Plain candidate-pool backtracking ordered BFS-out
    from the anchor, so the walk never leaves the anchor's neighborhood
    in the query — the "delta-touched region" of the search space."""
    if anchor_v not in cand_sets[anchor_u]:
        return
    n = query.num_vertices
    order = _search_order(query, anchor_u)
    mapping = [-1] * n
    mapping[anchor_u] = anchor_v
    used = {anchor_v}

    def extend(position: int) -> None:
        if deadline is not None and time.monotonic() > deadline:
            raise UpdateError("standing-query delta search exceeded its time limit")
        if budget is not None:
            budget.poll()
        if position == n:
            emb = tuple(mapping)
            if induced:
                for u1 in range(n):
                    for u2 in range(u1 + 1, n):
                        if not query.has_edge(u1, u2) and data.has_edge(
                            emb[u1], emb[u2]
                        ):
                            return
            out.add(emb)
            return
        u = order[position]
        mapped_neighbors = [w for w in query.neighbors(u) if mapping[w] != -1]
        if mapped_neighbors:
            first = mapped_neighbors[0]
            pool = [v for v in data.neighbors(mapping[first]) if v in cand_sets[u]]
            rest = mapped_neighbors[1:]
        else:
            pool = sorted(cand_sets[u])
            rest = []
        for v in pool:
            if injective and v in used:
                continue
            if any(not data.has_edge(v, mapping[w]) for w in rest):
                continue
            mapping[u] = v
            if injective:
                used.add(v)
            extend(position + 1)
            mapping[u] = -1
            if injective:
                used.discard(v)

    extend(1)


# ----------------------------------------------------------------------
# Standing queries
# ----------------------------------------------------------------------
class StandingQuery:
    """A continuous query over one session's mutating data graph.

    Created by :meth:`DataGraphSession.subscribe`; holds the query's
    current embedding set and, after each applied batch, streams the
    exact difference as :class:`EmbeddingEvent` records (and schema'd
    ``embedding.appeared`` / ``embedding.disappeared`` events on the
    session's observer).  ``drain()`` hands pending events to the caller;
    ``cancel()`` detaches the subscription.
    """

    def __init__(
        self,
        session,
        subscription_id: str,
        request: MatchRequest,
        injective: bool,
        induced: bool,
        embeddings: set[tuple[int, ...]],
    ) -> None:
        self._session = session
        self.id = subscription_id
        self.request = request
        self.injective = injective
        self.induced = induced
        self.active = True
        self._current = set(embeddings)
        self._pending: list[EmbeddingEvent] = []
        self.events: list[EmbeddingEvent] = []

    @property
    def embeddings(self) -> frozenset[tuple[int, ...]]:
        """The query's current embedding set (probe coordinates)."""
        return frozenset(self._current)

    def drain(self) -> list[EmbeddingEvent]:
        """Events accumulated since the last drain, oldest first."""
        pending, self._pending = self._pending, []
        return pending

    def cancel(self) -> None:
        """Stop observing batches; the event history stays readable."""
        if self.active:
            self.active = False
            self._session._subscriptions.pop(self.id, None)

    # -- called by apply_batch -----------------------------------------
    def _on_batch(
        self, data: Graph, footprint: DeltaFootprint, graph_version: int, observer
    ) -> tuple[int, int]:
        query = self.request.query
        options = self.request.options
        deadline = (
            time.monotonic() + options.time_limit
            if options.time_limit is not None
            else None
        )
        budget = options.budget

        check = footprint.dirty
        disappeared = sorted(
            emb
            for emb in self._current
            if any(v in check for v in emb)
            and not _still_embeds(query, data, emb, self.injective, self.induced)
        )

        anchors = {v for edge in footprint.inserted_edges for v in edge}
        anchors |= footprint.added
        if self.induced:
            anchors |= {v for edge in footprint.deleted_edges for v in edge}
        found: set[tuple[int, ...]] = set()
        if anchors:
            cand_sets = _candidate_sets(query, data, self.injective)
            for u in query.vertices():
                for v in sorted(anchors & cand_sets[u]):
                    _anchored_embeddings(
                        query,
                        data,
                        cand_sets,
                        u,
                        v,
                        self.injective,
                        self.induced,
                        found,
                        deadline,
                        budget,
                    )
        appeared = sorted(emb for emb in found if emb not in self._current)

        self._current.difference_update(disappeared)
        self._current.update(appeared)
        for emb in disappeared:
            self._record("disappeared", emb, graph_version, observer)
        for emb in appeared:
            self._record("appeared", emb, graph_version, observer)
        return len(appeared), len(disappeared)

    def _record(
        self, kind: str, embedding: tuple[int, ...], graph_version: int, observer
    ) -> None:
        event = EmbeddingEvent(kind=kind, embedding=embedding, graph_version=graph_version)
        self._pending.append(event)
        self.events.append(event)
        if observer is None:
            return
        if kind == "appeared":
            observer.emit(
                {
                    "event": "embedding.appeared",
                    "subscription": self.id,
                    "graph_version": graph_version,
                    "embedding": list(embedding),
                }
            )
        else:
            observer.emit(
                {
                    "event": "embedding.disappeared",
                    "subscription": self.id,
                    "graph_version": graph_version,
                    "embedding": list(embedding),
                }
            )

    def __repr__(self) -> str:
        state = "active" if self.active else "cancelled"
        return (
            f"StandingQuery(id={self.id!r}, |V(q)|={self.request.query.num_vertices}, "
            f"embeddings={len(self._current)}, {state})"
        )


def subscribe(session, request: MatchRequest) -> StandingQuery:
    """Register a continuous query on ``session`` (its ``subscribe()``)."""
    if request.data is not None and request.data is not session.data:
        raise ValueError(
            "subscription carries a different data graph than this session"
        )
    unsupported = [
        name
        for name in request.options.non_default_fields()
        if name not in SUBSCRIBE_SUPPORTED_OPTIONS
    ]
    if unsupported:
        raise UnsupportedOptionError(_StandingSurface(), unsupported)

    config = getattr(session.matcher, "config", None)
    injective = getattr(config, "injective", True)
    induced = getattr(config, "induced", False)
    if config is not None and not getattr(config, "collect_embeddings", True):
        raise ValueError(
            "standing queries maintain an explicit embedding set; the session "
            "matcher must collect embeddings"
        )

    # Baseline embedding set: one full enumeration at the current version.
    result = session.run(MatchRequest(query=request.query, options=request.options))
    if result.timed_out or getattr(result, "budget_breach", None):
        raise UpdateError(
            "standing-query baseline enumeration was cut short; "
            "raise the subscription's time/budget options"
        )
    if len(result.embeddings) >= request.options.resolved_limit:
        raise UpdateError(
            "standing-query baseline enumeration hit the embedding limit; "
            "its difference stream would not be exact"
        )

    session._subscription_seq += 1
    subscription_id = f"sq{session._subscription_seq:06d}"
    standing = StandingQuery(
        session,
        subscription_id,
        request,
        injective,
        induced,
        set(result.embeddings),
    )
    session._subscriptions[subscription_id] = standing
    return standing


# ----------------------------------------------------------------------
# Batch application
# ----------------------------------------------------------------------
def apply_batch(
    session, batch: UpdateBatch, cross_validate: bool = False
) -> UpdateResult:
    """Apply ``batch`` to ``session`` (its ``apply()``): new graph
    version, index refresh, cache rebase, subscription notification.

    With ``cross_validate=True`` every refreshed cache entry's CS is
    additionally compared against a cold rebuild on the new graph and a
    mismatch raises :class:`UpdateError` — the acceptance check behind
    the incremental path, also exposed as ``repro update
    --cross-validate``.
    """
    if not isinstance(batch, UpdateBatch):
        batch = UpdateBatch(deltas=tuple(batch))
    start = time.perf_counter()
    old_data = session.data
    new_data, footprint = apply_update(old_data, batch)

    old_index = old_data.cached_index
    if old_index is not None:
        new_data.adopt_index(refresh_index(old_data, old_index, new_data, footprint))
    else:
        new_data.ensure_index()

    new_version = session._graph_version + 1
    matcher = session.matcher
    config = matcher.config if isinstance(matcher, DAFMatcher) else None

    def refresh(prepared):
        if config is None or prepared.cs.trail is None:
            return None
        new_dag = build_dag(prepared.query, new_data)
        if not dag_equivalent(new_dag, prepared.dag):
            # The batch moved the data statistics BuildDAG keys on; a
            # trail replay against a different orientation is meaningless.
            return None
        new_cs = refresh_candidate_space(
            prepared.cs,
            new_data,
            footprint,
            refinement_steps=config.refinement_steps,
            refine_to_fixpoint=config.refine_to_fixpoint,
            use_local_filters=config.use_local_filters if config.injective else False,
            label_only_initial=not config.injective,
            observer=session.observer,
        )
        if cross_validate:
            cold = matcher.prepare(prepared.query, new_data, keep_trail=True)
            problems = cs_diff(new_cs, cold.cs)
            if problems:
                raise UpdateError(
                    "incremental CS diverged from cold rebuild: "
                    + "; ".join(problems)
                )
        return PreparedQuery(
            query=prepared.query,
            data=new_data,
            dag=prepared.dag,
            cs=new_cs,
            preprocess_seconds=prepared.preprocess_seconds,
        )

    refreshed, invalidated = session.cache.rebase(new_version, refresh)

    session.data = new_data
    session._graph_version = new_version

    appeared_total = 0
    disappeared_total = 0
    for standing in list(session._subscriptions.values()):
        appeared, disappeared = standing._on_batch(
            new_data, footprint, new_version, session.observer
        )
        appeared_total += appeared
        disappeared_total += disappeared

    seconds = time.perf_counter() - start
    if session.observer is not None:
        session.observer.emit(
            {
                "event": "update.batch",
                "graph_version": new_version,
                "deltas": len(batch),
                "edges_inserted": len(footprint.inserted_edges),
                "edges_deleted": len(footprint.deleted_edges),
                "vertices_added": len(footprint.added),
                "vertices_removed": len(footprint.tombstoned),
                "cache_refreshed": refreshed,
                "cache_invalidated": invalidated,
                "appeared": appeared_total,
                "disappeared": disappeared_total,
                "seconds": seconds,
            }
        )
    return UpdateResult(
        graph_version=new_version,
        deltas=len(batch),
        added_vertices=tuple(sorted(footprint.added)),
        cache_refreshed=refreshed,
        cache_invalidated=invalidated,
        appeared=appeared_total,
        disappeared=disappeared_total,
        seconds=seconds,
    )
