"""Prepared-query LRU cache keyed by a label-aware WL canonical hash.

Preprocessing (BuildDAG + BuildCS) dominates the cost of small- and
medium-query matching once a data graph is resident, and real serving
workloads repeat queries — often not verbatim but *up to isomorphism*
(the same shape arriving with permuted vertex ids).  The cache therefore
keys on :func:`repro.graph.canonical_hash`, a Weisfeiler-Leman color
refinement digest that is invariant under vertex relabeling: isomorphic
queries always land in the same bucket.

WL is *incomplete* — rare non-isomorphic graphs can collide — so a
bucket holds one slot per distinct query and every lookup verifies the
candidate entry with an exact isomorphism check
(:func:`find_isomorphism`) before declaring a hit.  A verified hit
returns the cached :class:`~repro.core.matcher.PreparedQuery` *plus* the
vertex bijection ``pi`` from the probe query onto the cached query, so
the caller can search in cached coordinates and remap embeddings
(``emb[u] = cached_emb[pi[u]]``).

Counters: the cache self-accounts ``hits``/``misses``/``evictions``/
``invalidations`` and, when an observer
(:class:`repro.obs.MetricsRegistry`) is attached, also drives the
``cache_hit``/``cache_miss``/``cache_eviction``/``cache_invalidation``
slots so the traffic appears in metrics snapshots and JSONL sidecars.
Invalidation is the churn-driven path: :meth:`PreparedQueryCache.rebase`
walks the cache after a data-graph mutation, refreshing each entry's
prepared structures incrementally or — when refresh is impossible (the
delta re-oriented the query's DAG) — dropping it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..graph.canonical import canonical_hash
from ..graph.graph import Graph


def find_isomorphism(query: Graph, cached: Graph) -> Optional[tuple[int, ...]]:
    """An isomorphism ``pi`` (query vertex -> cached vertex), or ``None``.

    Correctness of the shortcut: a subgraph embedding of ``query`` into
    ``cached`` is injective, label- and edge-preserving; when the two
    graphs have equal vertex *and* edge counts the map is a bijection
    whose inverse is also edge-preserving — i.e. an isomorphism.  So one
    VF2 probe with ``limit=1`` decides the question exactly.
    """
    if (
        query.num_vertices != cached.num_vertices
        or query.num_edges != cached.num_edges
    ):
        return None
    if query == cached:
        # Structurally identical (same labels, same adjacency): the
        # identity is an isomorphism and VF2 need not run.
        return tuple(range(query.num_vertices))
    from ..baselines.vf2 import VF2Matcher

    result = VF2Matcher()._match_impl(query, cached, limit=1)
    if result.embeddings:
        return result.embeddings[0]
    return None


@dataclass
class CacheEntry:
    """One cached prepared query: the canonical query graph (the slot's
    coordinate system) and its :class:`~repro.core.matcher.PreparedQuery`."""

    query: Graph
    prepared: object  # PreparedQuery; typed loosely to avoid a core import cycle


class PreparedQueryCache:
    """LRU cache of :class:`~repro.core.matcher.PreparedQuery` objects.

    Keys are ``(wl_hash, slot)`` pairs: all entries of one WL hash form a
    bucket, and a lookup walks the bucket verifying each candidate with
    an exact isomorphism check.  Capacity counts entries (not buckets)
    and eviction is strict least-recently-used across the whole cache.

    Entries are only valid against the data graph (and matcher config)
    they were prepared for — a :class:`~repro.service.DataGraphSession`
    owns exactly one cache per (data graph, config), which is what makes
    the invariant structural rather than checked.
    """

    def __init__(self, capacity: int = 64, observer=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: Optional :class:`repro.obs.MetricsRegistry` whose
        #: ``cache_*`` counter slots mirror the totals below.
        self.observer = observer
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Version of the data graph the entries were prepared against;
        #: bumped by :meth:`rebase` when the owning session mutates.
        self.graph_version = 0
        self._entries: "OrderedDict[tuple[str, int], CacheEntry]" = OrderedDict()
        self._buckets: dict[str, list[tuple[str, int]]] = {}
        self._next_slot = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, query: Graph) -> Optional[tuple[CacheEntry, tuple[int, ...]]]:
        """Return ``(entry, pi)`` for a verified hit, else ``None``.

        ``pi`` maps each vertex of ``query`` onto the cached entry's
        query: embeddings found in cached coordinates translate back via
        ``emb[u] = cached_emb[pi[u]]``.  Every call counts exactly one
        hit or one miss.
        """
        digest = canonical_hash(query)
        for key in self._buckets.get(digest, ()):
            entry = self._entries[key]
            pi = find_isomorphism(query, entry.query)
            if pi is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                if self.observer is not None:
                    self.observer.cache_hit += 1
                return entry, pi
        self.misses += 1
        if self.observer is not None:
            self.observer.cache_miss += 1
        return None

    def insert(self, query: Graph, prepared) -> None:
        """Cache ``prepared`` under ``query``'s canonical hash, evicting
        least-recently-used entries beyond capacity."""
        digest = canonical_hash(query)
        key = (digest, self._next_slot)
        self._next_slot += 1
        self._entries[key] = CacheEntry(query=query, prepared=prepared)
        self._buckets.setdefault(digest, []).append(key)
        while len(self._entries) > self.capacity:
            old_key, _old = self._entries.popitem(last=False)
            bucket = self._buckets[old_key[0]]
            bucket.remove(old_key)
            if not bucket:
                del self._buckets[old_key[0]]
            self.evictions += 1
            if self.observer is not None:
                self.observer.cache_eviction += 1

    def rebase(self, new_version: int, refresh) -> tuple[int, int]:
        """Move every entry to a new data-graph version.

        ``refresh(entry.prepared)`` either returns a replacement
        :class:`~repro.core.matcher.PreparedQuery` valid against the
        mutated graph (incremental CS refresh) or ``None``, in which case
        the entry is dropped and counted as an *invalidation* — distinct
        from a capacity eviction, so telemetry can separate churn from
        pressure.  LRU recency is preserved.  Returns
        ``(refreshed, invalidated)`` entry counts.
        """
        refreshed = 0
        invalidated = 0
        for key in list(self._entries):
            entry = self._entries[key]
            replacement = refresh(entry.prepared)
            if replacement is None:
                del self._entries[key]
                bucket = self._buckets[key[0]]
                bucket.remove(key)
                if not bucket:
                    del self._buckets[key[0]]
                self.invalidations += 1
                invalidated += 1
                if self.observer is not None:
                    self.observer.cache_invalidation += 1
            else:
                entry.prepared = replacement
                refreshed += 1
        self.graph_version = new_version
        return refreshed, invalidated

    def clear(self) -> None:
        """Drop every entry (counters keep their lifetime totals)."""
        self._entries.clear()
        self._buckets.clear()

    def stats(self) -> dict:
        """Lifetime traffic totals plus current occupancy."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "graph_version": self.graph_version,
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"PreparedQueryCache(entries={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
