"""End-to-end chaos harness: seeded fault sweeps with exact-answer gates.

The individual resilience pieces — fault injection (:mod:`.faults`),
suspend/resume checkpoints (:mod:`.checkpoint`), the degradation chain
(:mod:`.resilient`), supervised parallel workers
(:mod:`repro.extensions.parallel`) and resumable batches
(:mod:`repro.service.batch`) — each have unit tests, but the property
that actually matters is end-to-end: *a fault anywhere in the stack must
not change the answer*.  This module sweeps every fault site crossed
with every fault kind over a seeded serving workload and asserts **exact
embedding-set equality** against the fault-free run:

===================  =======================================================
scenario             recovery mechanism exercised
===================  =======================================================
backtrack.step/raise ``ResilientMatcher`` resumes the same stage from the
                     crash-point checkpoint (no degradation).
backtrack.step/exit  a parallel worker is hard-killed mid-search; the
                     supervisor retry resumes its slice from the last
                     piggy-backed checkpoint.
backtrack.step/hang  a parallel worker wedges; ``stall_timeout`` reaps it
                     and the retry resumes from checkpoint.
cs.refine/raise      a batch request errors during CS construction; the
                     journal re-run replays completed requests and retries
                     the failed one.
cs.refine/exit       the whole batch process is hard-killed mid-run; a
                     fresh process replays the journal and finishes.
cs.refine/hang       an injected hang is capped by the armed ``Budget``;
                     the breached request is re-run clean.
worker.start/raise   the parallel supervisor's plain retry path.
worker.start/exit    same, for a silent hard kill.
worker.start/hang    a worker that never starts is stall-reaped and
                     retried.
===================  =======================================================

Each swept scenario emits one ``chaos.run`` event (see
:mod:`repro.obs.schema`) and yields a :class:`ChaosOutcome`; the sweep
is fully deterministic for a fixed seed.  The CLI front-end is
``repro chaos`` and the CI smoke lives in ``scripts/ci.sh``.
"""

from __future__ import annotations

import multiprocessing
import random
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..graph.generators import gnm_random_graph
from ..interfaces import MatchOptions, MatchRequest
from .budget import Budget
from .faults import FAULTS, KINDS, SITES, FaultSpec

#: (site, kind) pairs swept by default — the full cross product.
DEFAULT_SCENARIOS: tuple[tuple[str, str], ...] = tuple(
    (site, kind) for site in SITES for kind in KINDS
)

#: Checkpoint cadence used by the parallel scenarios — small, so crashed
#: slices have fresh state to resume from even on tiny workloads.
CHECKPOINT_EVERY = 16

#: Seconds of worker silence before the supervisor reaps it in the hang
#: scenarios.
STALL_TIMEOUT = 0.75

#: Injected hang duration — long enough to dwarf the stall timeout /
#: armed budget, short enough that a recovery bug cannot stall a sweep.
HANG_SECONDS = 4.0


@dataclass
class ChaosOutcome:
    """What one swept scenario observed."""

    scenario: str
    site: str
    kind: str
    #: ``"ok"`` (fault fired, recovery engaged, answer matched exactly),
    #: ``"mismatch"`` (some gate failed — see ``detail``), ``"skipped"``
    #: (workload cannot express the scenario), ``"error"`` (the harness
    #: itself crashed).
    status: str
    matched: bool = False
    #: How many times the fault (provably) fired — for hard-kill kinds
    #: this is inferred from retries/exit codes, because a killed process
    #: cannot report.
    fired: int = 0
    #: Whether recovery resumed from a checkpoint (as opposed to a
    #: from-scratch retry or a journal replay).
    resumed: bool = False
    elapsed_seconds: float = 0.0
    detail: str = ""


def _chaos_batch_child(data, queries, journal_root, specs, seed) -> None:
    """Forked body for the cs.refine/exit scenario: run the batch with a
    journal under an armed injector, and die when the fault says so."""
    FAULTS.configure(list(specs), seed=seed)
    try:
        from ..service.batch import BatchEngine, BatchJournal
        from ..service.session import DataGraphSession

        engine = BatchEngine(DataGraphSession(data))
        engine.run(
            [MatchRequest(query=q, tag=i) for i, q in enumerate(queries)],
            journal=BatchJournal(journal_root),
        )
    finally:
        FAULTS.clear()


class ChaosHarness:
    """Seeded end-to-end fault sweep over a generated serving workload.

    Parameters
    ----------
    seed:
        Drives the workload generator and the injector RNG; a fixed seed
        makes the whole sweep reproducible.
    observer:
        Optional :class:`repro.obs.MetricsRegistry`; receives one
        ``chaos.run`` event per scenario.
    num_workers:
        Fan-out for the parallel scenarios (needs >= 2 so a kill hits a
        forked worker, never the harness process).
    workdir:
        Directory for batch journals; a temp dir when omitted.
    """

    def __init__(
        self,
        seed: int = 0,
        observer=None,
        num_workers: int = 2,
        workdir=None,
    ) -> None:
        if num_workers < 2:
            raise ValueError("chaos needs num_workers >= 2 (kills must hit forks)")
        self.seed = seed
        self.observer = observer
        self.num_workers = num_workers
        if workdir is None:
            workdir = tempfile.mkdtemp(prefix="repro-chaos-")
        self.workdir = Path(workdir)
        # Two labels + nonsparse queries drive the search deep enough
        # (hundreds of recursive calls per slice) that mid-search faults
        # land well past the first parallel checkpoint.
        rng = random.Random(seed)
        labels = [rng.choice("AB") for _ in range(64)]
        self.data = gnm_random_graph(64, 200, labels, rng)
        from ..workloads.query_sets import generate_query_set

        self.queries = generate_query_set(
            self.data, size=8, density="nonsparse", count=4, rng=rng, dataset="chaos"
        ).queries
        if not self.queries:
            raise RuntimeError("chaos workload generator produced no queries")
        self._expected_cache: dict[int, tuple[list, int]] = {}

    # -- fault-free ground truth --------------------------------------
    def _expected(self, index: int) -> tuple[list, int]:
        """Sorted fault-free embeddings + call count for query ``index``."""
        if index not in self._expected_cache:
            from ..core.matcher import DAFMatcher

            result = DAFMatcher().match(MatchRequest(self.queries[index], self.data))
            self._expected_cache[index] = (
                sorted(result.embeddings),
                result.stats.recursive_calls,
            )
        return self._expected_cache[index]

    def _requests(self) -> list[MatchRequest]:
        return [MatchRequest(query=q, tag=i) for i, q in enumerate(self.queries)]

    # -- sweep driver --------------------------------------------------
    def run(self, scenarios=None) -> list[ChaosOutcome]:
        """Sweep ``scenarios`` (default: all 9) and return the outcomes."""
        if scenarios is None:
            scenarios = DEFAULT_SCENARIOS
        outcomes: list[ChaosOutcome] = []
        for site, kind in scenarios:
            start = time.perf_counter()
            try:
                outcome = self._dispatch(site, kind)
            except Exception as exc:
                FAULTS.clear()
                outcome = ChaosOutcome(
                    scenario=f"{site}/{kind}",
                    site=site,
                    kind=kind,
                    status="error",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            outcome.elapsed_seconds = time.perf_counter() - start
            if self.observer is not None:
                self.observer.emit(
                    {
                        "event": "chaos.run",
                        "scenario": outcome.scenario,
                        "site": outcome.site,
                        "kind": outcome.kind,
                        "status": outcome.status,
                        "matched": outcome.matched,
                        "fired": outcome.fired,
                        "resumed": outcome.resumed,
                        "elapsed_seconds": round(outcome.elapsed_seconds, 3),
                    }
                )
            outcomes.append(outcome)
        return outcomes

    def _dispatch(self, site: str, kind: str) -> ChaosOutcome:
        if site == "backtrack.step":
            if kind == "raise":
                return self._backtrack_raise()
            return self._backtrack_parallel(kind)
        if site == "cs.refine":
            if kind == "raise":
                return self._cs_raise()
            if kind == "exit":
                return self._cs_exit()
            return self._cs_hang()
        if site == "worker.start":
            return self._worker_start(kind)
        raise ValueError(f"unknown chaos site {site!r}")

    def _outcome(self, site: str, kind: str, **kw) -> ChaosOutcome:
        return ChaosOutcome(scenario=f"{site}/{kind}", site=site, kind=kind, **kw)

    # -- backtrack.step scenarios --------------------------------------
    def _backtrack_raise(self) -> ChaosOutcome:
        """Sequential crash mid-search: ResilientMatcher must resume the
        same stage from the crash-point checkpoint, not degrade."""
        from .resilient import ResilientMatcher

        expected, total = self._expected(0)
        if total < 4:
            return self._outcome(
                "backtrack.step", "raise", status="skipped", detail="search too small"
            )
        at = max(1, (3 * total) // 4)
        FAULTS.configure(
            [FaultSpec("backtrack.step", "raise", at_visit=at)], seed=self.seed
        )
        try:
            result = ResilientMatcher().match(MatchRequest(self.queries[0], self.data))
            fired = len(FAULTS.fired)
        finally:
            FAULTS.clear()
        resumed = any(
            "resuming from checkpoint" in line for line in result.degradations
        )
        matched = sorted(result.embeddings) == expected
        ok = matched and fired >= 1 and resumed
        return self._outcome(
            "backtrack.step",
            "raise",
            status="ok" if ok else "mismatch",
            matched=matched,
            fired=fired,
            resumed=resumed,
            detail="" if ok else f"fired={fired} resumed={resumed} matched={matched}",
        )

    def _parallel_matcher(self, **overrides):
        from ..extensions.parallel import ParallelDAFMatcher

        kwargs = dict(
            num_workers=self.num_workers,
            max_retries=2,
            checkpoint_every=CHECKPOINT_EVERY,
        )
        kwargs.update(overrides)
        return ParallelDAFMatcher(**kwargs)

    def _backtrack_parallel(self, kind: str) -> ChaosOutcome:
        """Hard-kill (or wedge) a parallel worker mid-search; the retry
        must *resume* its slice from the last piggy-backed checkpoint."""
        expected, _ = self._expected(0)
        request = MatchRequest(self.queries[0], self.data)
        baseline = self._parallel_matcher().match(request)
        slice_calls = [
            o.recursive_calls
            for o in baseline.stats.worker_outcomes
            if o.status == "ok"
        ]
        if len(slice_calls) < 2:
            return self._outcome(
                "backtrack.step", kind, status="skipped", detail="needs >= 2 slices"
            )
        tmax = max(slice_calls)
        # Fire late enough that (a) a checkpoint exists below the crash
        # point and (b) the resumed run finishes before reaching the
        # fault's per-process visit index again (no refire loop):
        # at >= (tmax + CHECKPOINT_EVERY) / 2 with at < tmax.
        if tmax < 2 * CHECKPOINT_EVERY:
            return self._outcome(
                "backtrack.step", kind, status="skipped", detail="slices too small"
            )
        at = max(CHECKPOINT_EVERY, (3 * tmax) // 4)
        overrides = {}
        if kind == "hang":
            overrides["stall_timeout"] = STALL_TIMEOUT
            spec = FaultSpec(
                "backtrack.step", "hang", at_visit=at, hang_seconds=HANG_SECONDS
            )
        else:
            spec = FaultSpec("backtrack.step", "exit", at_visit=at)
        FAULTS.configure([spec], seed=self.seed)
        try:
            result = self._parallel_matcher(**overrides).match(request)
        finally:
            FAULTS.clear()
        resumed = any(
            o.resumed_from_calls > 0 for o in result.stats.worker_outcomes
        )
        fired = result.stats.worker_retries
        matched = sorted(result.embeddings) == expected
        ok = matched and fired >= 1 and resumed
        return self._outcome(
            "backtrack.step",
            kind,
            status="ok" if ok else "mismatch",
            matched=matched,
            fired=fired,
            resumed=resumed,
            detail="" if ok else f"fired={fired} resumed={resumed} matched={matched}",
        )

    # -- cs.refine scenarios -------------------------------------------
    def _count_cs_visits(self) -> int:
        """Total cs.refine hook visits of a fresh-session batch run,
        counted by arming a spec that can never detonate."""
        from ..service.batch import BatchEngine
        from ..service.session import DataGraphSession

        FAULTS.configure([FaultSpec("cs.refine", probability=0.0)], seed=0)
        try:
            BatchEngine(DataGraphSession(self.data)).run(self._requests())
            return FAULTS._visits[0]
        finally:
            FAULTS.clear()

    def _batch_matches(self, batch) -> tuple[bool, str]:
        """Exact per-request equality of a BatchResult vs ground truth."""
        items = batch.by_index()
        if len(items) != len(self.queries):
            return False, f"{len(items)} items for {len(self.queries)} requests"
        for item in items:
            expected, _ = self._expected(item.index)
            if item.status != "ok" or item.result is None:
                return False, f"request {item.index}: {item.status} ({item.error})"
            if sorted(item.result.embeddings) != expected:
                return False, f"request {item.index}: embeddings differ"
        return True, ""

    def _cs_raise(self) -> ChaosOutcome:
        """A batch request crashes during CS construction; re-running
        with the same journal replays the finished requests and retries
        the failed one (fault already consumed)."""
        from ..service.batch import BatchEngine, BatchJournal
        from ..service.session import DataGraphSession

        mid = self._count_cs_visits() // 2
        journal = BatchJournal(self.workdir / "journal-cs-raise")
        engine = BatchEngine(DataGraphSession(self.data))
        FAULTS.configure(
            [FaultSpec("cs.refine", "raise", at_visit=mid)], seed=self.seed
        )
        try:
            first = engine.run(self._requests(), journal=journal)
            fired = len(FAULTS.fired)
            second = engine.run(self._requests(), journal=journal)
        finally:
            FAULTS.clear()
        replayed = any(item.cache == "journal" for item in second.items)
        matched, why = self._batch_matches(second)
        ok = matched and fired >= 1 and first.failed >= 1 and replayed
        return self._outcome(
            "cs.refine",
            "raise",
            status="ok" if ok else "mismatch",
            matched=matched,
            fired=fired,
            detail=why
            or (
                ""
                if ok
                else f"fired={fired} failed={first.failed} replayed={replayed}"
            ),
        )

    def _cs_exit(self) -> ChaosOutcome:
        """The whole batch process is hard-killed mid-run; a fresh
        process finishes the batch by replaying the journal."""
        from ..service.batch import BatchEngine, BatchJournal
        from ..service.session import DataGraphSession

        mid = self._count_cs_visits() // 2
        journal_root = self.workdir / "journal-cs-exit"
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(
            target=_chaos_batch_child,
            args=(
                self.data,
                self.queries,
                journal_root,
                [FaultSpec("cs.refine", "exit", at_visit=mid)],
                self.seed,
            ),
            daemon=True,
        )
        child.start()
        child.join(timeout=60.0)
        if child.is_alive():
            child.terminate()
            child.join()
        fired = 1 if child.exitcode == 3 else 0
        final = BatchEngine(DataGraphSession(self.data)).run(
            self._requests(), journal=BatchJournal(journal_root)
        )
        replayed = any(item.cache == "journal" for item in final.items)
        matched, why = self._batch_matches(final)
        ok = matched and fired == 1 and replayed
        return self._outcome(
            "cs.refine",
            "exit",
            status="ok" if ok else "mismatch",
            matched=matched,
            fired=fired,
            detail=why or ("" if ok else f"exitcode={child.exitcode} replayed={replayed}"),
        )

    def _cs_hang(self) -> ChaosOutcome:
        """An injected hang during CS refinement is capped by the armed
        budget; the breached request is re-run clean and must agree."""
        from ..core.matcher import DAFMatcher

        expected, _ = self._expected(0)
        FAULTS.configure(
            [
                FaultSpec(
                    "cs.refine", "hang", at_visit=1, hang_seconds=HANG_SECONDS
                )
            ],
            seed=self.seed,
        )
        try:
            breached = DAFMatcher().match(
                MatchRequest(
                    self.queries[0],
                    self.data,
                    options=MatchOptions(budget=Budget(time_limit=0.4)),
                )
            )
            fired = len(FAULTS.fired)
        finally:
            FAULTS.clear()
        capped = breached.budget_breach == "time" or breached.timed_out
        retry = DAFMatcher().match(MatchRequest(self.queries[0], self.data))
        matched = sorted(retry.embeddings) == expected
        ok = matched and fired >= 1 and capped
        return self._outcome(
            "cs.refine",
            "hang",
            status="ok" if ok else "mismatch",
            matched=matched,
            fired=fired,
            detail="" if ok else f"fired={fired} capped={capped} matched={matched}",
        )

    # -- worker.start scenarios ----------------------------------------
    def _worker_start(self, kind: str) -> ChaosOutcome:
        """Kill/wedge one worker at startup; the supervisor's plain
        retry (attempt 1 no longer matches the fault filter) recovers."""
        expected, _ = self._expected(0)
        request = MatchRequest(self.queries[0], self.data)
        baseline = self._parallel_matcher().match(request)
        if len(baseline.stats.worker_outcomes) < 2:
            return self._outcome(
                "worker.start", kind, status="skipped", detail="needs >= 2 slices"
            )
        overrides = {}
        spec_kw: dict = {"match": {"slice_index": 0, "attempt": 0}}
        if kind == "hang":
            overrides["stall_timeout"] = STALL_TIMEOUT
            spec_kw["hang_seconds"] = HANG_SECONDS
        FAULTS.configure(
            [FaultSpec("worker.start", kind, **spec_kw)], seed=self.seed
        )
        try:
            result = self._parallel_matcher(**overrides).match(request)
        finally:
            FAULTS.clear()
        fired = result.stats.worker_retries
        matched = sorted(result.embeddings) == expected
        ok = matched and fired >= 1
        return self._outcome(
            "worker.start",
            kind,
            status="ok" if ok else "mismatch",
            matched=matched,
            fired=fired,
            detail="" if ok else f"fired={fired} matched={matched}",
        )
