"""Graceful degradation: a matcher wrapper that refuses to crash.

A production matching service cannot answer a heavy-tail query with a
traceback.  :class:`ResilientMatcher` wraps a primary matcher (DAF by
default) and walks a *degradation chain* when an attempt dies or blows
its memory budget, trading answer richness for survival:

1. the primary matcher, under the full :class:`~repro.resilience.Budget`;
2. the same DAF configuration in **counting mode**
   (``collect_embeddings=False``) — the dominant allocation (materialized
   embeddings) disappears and leaf counting goes combinatorial;
3. a **light preprocessing** DAF configuration (one refinement pass, no
   local filters) — the CS structure shrinks to near the label filter;
4. a designated **fallback baseline** (VF2 by default: zero auxiliary
   structure, worst-case time but minimal space).

Time and call budgets are *global* across the chain — a timed-out attempt
is returned immediately, because retrying cannot manufacture wall clock —
while the memory ceiling is re-armed per attempt (each stage allocates
less than the one before).  Unexpected exceptions (including injected
faults) are crash-isolated: logged to ``result.degradations`` and the
chain moves on.  Every attempt, successful or not, leaves one line in
``MatchResult.degradations``.

Degrading throws away work, so it is the *second* choice: when a DAF
stage crashes but the engine captured a
:class:`~repro.resilience.checkpoint.SearchCheckpoint` at the point of
failure (attached to the exception as ``exc.search_checkpoint``), the
same stage is retried with ``resume_from`` — continuing the search
bit-identically from where it stopped instead of dropping to a weaker
configuration.  Resume retries are bounded (``max_resume_attempts``) and
each must have advanced the call counter past the previous checkpoint,
so a deterministically-crashing site cannot loop forever.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Optional

from ..core.config import MatchConfig
from ..core.matcher import DAFMatcher
from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Embedding,
    Matcher,
    MatchResult,
    SearchStats,
)
from .budget import Budget

#: Config overrides for the light-preprocessing degradation stage.
_LIGHT_OVERRIDES = dict(
    refinement_steps=1,
    refine_to_fixpoint=False,
    use_local_filters=False,
    collect_embeddings=False,
)


class ResilientMatcher(Matcher):
    """Wrap a matcher in the budgeted graceful-degradation chain.

    Parameters
    ----------
    primary:
        The first matcher tried; defaults to ``DAFMatcher(config)``.
    config:
        DAF configuration for the primary (ignored when ``primary`` is
        given and is not a :class:`DAFMatcher`).
    fallback:
        Last-resort matcher; defaults to VF2 (no candidate
        precomputation, minimal memory).  Pass ``None`` explicitly via
        ``use_fallback=False`` to disable the final stage.
    max_calls / max_memory:
        Budget dimensions applied to every DAF attempt (``max_calls``
        is global: calls spent by failed attempts count against it).
    max_resume_attempts:
        How many times a crashed DAF stage may be resumed from its
        crash-point checkpoint before the chain degrades instead.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> data = Graph(labels=["A", "B", "B"], edges=[(0, 1), (0, 2), (1, 2)])
    >>> query = Graph(labels=["A", "B"], edges=[(0, 1)])
    >>> from repro.interfaces import MatchRequest
    >>> ResilientMatcher().match(MatchRequest(query, data)).count
    2
    """

    def __init__(
        self,
        primary: Optional[Matcher] = None,
        config: Optional[MatchConfig] = None,
        fallback: Optional[Matcher] = None,
        use_fallback: bool = True,
        max_calls: Optional[int] = None,
        max_memory: Optional[int] = None,
        max_resume_attempts: int = 3,
    ) -> None:
        if primary is None:
            primary = DAFMatcher(config if config is not None else MatchConfig())
        self.primary = primary
        if fallback is None and use_fallback:
            from ..baselines.vf2 import VF2Matcher

            fallback = VF2Matcher()
        self.fallback = fallback
        self.max_calls = max_calls
        self.max_memory = max_memory
        self.max_resume_attempts = max_resume_attempts
        self.name = f"resilient({getattr(primary, 'name', type(primary).__name__)})"

    # ------------------------------------------------------------------
    def _chain(self) -> list[tuple[str, Matcher]]:
        """The degradation stages for this primary, most capable first."""
        stages: list[tuple[str, Matcher]] = [
            (getattr(self.primary, "name", type(self.primary).__name__), self.primary)
        ]
        base = getattr(self.primary, "config", None)
        if isinstance(self.primary, DAFMatcher) and isinstance(base, MatchConfig):
            if base.collect_embeddings:
                counting = dataclasses.replace(base, collect_embeddings=False)
                stages.append((f"{counting.variant_name}(counting)", DAFMatcher(counting)))
            else:
                counting = base
            light = dataclasses.replace(counting, **_LIGHT_OVERRIDES)
            stages.append((f"{light.variant_name}(light-filter)", DAFMatcher(light)))
        if self.fallback is not None:
            stages.append(
                (getattr(self.fallback, "name", type(self.fallback).__name__), self.fallback)
            )
        return stages

    def _match_impl(
        self,
        query: Graph,
        data: Graph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        start = time.perf_counter()
        obs = self.observer
        log: list[str] = []
        calls_spent = 0
        last_result: Optional[MatchResult] = None

        def remaining_time() -> Optional[float]:
            if time_limit is None:
                return None
            return max(0.0, time_limit - (time.perf_counter() - start))

        def note(position: int, stage_name: str, message: str) -> None:
            """Log one chain step and mirror it as a ``degrade`` event."""
            log.append(message)
            if obs is not None:
                obs.emit(
                    {
                        "event": "degrade",
                        "attempt": position,
                        "stage": stage_name,
                        "message": message,
                    }
                )

        stages = self._chain()
        for position, (stage_name, matcher) in enumerate(stages, start=1):
            prefix = f"attempt {position}/{len(stages)} ({stage_name})"
            span = remaining_time()
            if span is not None and span <= 0.0:
                note(position, stage_name, f"{prefix}: skipped, wall-clock budget exhausted")
                break
            remaining_calls = None
            if self.max_calls is not None:
                remaining_calls = self.max_calls - calls_spent
                if remaining_calls <= 0:
                    note(position, stage_name, f"{prefix}: skipped, call budget exhausted")
                    break
            # Stage matchers share the wrapper's registry, so counters
            # accumulate across attempts: the snapshot reports what the
            # whole chain spent, not just the stage that finally answered.
            previous_observer = matcher.observer
            if obs is not None:
                matcher.observer = obs
            result = None
            resume_from = None
            resume_attempts = 0
            try:
                while True:
                    span = remaining_time()
                    if span is not None and span <= 0.0:
                        note(
                            position,
                            stage_name,
                            f"{prefix}: wall-clock budget exhausted mid-resume",
                        )
                        break
                    try:
                        if isinstance(matcher, DAFMatcher):
                            budget = Budget(
                                time_limit=span,
                                max_calls=remaining_calls,
                                max_memory=self.max_memory,
                            )
                            result = matcher._match_impl(
                                query,
                                data,
                                limit=limit,
                                budget=budget,
                                resume_from=resume_from,
                            )
                        else:
                            result = matcher._match_impl(
                                query, data, limit=limit, time_limit=span
                            )
                    except MemoryError:
                        note(position, stage_name, f"{prefix}: MemoryError; degrading")
                        break
                    except Exception as exc:  # crash isolation — KeyboardInterrupt stays fatal
                        # Resume before degrading: if the engine captured
                        # its state at the crash point, retry this same
                        # stage from there — but only while each retry
                        # provably advances past the previous checkpoint.
                        ckpt = getattr(exc, "search_checkpoint", None)
                        advanced = ckpt is not None and (
                            resume_from is None
                            or ckpt.recursive_calls > resume_from.recursive_calls
                        )
                        if (
                            advanced
                            and isinstance(matcher, DAFMatcher)
                            and resume_attempts < self.max_resume_attempts
                        ):
                            resume_attempts += 1
                            resume_from = ckpt
                            note(
                                position,
                                stage_name,
                                f"{prefix}: crashed ({type(exc).__name__}: {exc}); "
                                f"resuming from checkpoint at "
                                f"{ckpt.recursive_calls} calls "
                                f"(resume attempt {resume_attempts})",
                            )
                            continue
                        note(
                            position,
                            stage_name,
                            f"{prefix}: crashed ({type(exc).__name__}: {exc}); degrading",
                        )
                        break
                    break  # the attempt produced a result
            finally:
                if obs is not None:
                    matcher.observer = previous_observer
            if result is None:
                continue

            calls_spent += result.stats.recursive_calls
            last_result = result
            if result.interrupted:
                note(position, stage_name, f"{prefix}: interrupted; returning partial result")
                break
            if result.timed_out or result.budget_breach == "time":
                note(position, stage_name, f"{prefix}: timed out; returning partial result")
                break
            if result.budget_breach == "calls":
                note(
                    position,
                    stage_name,
                    f"{prefix}: call budget exceeded; returning partial result",
                )
                break
            if result.budget_breach == "memory":
                note(
                    position,
                    stage_name,
                    f"{prefix}: memory budget exceeded after "
                    f"{result.stats.recursive_calls} calls; degrading",
                )
                continue
            note(position, stage_name, f"{prefix}: ok ({result.count} embeddings)")
            break

        if last_result is None:
            # Every stage crashed or was skipped: surface flags, not a raise.
            last_result = MatchResult(stats=SearchStats())
            span = remaining_time()
            if span is not None and span <= 0.0:
                last_result.timed_out = True
            else:
                last_result.partial_failure = True
        last_result.degradations = log
        if obs is not None and last_result.stats.metrics is None:
            # Every stage died before snapshotting: still surface what the
            # chain spent.
            last_result.stats.metrics = obs.snapshot()
        if on_embedding is not None:
            for embedding in last_result.embeddings:
                on_embedding(embedding)
        return last_result
