"""Serializable search checkpoints (suspend/resume for the engine).

A :class:`SearchCheckpoint` captures the full frontier of a suspended
:class:`repro.core.backtrack.BacktrackEngine` run — the per-depth
candidate cursors, the failing-set stack, the partial embedding (implied
by the cursors), the collected embeddings, and the deterministic
``SearchStats`` counters — as plain JSON-serializable data.  Resuming a
checkpoint on a freshly prepared engine replays the cursor path and
continues the search so that the combined run is **bit-identical** to an
uninterrupted one: same embeddings in the same order, same
``recursive_calls``/``embeddings_found``.

Design notes
------------

- The checkpoint stores *cursors* (positions into candidate sequences),
  not data-vertex ids: the candidate sequences themselves are
  deterministic functions of the prepared query, so they are recomputed
  on restore and validated frame by frame.  This keeps checkpoints small
  (O(depth + embeddings found)) and makes corruption detectable.
- A ``fingerprint`` of the query/data/config/limit surface guards
  against resuming a checkpoint on a different search; mismatches raise
  :class:`CheckpointMismatchError` instead of silently diverging.
- This module deliberately imports nothing from ``repro`` — it is pure
  data, safe to use from workers, the CLI, and the batch journal without
  import cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

#: Bump when the frame layout changes; loaders reject unknown versions.
CHECKPOINT_VERSION = 1

#: Engine phases at which a suspension is resumable.
PHASES = ("enter_core", "enter_leaf", "report")


class CheckpointMismatchError(ValueError):
    """The checkpoint does not belong to this prepared search (different
    query/data/config/limit, corrupted frames, or unknown version)."""


@dataclass
class SearchCheckpoint:
    """A suspended backtracking search, ready to be serialized.

    Attributes
    ----------
    fingerprint:
        Identifying surface of the search this checkpoint belongs to
        (query/data sizes, config variant knobs, limit, root slice).
        Restore refuses a checkpoint whose fingerprint differs.
    phase:
        Which safe point the engine suspended at (one of :data:`PHASES`).
    frames:
        One ``[kind, u, pos, fs_union, found]`` entry per search-tree
        depth: ``kind`` 0 = core frame / 1 = deferred-leaf frame, ``u``
        the query vertex, ``pos`` the 1-based cursor past the active
        candidate, ``fs_union`` the accumulated failing-set mask and
        ``found`` whether an embedding was found under this node.
    report_step:
        Progress marker inside an interrupted embedding report (0 =
        nothing committed, 1 = counted, 2 = counted + collected) so a
        resume neither drops nor double-counts the embedding.
    recursive_calls / embeddings_found:
        The deterministic counters at suspension; restore seeds the new
        run's ``SearchStats`` with them so final counters match an
        uninterrupted run exactly.
    embeddings:
        Embeddings collected before suspension (empty in counting mode).
    trace:
        Optional correlation payload (the ``to_dict()`` of the
        :class:`repro.obs.telemetry.TraceContext` the suspended search
        was stamped under, as a plain string dict — this module stays
        import-free).  A resumed run adopts it so the continuation lands
        in the same trace as the original request (resume lineage).
    """

    fingerprint: dict
    phase: str
    frames: list = field(default_factory=list)
    report_step: int = 0
    recursive_calls: int = 0
    embeddings_found: int = 0
    embeddings: list = field(default_factory=list)
    trace: Optional[dict] = None
    version: int = CHECKPOINT_VERSION

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise CheckpointMismatchError(
                f"unknown checkpoint phase {self.phase!r}; choices: {PHASES}"
            )

    @property
    def depth(self) -> int:
        return len(self.frames)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            "version": self.version,
            "fingerprint": dict(self.fingerprint),
            "phase": self.phase,
            "frames": [list(frame) for frame in self.frames],
            "report_step": self.report_step,
            "recursive_calls": self.recursive_calls,
            "embeddings_found": self.embeddings_found,
            "embeddings": [list(e) for e in self.embeddings],
        }
        # Only present when a trace was active: untraced checkpoints keep
        # the exact payload shape (and bytes) of prior versions.
        if self.trace is not None:
            payload["trace"] = dict(self.trace)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchCheckpoint":
        if not isinstance(payload, dict):
            raise CheckpointMismatchError("checkpoint payload must be a JSON object")
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointMismatchError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        try:
            frames = [
                [int(k), int(u), int(pos), int(fs), int(found)]
                for k, u, pos, fs, found in payload["frames"]
            ]
            return cls(
                fingerprint=dict(payload["fingerprint"]),
                phase=str(payload["phase"]),
                frames=frames,
                report_step=int(payload.get("report_step", 0)),
                recursive_calls=int(payload["recursive_calls"]),
                embeddings_found=int(payload["embeddings_found"]),
                embeddings=[tuple(int(v) for v in e) for e in payload.get("embeddings", [])],
                trace=(
                    dict(payload["trace"])
                    if payload.get("trace") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointMismatchError(f"malformed checkpoint payload: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "SearchCheckpoint":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointMismatchError(f"checkpoint is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: Any) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Any) -> "SearchCheckpoint":
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())

    def check_fingerprint(self, fingerprint: dict) -> None:
        """Raise :class:`CheckpointMismatchError` unless ``fingerprint``
        matches, naming the first differing key for diagnosis."""
        if self.fingerprint == fingerprint:
            return
        for key in sorted(set(self.fingerprint) | set(fingerprint)):
            mine = self.fingerprint.get(key)
            theirs = fingerprint.get(key)
            if mine != theirs:
                raise CheckpointMismatchError(
                    f"checkpoint belongs to a different search: "
                    f"{key}={mine!r} vs {theirs!r}"
                )
        raise CheckpointMismatchError("checkpoint belongs to a different search")


def resume_payload(checkpoint: Optional["SearchCheckpoint | dict"]) -> Optional[SearchCheckpoint]:
    """Normalize a resume argument: accepts a :class:`SearchCheckpoint`,
    a ``to_dict()`` payload (what travels over worker pipes / journals),
    or ``None``."""
    if checkpoint is None or isinstance(checkpoint, SearchCheckpoint):
        return checkpoint
    return SearchCheckpoint.from_dict(checkpoint)
