"""Deterministic, seedable fault injection for resilience testing.

Real worker crashes (OOM kills, segfaulting C extensions, preempted
containers) are impossible to reproduce on demand, so the degradation
paths that handle them tend to rot untested.  This module plants cheap
hooks at the three places the engine can die in production:

- ``"worker.start"`` — entry of a parallel-search worker process
  (:mod:`repro.extensions.parallel`), context ``slice_index``/``attempt``;
- ``"cs.refine"`` — before each DP refinement pass of CS construction
  (:mod:`repro.core.candidate_space`), context ``step``;
- ``"backtrack.step"`` — every recursive call of the backtracking engine
  (:mod:`repro.core.backtrack`), context ``calls``.

Hooks are compiled to a single attribute check (``FAULTS.active``) when
disarmed, so the hot search loop pays one ``bool`` load per recursive
call — negligible next to the existing deadline tick.

Faults are *specifications*, not monkeypatches: a :class:`FaultSpec`
names a site, an optional context filter (exact-match on the hook's
keyword context), an optional deterministic visit index, a seeded
probability, and a kind:

- ``"raise"`` — raise :class:`InjectedFault` (a Python-level crash;
  supervised workers convert it into an error envelope);
- ``"exit"``  — ``os._exit(3)`` (a hard kill: no exception propagation,
  no result envelope — exactly what an OOM kill looks like);
- ``"hang"``  — sleep ``hang_seconds`` (a stuck worker the supervisor
  must reap by deadline).

Hangs are *budget-capped*: hook owners bind their live deadline/budget
governor via :meth:`FaultInjector.bind_budget`, and an injected hang then
sleeps in small interruptible slices, never past the governor's remaining
time — so chaos sweeps and CI can never stall longer than the armed
deadline.

Because parallel workers are forked, arming the injector in the parent
arms it in every worker — which is precisely how the tests kill one
worker out of N deterministically (filter on ``slice_index``).
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: The hook sites the engine exposes, for validation and documentation.
SITES = ("worker.start", "cs.refine", "backtrack.step")

KINDS = ("raise", "exit", "hang")


class InjectedFault(RuntimeError):
    """The crash raised by a ``kind="raise"`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One planted fault.

    Attributes
    ----------
    site:
        Hook site name (one of :data:`SITES`).
    kind:
        ``"raise"``, ``"exit"`` or ``"hang"`` (see module docstring).
    match:
        Context filter: the fault only fires at hook visits whose keyword
        context contains every ``key: value`` pair listed here (e.g.
        ``{"slice_index": 0, "attempt": 0}`` kills only the first attempt
        of the first parallel slice).
    at_visit:
        Fire only on the Nth (0-based) *matching* visit; ``None`` means
        every matching visit is eligible.
    probability:
        Chance an eligible visit actually fires, drawn from the
        injector's seeded RNG (1.0 = always — fully deterministic).
    hang_seconds:
        Sleep duration for ``kind="hang"``.
    """

    site: str
    kind: str = "raise"
    match: dict = field(default_factory=dict)
    at_visit: Optional[int] = None
    probability: float = 1.0
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; choices: {SITES}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choices: {KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")


class FaultInjector:
    """Process-global fault registry with per-spec visit counters.

    Disarmed by default; arm with :meth:`configure` (or the
    :func:`inject` context manager) and the hook sites start consulting
    the spec list.  Counters and the RNG are part of the injector, so a
    forked worker inherits the parent's arming — deterministic across
    the fork boundary.
    """

    #: Granularity of an injected hang's interruptible sleep slices.
    HANG_SLICE = 0.05

    def __init__(self) -> None:
        self.active = False
        self._specs: list[FaultSpec] = []
        self._visits: list[int] = []
        self._rng = random.Random(0)
        self.fired: list[tuple[str, dict]] = []
        self._governor = None

    def configure(self, specs: list[FaultSpec], seed: int = 0) -> None:
        self._specs = list(specs)
        self._visits = [0] * len(specs)
        self._rng = random.Random(seed)
        self.fired = []
        self.active = bool(specs)

    def clear(self) -> None:
        self.configure([])
        self._governor = None

    def bind_budget(self, governor) -> None:
        """Cap injected hangs at ``governor``'s remaining time.

        ``governor`` is a :class:`repro.interfaces.Deadline` or a
        :class:`repro.resilience.budget.Budget` (anything exposing
        ``remaining_time()`` or a ``_deadline`` perf-counter instant).
        Hook owners bind before entering a faulted region and unbind on
        the way out; binding is identity-keyed so a nested owner cannot
        accidentally drop another's governor.
        """
        self._governor = governor

    def unbind_budget(self, governor) -> None:
        if self._governor is governor:
            self._governor = None

    def _governor_remaining(self) -> Optional[float]:
        """Seconds left on the bound governor, or None when unbounded."""
        governor = self._governor
        if governor is None:
            return None
        remaining = getattr(governor, "remaining_time", None)
        if callable(remaining):
            return remaining()
        instant = getattr(governor, "_deadline", None)
        if instant is None:
            return None
        return instant - time.perf_counter()

    def fire(self, site: str, **context) -> None:
        """Hook entry point: trigger any armed fault matching this visit.

        Cheap no-op when disarmed (guard with ``if FAULTS.active`` at hot
        sites to skip even the call).
        """
        if not self.active:
            return
        for index, spec in enumerate(self._specs):
            if spec.site != site:
                continue
            if any(context.get(k) != v for k, v in spec.match.items()):
                continue
            visit = self._visits[index]
            self._visits[index] = visit + 1
            if spec.at_visit is not None and visit != spec.at_visit:
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            self.fired.append((site, dict(context)))
            self._detonate(spec, site)

    def _detonate(self, spec: FaultSpec, site: str) -> None:
        if spec.kind == "exit":
            os._exit(3)
        if spec.kind == "hang":
            self._hang(spec.hang_seconds)
            return
        raise InjectedFault(f"injected fault at {site}")

    def _hang(self, seconds: float) -> None:
        """Sleep up to ``seconds``, in slices, capped at the bound
        governor's remaining time (a hang should stall the owner, not
        outlive its deadline)."""
        end = time.perf_counter() + seconds
        while True:
            left = end - time.perf_counter()
            if left <= 0:
                return
            budget_left = self._governor_remaining()
            if budget_left is not None:
                if budget_left <= 0:
                    return
                left = min(left, budget_left)
            time.sleep(min(left, self.HANG_SLICE))


#: The process-global injector every hook site consults.
FAULTS = FaultInjector()


@contextmanager
def inject(*specs: FaultSpec, seed: int = 0) -> Iterator[FaultInjector]:
    """Arm :data:`FAULTS` with ``specs`` for the duration of the block.

    >>> from repro.resilience.faults import FaultSpec, inject
    >>> with inject(FaultSpec(site="cs.refine", at_visit=1)):
    ...     pass  # any CS build in here crashes on its second DP pass
    """
    FAULTS.configure(list(specs), seed=seed)
    try:
        yield FAULTS
    finally:
        FAULTS.clear()
