"""Multi-dimension cooperative execution budgets.

:class:`repro.interfaces.Deadline` governs exactly one resource — wall
clock.  Production matching services need to bound more than time: a
runaway query can exhaust memory by materializing millions of embeddings
or by building a huge CS structure, and machine-independent regression
gates are better expressed in *recursive calls* (the paper's §5.3 cost
metric) than in seconds.  :class:`Budget` generalizes ``Deadline`` to a
single governor over three dimensions:

- **time** — wall-clock seconds, polled every ``check_interval`` ticks
  exactly like ``Deadline``;
- **calls** — recursive-call count, checked on *every* tick (an integer
  compare, far cheaper than ``perf_counter``);
- **memory** — an estimate in bytes of the search's dominant allocations
  (candidate-space entries/edges and collected embeddings), charged by
  the enforcement points via :meth:`charge_memory` / :meth:`note_memory`.

A ``Budget`` is duck-compatible with ``Deadline`` (``tick()`` /
``expired()``), so every engine that accepts a deadline — the DAF
backtracking engine, the baselines' shared ``ordered_backtrack`` — accepts
a budget unchanged.  On breach, ``tick()`` raises :class:`BudgetExceeded`,
a subclass of :class:`~repro.interfaces.TimeoutSignal`, so existing
timeout handling unwinds the search and the partial result survives; the
matcher then reports ``MatchResult.budget_breach`` with the dimension
name instead of crashing.

The memory dimension is an *estimate*, not an rlimit: pure-Python object
overhead varies by interpreter, so the constants below are calibrated to
CPython's typical 64-bit footprints and documented as approximations.
"""

from __future__ import annotations

import time
from typing import Optional

from ..interfaces import TimeoutSignal

#: Estimated bytes one candidate-space entry costs (list slot + index
#: dict entry + the int objects behind them).
CANDIDATE_BYTES = 120
#: Estimated bytes one materialized CS edge costs (a slot in a tuple of
#: candidate indices).
CS_EDGE_BYTES = 16
#: Estimated fixed overhead of one collected embedding tuple.
EMBEDDING_BASE_BYTES = 56
#: Estimated incremental bytes per vertex of a collected embedding.
EMBEDDING_SLOT_BYTES = 8


def embedding_bytes(num_vertices: int) -> int:
    """Estimated bytes a collected embedding of this arity costs."""
    return EMBEDDING_BASE_BYTES + EMBEDDING_SLOT_BYTES * num_vertices


class BudgetExceeded(TimeoutSignal):
    """Raised by :meth:`Budget.tick` when any dimension is exhausted.

    Subclasses :class:`TimeoutSignal` so every engine's existing timeout
    unwinding path catches it; ``dimension`` records which budget blew
    (``"time"``, ``"calls"`` or ``"memory"``).
    """

    def __init__(self, dimension: str, detail: str = "") -> None:
        super().__init__(detail or f"{dimension} budget exceeded")
        self.dimension = dimension


class Budget:
    """A cooperative multi-dimension governor for one ``match()`` call.

    Single-use: construct immediately before the work it governs (the
    wall clock starts at construction), thread it through the search,
    and read :attr:`breach` afterwards.

    Parameters
    ----------
    time_limit:
        Wall-clock seconds, as :class:`~repro.interfaces.Deadline`.
    max_calls:
        Maximum recursive calls (ticks) before the search is cut off.
    max_memory:
        Estimated allocation ceiling in bytes (see module constants).
    check_interval:
        Ticks between wall-clock polls (calls and memory over-charge are
        checked on every tick/charge — they are cheap int compares).
    """

    __slots__ = (
        "_deadline",
        "_start",
        "max_calls",
        "max_memory",
        "calls",
        "memory",
        "breach",
        "_interval",
        "_countdown",
    )

    def __init__(
        self,
        time_limit: Optional[float] = None,
        max_calls: Optional[int] = None,
        max_memory: Optional[int] = None,
        check_interval: int = 256,
    ) -> None:
        if max_calls is not None and max_calls < 1:
            raise ValueError("max_calls must be >= 1")
        if max_memory is not None and max_memory < 1:
            raise ValueError("max_memory must be >= 1")
        self._start = time.perf_counter()
        self._deadline = None if time_limit is None else self._start + time_limit
        self.max_calls = max_calls
        self.max_memory = max_memory
        self.calls = 0
        self.memory = 0
        self.breach: Optional[str] = None
        self._interval = check_interval
        self._countdown = check_interval

    # -- Deadline-compatible surface ----------------------------------
    def tick(self) -> None:
        """One unit of search work; raises :class:`BudgetExceeded` when
        any dimension is exhausted."""
        self.calls += 1
        if self.max_calls is not None and self.calls > self.max_calls:
            self._blow("calls")
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self._interval
            self.poll()

    def expired(self) -> bool:
        """Non-raising check across every dimension."""
        if self.breach is not None:
            return True
        if self._deadline is not None and time.perf_counter() > self._deadline:
            return True
        if self.max_calls is not None and self.calls > self.max_calls:
            return True
        if self.max_memory is not None and self.memory > self.max_memory:
            return True
        return False

    # -- extended surface ---------------------------------------------
    def poll(self) -> None:
        """Unconditional slow-path check (time + memory); used by
        coarse-grained enforcement points such as CS refinement passes."""
        if self._deadline is not None and time.perf_counter() > self._deadline:
            self._blow("time")
        if self.max_memory is not None and self.memory > self.max_memory:
            self._blow("memory")

    def charge_memory(self, nbytes: int) -> None:
        """Account ``nbytes`` of estimated allocation; raises on breach."""
        self.memory += nbytes
        if self.max_memory is not None and self.memory > self.max_memory:
            self._blow("memory")

    def note_memory(self, nbytes: int) -> None:
        """Record a *level* estimate (e.g. current CS size): the high-water
        mark of noted levels, not a cumulative sum."""
        if nbytes > self.memory:
            self.memory = nbytes
        if self.max_memory is not None and self.memory > self.max_memory:
            self._blow("memory")

    def cap_time(self, seconds: float) -> None:
        """Tighten the wall-clock dimension to at most ``seconds`` from
        now (never loosens an earlier deadline)."""
        candidate = time.perf_counter() + seconds
        if self._deadline is None or candidate < self._deadline:
            self._deadline = candidate

    def remaining_time(self) -> Optional[float]:
        """Seconds left on the wall-clock dimension (``None`` = unbounded)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.perf_counter())

    def remaining_calls(self) -> Optional[int]:
        if self.max_calls is None:
            return None
        return max(0, self.max_calls - self.calls)

    def _blow(self, dimension: str) -> None:
        self.breach = dimension
        raise BudgetExceeded(dimension)

    def __repr__(self) -> str:
        dims = []
        if self._deadline is not None:
            dims.append(f"time={self._deadline - self._start:.3f}s")
        if self.max_calls is not None:
            dims.append(f"calls={self.calls}/{self.max_calls}")
        if self.max_memory is not None:
            dims.append(f"memory={self.memory}/{self.max_memory}B")
        state = f", breach={self.breach!r}" if self.breach else ""
        return f"Budget({', '.join(dims) or 'unbounded'}{state})"
