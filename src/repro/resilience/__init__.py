"""Resilient execution layer: budgets, fault injection, degradation.

The paper's evaluation protocol (§7) assumes every matcher respects a
wall-clock budget and reports partial work on expiry; a production
service additionally needs call/memory ceilings, crash-isolated parallel
workers, and a degradation path for the heavy-tail queries where all of
this actually triggers.  This package provides those pieces:

- :class:`Budget` / :class:`BudgetExceeded` — a cooperative
  multi-dimension governor (wall clock, recursive calls, estimated
  memory) duck-compatible with :class:`repro.interfaces.Deadline`;
- :mod:`repro.resilience.faults` — deterministic, seedable fault
  injection at the worker-start / CS-refinement / backtrack-step hooks;
- :mod:`repro.resilience.checkpoint` — serializable suspend/resume state
  for the backtracking engine (:class:`SearchCheckpoint`);
- :class:`ResilientMatcher` — a wrapper walking a graceful-degradation
  chain (resume from checkpoint → counting mode → light filters →
  fallback baseline) instead of crashing;
- :mod:`repro.resilience.chaos` — seeded end-to-end fault sweeps that
  assert exact result equality against fault-free runs.

See ``docs/robustness.md`` for the full tour.
"""

from .budget import (
    CANDIDATE_BYTES,
    CS_EDGE_BYTES,
    Budget,
    BudgetExceeded,
    embedding_bytes,
)
from .checkpoint import CheckpointMismatchError, SearchCheckpoint
from .faults import FAULTS, FaultInjector, FaultSpec, InjectedFault, inject

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CANDIDATE_BYTES",
    "CS_EDGE_BYTES",
    "CheckpointMismatchError",
    "FAULTS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "ResilientMatcher",
    "SearchCheckpoint",
    "embedding_bytes",
    "inject",
]


def __getattr__(name: str):
    # ResilientMatcher pulls in repro.core, which itself imports this
    # package for the fault hooks — resolve it lazily to avoid the cycle.
    if name == "ResilientMatcher":
        from .resilient import ResilientMatcher

        return ResilientMatcher
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
