"""DAF for directed graphs (the §2 "readily extended" case, implemented).

A directed embedding preserves labels and *directed* edges:
``(u, u') in E(q)`` requires ``(M(u), M(u')) in E(G)`` with the same
orientation.  The extension follows the paper's remark that the
techniques carry over directly — and indeed only the candidate layer is
direction-aware here:

- **C_ini** filters on in- and out-degree separately;
- the first DP pass applies a directed NLF (successor- and
  predecessor-label multiset domination);
- **DAG-graph DP** and the CS edge materialization check adjacency in the
  direction(s) the query edge demands (antiparallel query pairs demand
  both);
- the query DAG is built on the *underlying undirected* query (a DAG
  orientation is a processing order, orthogonal to edge semantics).

Everything after the CS — DAG ordering, weight array, adaptive matching
order, failing sets, leaf decomposition — is the unmodified undirected
engine (:class:`repro.core.backtrack.BacktrackEngine`), which operates
purely on the CS index lists.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..core.backtrack import BacktrackEngine
from ..core.candidate_space import CandidateSpace
from ..core.config import MatchConfig
from ..core.dag import bfs_vertex_order
from ..graph.digraph import RootedDAG
from ..graph.graph import Graph
from ..interfaces import (
    DEFAULT_LIMIT,
    Deadline,
    Embedding,
    MatchResult,
    SearchStats,
    TimeoutSignal,
)
from .digraph_data import DirectedGraph

DirectionCode = str  # "fwd" | "bwd" | "both", relative to (min, max)


def is_directed_embedding(mapping: Embedding, query: DirectedGraph, data: DirectedGraph) -> bool:
    """Check the directed embedding conditions."""
    if len(mapping) != query.num_vertices:
        return False
    if len(set(mapping)) != len(mapping):
        return False
    for u in query.vertices():
        if query.label(u) != data.label(mapping[u]):
            return False
    for u, w in query.edges():
        if not data.has_edge(mapping[u], mapping[w]):
            return False
    return True


def directed_initial_candidates(query: DirectedGraph, data: DirectedGraph, u: int) -> set[int]:
    """Directed C_ini: label match + in/out-degree domination."""
    out_needed = query.out_degree(u)
    in_needed = query.in_degree(u)
    return {
        v
        for v in data.vertices_with_label(query.label(u))
        if data.out_degree(v) >= out_needed and data.in_degree(v) >= in_needed
    }


def passes_directed_nlf(query: DirectedGraph, data: DirectedGraph, u: int, v: int) -> bool:
    """Directed NLF: successor- and predecessor-label multisets dominate."""
    data_out = data.out_label_counts(v)
    for label, needed in query.out_label_counts(u).items():
        if data_out.get(label, 0) < needed:
            return False
    data_in = data.in_label_counts(v)
    for label, needed in query.in_label_counts(u).items():
        if data_in.get(label, 0) < needed:
            return False
    return True


def _edge_direction(u: int, u_c: int, directions: dict[tuple[int, int], DirectionCode]) -> DirectionCode:
    """Direction code of the query edge between ``u`` and ``u_c``,
    re-expressed relative to the (u, u_c) ordering: "fwd" = u -> u_c."""
    key = (u, u_c) if u < u_c else (u_c, u)
    code = directions[key]
    if code == "both":
        return "both"
    if u < u_c:
        return code
    return "fwd" if code == "bwd" else "bwd"


def _supported(data: DirectedGraph, v: int, child_candidates: set[int], code: DirectionCode) -> bool:
    """Does ``v`` have a child candidate in the required direction(s)?"""
    if code == "fwd":
        pool = data.out_set(v)
        return not child_candidates.isdisjoint(pool)
    if code == "bwd":
        pool = data.in_set(v)
        return not child_candidates.isdisjoint(pool)
    out_pool = data.out_set(v)
    in_pool = data.in_set(v)
    return any(w in out_pool and w in in_pool for w in child_candidates)


def _adjacent_candidates(
    data: DirectedGraph, v: int, child_index: dict[int, int], code: DirectionCode
) -> tuple[int, ...]:
    """CS down-list entry: child-candidate indices adjacent to ``v`` in
    the required direction(s)."""
    if code == "fwd":
        return tuple(child_index[w] for w in data.out_neighbors(v) if w in child_index)
    if code == "bwd":
        return tuple(child_index[w] for w in data.in_neighbors(v) if w in child_index)
    in_pool = data.in_set(v)
    return tuple(
        child_index[w] for w in data.out_neighbors(v) if w in in_pool and w in child_index
    )


def build_directed_candidate_space(
    query: DirectedGraph,
    data: DirectedGraph,
    refinement_steps: int = 3,
    use_local_filters: bool = True,
) -> tuple[CandidateSpace, RootedDAG]:
    """BuildDAG + BuildCS for directed graphs.

    Returns the CS (over the undirected skeleton of the query, with
    direction-aware edges) and the rooted query DAG.
    """
    query_und, directions = query.to_undirected()
    from ..graph.properties import is_connected

    if query_und.num_vertices > 1 and not is_connected(query_und):
        raise ValueError("query graph must be (weakly) connected")

    candidate_sets = [directed_initial_candidates(query, data, u) for u in query.vertices()]

    # Root rule: argmin |C_ini(u)| / und-degree(u).
    def score(u: int) -> float:
        degree = query_und.degree(u)
        count = len(candidate_sets[u])
        return count / degree if degree else float(count)

    root = min(query_und.vertices(), key=lambda u: (score(u), u))
    order = bfs_vertex_order(query_und, data, root)
    rank = {u: i for i, u in enumerate(order)}
    dag_edges = []
    for u, w in query_und.edges():
        dag_edges.append((u, w) if rank[u] < rank[w] else (w, u))
    dag = RootedDAG(query_und, dag_edges, root)

    # Alternating DAG-graph DP with direction-aware adjacency.
    passes = [dag.reverse(), dag]
    for step in range(refinement_steps):
        direction = passes[step % 2]
        for u in reversed(direction.topological_order()):
            survivors: set[int] = set()
            children = direction.children(u)
            for v in candidate_sets[u]:
                if step == 0 and use_local_filters and not passes_directed_nlf(query, data, u, v):
                    continue
                ok = True
                for u_c in children:
                    code = _edge_direction(u, u_c, directions)
                    if not _supported(data, v, candidate_sets[u_c], code):
                        ok = False
                        break
                if ok:
                    survivors.add(v)
            candidate_sets[u] = survivors

    candidates = [sorted(c) for c in candidate_sets]
    candidate_index = [{v: i for i, v in enumerate(c)} for c in candidates]
    down: list[dict[int, list[tuple[int, ...]]]] = [{} for _ in query.vertices()]
    for u in query.vertices():
        for u_c in dag.children(u):
            code = _edge_direction(u, u_c, directions)
            child_index = candidate_index[u_c]
            down[u][u_c] = [
                _adjacent_candidates(data, v, child_index, code) for v in candidates[u]
            ]
    cs = CandidateSpace(
        query=query_und,
        data=data,  # type: ignore[arg-type]  # engine only touches it in induced mode
        dag=dag,
        candidates=candidates,
        candidate_index=candidate_index,
        down=down,
        refinement_steps=refinement_steps,
    )
    return cs, dag


class DirectedDAFMatcher:
    """DAF over directed graphs.

    Same result/statistics contract as the undirected matchers; the
    ``induced`` config is rejected (its non-edge semantics are not
    defined here) and ``injective=False`` directed homomorphisms are
    supported like the undirected case.
    """

    def __init__(self, config: Optional[MatchConfig] = None) -> None:
        self.config = config if config is not None else MatchConfig()
        if self.config.induced:
            raise ValueError("induced matching is not supported for directed graphs")
        self.name = f"{self.config.variant_name}-directed"

    def match(
        self,
        query: DirectedGraph,
        data: DirectedGraph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
        on_embedding: Optional[Callable[[Embedding], None]] = None,
    ) -> MatchResult:
        query._require_frozen()
        data._require_frozen()
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        start = time.perf_counter()
        if self.config.injective:
            cs, _dag = build_directed_candidate_space(
                query,
                data,
                refinement_steps=self.config.refinement_steps,
                use_local_filters=self.config.use_local_filters,
            )
        else:
            # Homomorphism mode: degree/NLF filters are unsound; label-only.
            cs, _dag = build_directed_candidate_space(
                query, data, refinement_steps=self.config.refinement_steps,
                use_local_filters=False,
            )
        stats = SearchStats(
            candidates_total=cs.size,
            filter_iterations=cs.refinement_steps,
            preprocess_seconds=time.perf_counter() - start,
        )
        result = MatchResult(stats=stats)
        if cs.is_empty():
            return result
        engine = BacktrackEngine(
            cs,
            self.config,
            limit=limit,
            deadline=Deadline(time_limit),
            stats=stats,
            on_embedding=on_embedding,
        )
        search_start = time.perf_counter()
        try:
            engine.run()
        except TimeoutSignal:
            result.timed_out = True
        stats.search_seconds = time.perf_counter() - search_start
        result.embeddings = engine.embeddings
        result.limit_reached = engine.limit_reached
        return result

    def count(self, query: DirectedGraph, data: DirectedGraph, **kwargs) -> int:
        # Not the deprecated interfaces.Matcher shim: positional match()
        # is this subsystem's own (DirectedGraph) surface.
        return self.match(query, data, **kwargs).count  # lint: ignore[IFC003]


class DirectedBruteForce:
    """Reference directed matcher for tests (permutation-style search)."""

    name = "directed-brute-force"

    def match(
        self,
        query: DirectedGraph,
        data: DirectedGraph,
        limit: int = DEFAULT_LIMIT,
        time_limit: Optional[float] = None,
    ) -> MatchResult:
        stats = SearchStats()
        result = MatchResult(stats=stats)
        deadline = Deadline(time_limit)
        n = query.num_vertices
        mapping = [-1] * n
        used: set[int] = set()

        class _Stop(Exception):
            pass

        def extend(u: int) -> None:
            stats.recursive_calls += 1
            deadline.tick()
            if u == n:
                stats.embeddings_found += 1
                result.embeddings.append(tuple(mapping))
                if stats.embeddings_found >= limit:
                    raise _Stop
                return
            for v in data.vertices_with_label(query.label(u)):
                if v in used:
                    continue
                ok = True
                for w in query.out_neighbors(u):
                    if w < u and not data.has_edge(v, mapping[w]):
                        ok = False
                        break
                if ok:
                    for w in query.in_neighbors(u):
                        if w < u and not data.has_edge(mapping[w], v):
                            ok = False
                            break
                if ok:
                    mapping[u] = v
                    used.add(v)
                    extend(u + 1)
                    used.discard(v)
                    mapping[u] = -1

        try:
            extend(0)
        except _Stop:
            result.limit_reached = True
        except TimeoutSignal:
            result.timed_out = True
        return result
