"""Directed subgraph matching — the paper's §2 extension, implemented."""

from .digraph_data import DirectedGraph, DirectedGraphError
from .matcher import (
    DirectedBruteForce,
    DirectedDAFMatcher,
    build_directed_candidate_space,
    directed_initial_candidates,
    is_directed_embedding,
    passes_directed_nlf,
)

__all__ = [
    "DirectedBruteForce",
    "DirectedDAFMatcher",
    "DirectedGraph",
    "DirectedGraphError",
    "build_directed_candidate_space",
    "directed_initial_candidates",
    "is_directed_embedding",
    "passes_directed_nlf",
]
