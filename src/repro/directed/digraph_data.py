"""Vertex-labeled directed graphs (the paper's §2 "readily extended" case).

:class:`DirectedGraph` mirrors :class:`repro.graph.graph.Graph` with
directed adjacency: per-vertex successor and predecessor structures, in-
and out-degrees, and a label index.  Antiparallel pairs (both ``u->v``
and ``v->u``) are allowed — they are how mutual relationships appear in
citation/follow graphs — but parallel duplicates and self-loops are not.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

Label = Hashable
Edge = tuple[int, int]


class DirectedGraphError(ValueError):
    """Raised for structurally invalid directed-graph operations."""


class DirectedGraph:
    """A simple directed graph with one label per vertex.

    Examples
    --------
    >>> g = DirectedGraph(labels=["A", "B"], edges=[(0, 1)])
    >>> g.out_neighbors(0), g.in_neighbors(1)
    ((1,), (0,))
    >>> g.has_edge(0, 1), g.has_edge(1, 0)
    (True, False)
    """

    __slots__ = (
        "_labels",
        "_out_sets",
        "_in_sets",
        "_out",
        "_in",
        "_num_edges",
        "_frozen",
        "_label_index",
    )

    def __init__(
        self,
        labels: Optional[Iterable[Label]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        self._labels: list[Label] = []
        self._out_sets: list[set[int]] = []
        self._in_sets: list[set[int]] = []
        self._out: list[tuple[int, ...]] = []
        self._in: list[tuple[int, ...]] = []
        self._num_edges = 0
        self._frozen = False
        self._label_index: dict[Label, tuple[int, ...]] = {}
        if labels is not None:
            for label in labels:
                self.add_vertex(label)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)
        if labels is not None or edges is not None:
            self.freeze()

    # ------------------------------------------------------------------
    def add_vertex(self, label: Label) -> int:
        if self._frozen:
            raise DirectedGraphError("cannot add vertices to a frozen graph")
        self._labels.append(label)
        self._out_sets.append(set())
        self._in_sets.append(set())
        return len(self._labels) - 1

    def add_edge(self, source: int, target: int) -> None:
        """Add the directed edge ``source -> target``."""
        if self._frozen:
            raise DirectedGraphError("cannot add edges to a frozen graph")
        if source == target:
            raise DirectedGraphError(f"self-loop at vertex {source} is not allowed")
        n = len(self._labels)
        if not (0 <= source < n and 0 <= target < n):
            raise DirectedGraphError(f"edge ({source}, {target}) references unknown vertex")
        if target in self._out_sets[source]:
            raise DirectedGraphError(f"duplicate edge ({source}, {target})")
        self._out_sets[source].add(target)
        self._in_sets[target].add(source)
        self._num_edges += 1

    def freeze(self) -> "DirectedGraph":
        if self._frozen:
            return self
        self._out = [tuple(sorted(s)) for s in self._out_sets]
        self._in = [tuple(sorted(s)) for s in self._in_sets]
        self._out_sets = [frozenset(s) for s in self._out_sets]  # type: ignore[misc]
        self._in_sets = [frozenset(s) for s in self._in_sets]  # type: ignore[misc]
        index: dict[Label, list[int]] = {}
        for v, label in enumerate(self._labels):
            index.setdefault(label, []).append(v)
        self._label_index = {lab: tuple(vs) for lab, vs in index.items()}
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise DirectedGraphError("graph must be frozen first (call freeze())")

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> range:
        return range(len(self._labels))

    def label(self, v: int) -> Label:
        return self._labels[v]

    @property
    def labels(self) -> tuple[Label, ...]:
        return tuple(self._labels)

    def out_neighbors(self, v: int) -> tuple[int, ...]:
        self._require_frozen()
        return self._out[v]

    def in_neighbors(self, v: int) -> tuple[int, ...]:
        self._require_frozen()
        return self._in[v]

    def out_set(self, v: int) -> frozenset[int]:
        self._require_frozen()
        return self._out_sets[v]  # type: ignore[return-value]

    def in_set(self, v: int) -> frozenset[int]:
        self._require_frozen()
        return self._in_sets[v]  # type: ignore[return-value]

    def out_degree(self, v: int) -> int:
        self._require_frozen()
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        self._require_frozen()
        return len(self._in[v])

    def has_edge(self, source: int, target: int) -> bool:
        self._require_frozen()
        return target in self._out_sets[source]

    def edges(self) -> Iterator[Edge]:
        self._require_frozen()
        for u in self.vertices():
            for v in self._out[u]:
                yield (u, v)

    def vertices_with_label(self, label: Label) -> tuple[int, ...]:
        self._require_frozen()
        return self._label_index.get(label, ())

    def label_frequency(self, label: Label) -> int:
        self._require_frozen()
        return len(self._label_index.get(label, ()))

    # ------------------------------------------------------------------
    def out_label_counts(self, v: int) -> dict[Label, int]:
        """Label multiset of v's successors (directed NLF, out side)."""
        self._require_frozen()
        counts: dict[Label, int] = {}
        for w in self._out[v]:
            counts[self._labels[w]] = counts.get(self._labels[w], 0) + 1
        return counts

    def in_label_counts(self, v: int) -> dict[Label, int]:
        """Label multiset of v's predecessors (directed NLF, in side)."""
        self._require_frozen()
        counts: dict[Label, int] = {}
        for w in self._in[v]:
            counts[self._labels[w]] = counts.get(self._labels[w], 0) + 1
        return counts

    def to_undirected(self):
        """The underlying undirected :class:`~repro.graph.graph.Graph`
        (antiparallel pairs merge into a single edge) plus, per undirected
        edge ``(min, max)``, its direction code: ``"fwd"`` (min->max),
        ``"bwd"`` (max->min) or ``"both"``."""
        from ..graph.graph import Graph

        self._require_frozen()
        directions: dict[tuple[int, int], str] = {}
        for u, v in self.edges():
            key = (u, v) if u < v else (v, u)
            code = "fwd" if u < v else "bwd"
            prior = directions.get(key)
            if prior is None:
                directions[key] = code
            elif prior != code:
                directions[key] = "both"
        graph = Graph()
        for label in self._labels:
            graph.add_vertex(label)
        for u, v in directions:
            graph.add_edge(u, v)
        return graph.freeze(), directions

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "building"
        return f"DirectedGraph(|V|={self.num_vertices}, |E|={self.num_edges}, {state})"
