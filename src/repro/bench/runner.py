"""Query-set benchmark runner (paper §7, "Performance Measurement").

The paper's protocol, reproduced at Python scale:

- each query runs with an embedding cap ``k`` and a wall-clock limit;
  a query is *solved* if it finishes (cap or exhaustion) within the limit;
- per query set and per algorithm, report the percentage of solved
  queries and the averages of elapsed time and recursive calls over the
  ``n`` least-time-consuming solved queries, where ``n`` is the minimum
  solved count among the algorithms being compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.config import MatchConfig
from ..core.matcher import DAFMatcher
from ..graph.graph import Graph
from ..interfaces import Matcher, MatchOptions, MatchRequest


@dataclass
class QueryOutcome:
    """Measurements for one (algorithm, query) run."""

    solved: bool
    elapsed: float
    preprocess: float
    search: float
    recursive_calls: int
    embeddings: int
    candidates_total: int


@dataclass
class QuerySetSummary:
    """Aggregate over a query set for one algorithm (paper §7 metrics)."""

    algorithm: str
    query_set: str
    total_queries: int
    solved_queries: int
    avg_elapsed_ms: float
    avg_recursive_calls: float
    avg_candidates: float
    avg_preprocess_ms: float = 0.0
    avg_search_ms: float = 0.0

    @property
    def solved_percent(self) -> float:
        if self.total_queries == 0:
            return 0.0
        return 100.0 * self.solved_queries / self.total_queries


def counting_config(base: Optional[MatchConfig] = None) -> MatchConfig:
    """A copy of ``base`` with embedding materialization turned off —
    benchmarks only need counts (paper: enumerate the first k)."""
    import dataclasses

    base = base if base is not None else MatchConfig()
    return dataclasses.replace(base, collect_embeddings=False)


def daf_variant(name: str) -> DAFMatcher:
    """The four paper variants by name, in counting mode for benchmarks."""
    variants = {
        "DA-cand": MatchConfig(order="candidate", use_failing_sets=False),
        "DA-path": MatchConfig(order="path", use_failing_sets=False),
        "DAF-cand": MatchConfig(order="candidate", use_failing_sets=True),
        "DAF-path": MatchConfig(order="path", use_failing_sets=True),
        # Aliases used throughout the paper's figures.
        "DA": MatchConfig(order="path", use_failing_sets=False),
        "DAF": MatchConfig(order="path", use_failing_sets=True),
    }
    if name not in variants:
        raise KeyError(f"unknown DAF variant {name!r}; choices: {sorted(variants)}")
    matcher = DAFMatcher(counting_config(variants[name]))
    matcher.name = name
    return matcher


def run_query(
    matcher: Matcher,
    query: Graph,
    data: Graph,
    limit: int,
    time_limit: Optional[float],
) -> QueryOutcome:
    """Run one query under the paper's protocol."""
    result = matcher.run_request(
        MatchRequest(query, data, options=MatchOptions(limit=limit, time_limit=time_limit))
    )
    return QueryOutcome(
        solved=result.solved,
        elapsed=result.stats.elapsed_seconds,
        preprocess=result.stats.preprocess_seconds,
        search=result.stats.search_seconds,
        recursive_calls=result.stats.recursive_calls,
        embeddings=result.count,
        candidates_total=result.stats.candidates_total,
    )


def run_query_set(
    matcher: Matcher,
    queries: Sequence[Graph],
    data: Graph,
    limit: int,
    time_limit: Optional[float],
) -> list[QueryOutcome]:
    return [run_query(matcher, query, data, limit, time_limit) for query in queries]


def summarize(
    algorithm: str,
    query_set: str,
    outcomes: Sequence[QueryOutcome],
    top_n: Optional[int] = None,
) -> QuerySetSummary:
    """Aggregate outcomes, averaging over the ``top_n`` least-time-consuming
    solved queries (paper §7; ``None`` averages over all solved)."""
    solved = sorted((o for o in outcomes if o.solved), key=lambda o: o.elapsed)
    if top_n is not None:
        considered = solved[:top_n]
    else:
        considered = solved
    count = max(1, len(considered))
    return QuerySetSummary(
        algorithm=algorithm,
        query_set=query_set,
        total_queries=len(outcomes),
        solved_queries=len(solved),
        avg_elapsed_ms=1000.0 * sum(o.elapsed for o in considered) / count,
        avg_recursive_calls=sum(o.recursive_calls for o in considered) / count,
        avg_candidates=sum(o.candidates_total for o in considered) / count,
        avg_preprocess_ms=1000.0 * sum(o.preprocess for o in considered) / count,
        avg_search_ms=1000.0 * sum(o.search for o in considered) / count,
    )


def compare_matchers(
    matchers: dict[str, Matcher],
    query_set_name: str,
    queries: Sequence[Graph],
    data: Graph,
    limit: int,
    time_limit: Optional[float],
) -> dict[str, QuerySetSummary]:
    """Run every matcher on the query set and aggregate with the shared
    ``n = min solved count`` rule the paper uses for fair averaging."""
    all_outcomes = {
        name: run_query_set(matcher, queries, data, limit, time_limit)
        for name, matcher in matchers.items()
    }
    solved_counts = [
        sum(1 for o in outcomes if o.solved) for outcomes in all_outcomes.values()
    ]
    top_n = min(solved_counts) if solved_counts else 0
    if top_n == 0:
        top_n = None  # nobody solved anything; report raw averages
    return {
        name: summarize(name, query_set_name, outcomes, top_n)
        for name, outcomes in all_outcomes.items()
    }
