"""Plain-text rendering of benchmark results.

The paper reports bar charts; offline we print the same series as aligned
tables — one row per (query set, algorithm) — which is what the bench
targets tee into ``bench_output.txt`` and what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_number(value: object, precise: bool = False) -> str:
    """Compact number rendering for result tables.

    The default mode drops decimals from floats >= 1000 — fine for
    figure tables, but it would erase small deltas (1200.4 vs 1203.9
    both render "1,200"), so regression reports use ``precise=True``,
    which always keeps at least one decimal on floats.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}" if precise else f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]], title: str = "", precise: bool = False
) -> str:
    """Render dict rows as an aligned monospaced table.

    ``precise`` selects :func:`format_number`'s precision-preserving
    mode (used by the regression delta tables).
    """
    if not rows:
        return f"== {title} ==\n(no rows)\n" if title else "(no rows)\n"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [
        [format_number(row.get(col, ""), precise=precise) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    out = []
    if title:
        out.append(f"== {title} ==")
    out.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)))
    out.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in rendered:
        out.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(out) + "\n"


def print_table(rows: Sequence[Mapping[str, object]], title: str = "") -> None:
    print(render_table(rows, title))


def render_bar_chart(
    rows: Sequence[Mapping[str, object]],
    category_key: str,
    series_key: str,
    value_key: str,
    title: str = "",
    width: int = 40,
    log_scale: bool = True,
) -> str:
    """Render grouped rows as a horizontal ASCII bar chart.

    The paper's figures are grouped bar charts on log axes; this renders
    the same series textually — one group per ``category_key`` value, one
    bar per ``series_key`` value, lengths proportional to ``value_key``
    (log-scaled by default because the interesting gaps span orders of
    magnitude).
    """
    import math

    values = [float(row[value_key]) for row in rows if row.get(value_key) is not None]
    if not rows or not values:
        return f"== {title} ==\n(no data)\n" if title else "(no data)\n"

    def scaled(value: float) -> int:
        if value <= 0:
            return 0
        if log_scale:
            low = min(v for v in values if v > 0)
            high = max(values)
            if high <= low:
                return width
            span = math.log10(high) - math.log10(low)
            return max(1, round(width * (math.log10(value) - math.log10(low)) / span))
        high = max(values)
        return max(1, round(width * value / high)) if high else 0

    series_width = max(len(str(row[series_key])) for row in rows)
    lines = []
    if title:
        lines.append(f"== {title} ==")
    seen_categories: list[object] = []
    for row in rows:
        if row[category_key] not in seen_categories:
            seen_categories.append(row[category_key])
    for category in seen_categories:
        lines.append(str(category))
        for row in rows:
            if row[category_key] != category:
                continue
            value = float(row[value_key])
            bar = "#" * scaled(value)
            lines.append(
                f"  {str(row[series_key]):<{series_width}} |{bar} {format_number(value)}"
            )
    scale_note = "log scale" if log_scale else "linear scale"
    lines.append(f"({value_key}, {scale_note})")
    return "\n".join(lines) + "\n"


#: ASCII intensity ramp for sparklines, lowest to highest.
SPARK_RAMP = "_.:-=+*#%@"


def render_sparkline(values: Sequence[float], ramp: str = SPARK_RAMP) -> str:
    """One-line ASCII trend over ``values`` (the BENCH_* history view).

    Values map linearly onto the ramp between the series min and max; a
    constant series renders as the middle glyph, missing values
    (``None``) as spaces.
    """
    present = [v for v in values if v is not None]
    if not present:
        return ""
    low, high = min(present), max(present)
    span = high - low
    chars = []
    for v in values:
        if v is None:
            chars.append(" ")
        elif span == 0:
            chars.append(ramp[len(ramp) // 2])
        else:
            chars.append(ramp[min(len(ramp) - 1, int((v - low) / span * (len(ramp) - 1) + 0.5))])
    return "".join(chars)


def summaries_to_rows(summaries: Iterable) -> list[dict[str, object]]:
    """Rows for a batch of :class:`~repro.bench.runner.QuerySetSummary`."""
    rows = []
    for s in summaries:
        rows.append(
            {
                "query_set": s.query_set,
                "algorithm": s.algorithm,
                "solved_%": round(s.solved_percent, 1),
                "avg_time_ms": round(s.avg_elapsed_ms, 2),
                "avg_calls": round(s.avg_recursive_calls, 1),
                "avg_cand": round(s.avg_candidates, 1),
            }
        )
    return rows
