"""Ablation studies for DAF's design choices (beyond the paper's figures).

DESIGN.md calls out three choices the paper fixes by fiat; these drivers
quantify each on the scaled workloads:

- **Refinement schedule** (§4): 1 vs 2 vs 3 DP steps vs fixpoint.  The
  paper picks 3 because later steps filtered < 1%; the ablation reports
  CS size and preprocessing cost per schedule.
- **Local filters** (§4): MND + NLF on vs off in the first DP pass.
- **Leaf decomposition** (§3): deferred combinatorial leaf matching vs
  treating degree-one vertices like everyone else.
"""

from __future__ import annotations

import time

from ..core.config import MatchConfig
from ..core.matcher import DAFMatcher
from ..datasets import load
from .experiments import DEFAULT, BenchProfile, dataset_sizes, queries_for
from .runner import counting_config, run_query_set, summarize


def ablation_refinement(profile: BenchProfile = DEFAULT) -> list[dict[str, object]]:
    """CS size and preprocessing time for 1/2/3/fixpoint DP schedules."""
    rows: list[dict[str, object]] = []
    for dataset in profile.datasets[:2]:
        data = load(dataset)
        size = dataset_sizes(dataset, profile)[-1]
        qs = queries_for(dataset, size, "nonsparse", profile, data)
        schedules: list[tuple[str, MatchConfig]] = [
            ("1 step", MatchConfig(refinement_steps=1)),
            ("2 steps", MatchConfig(refinement_steps=2)),
            ("3 steps (paper)", MatchConfig(refinement_steps=3)),
            ("fixpoint", MatchConfig(refine_to_fixpoint=True)),
        ]
        for name, config in schedules:
            matcher = DAFMatcher(counting_config(config))
            sizes = []
            elapsed = []
            for query in qs.queries:
                start = time.perf_counter()
                prepared = matcher.prepare(query, data)
                elapsed.append(time.perf_counter() - start)
                sizes.append(prepared.cs.size)
            count = max(1, len(qs.queries))
            rows.append(
                {
                    "dataset": dataset,
                    "query_set": qs.name,
                    "schedule": name,
                    "avg_CS_size": round(sum(sizes) / count, 1),
                    "avg_preprocess_ms": round(1000 * sum(elapsed) / count, 2),
                }
            )
    return rows


def ablation_local_filters(profile: BenchProfile = DEFAULT) -> list[dict[str, object]]:
    """MND/NLF local filters on vs off: CS size and search effort."""
    rows: list[dict[str, object]] = []
    for dataset in profile.datasets[:2]:
        data = load(dataset)
        size = dataset_sizes(dataset, profile)[0]
        for density in profile.densities:
            qs = queries_for(dataset, size, density, profile, data)
            for name, flag in (("with MND+NLF", True), ("without", False)):
                config = counting_config(MatchConfig(use_local_filters=flag))
                outcomes = run_query_set(
                    DAFMatcher(config), qs.queries, data, profile.limit, profile.time_limit
                )
                summary = summarize(name, qs.name, outcomes)
                rows.append(
                    {
                        "dataset": dataset,
                        "query_set": qs.name,
                        "filters": name,
                        "avg_CS_size": round(summary.avg_candidates, 1),
                        "avg_calls": round(summary.avg_recursive_calls, 1),
                        "avg_time_ms": round(summary.avg_elapsed_ms, 2),
                    }
                )
    return rows


def ablation_leaf_decomposition(profile: BenchProfile = DEFAULT) -> list[dict[str, object]]:
    """Deferred leaf matching vs uniform treatment of degree-one vertices."""
    rows: list[dict[str, object]] = []
    for dataset in profile.datasets[:2]:
        data = load(dataset)
        size = dataset_sizes(dataset, profile)[0]
        # Sparse queries have the most degree-one vertices.
        qs = queries_for(dataset, size, "sparse", profile, data)
        for name, flag in (("leaf decomposition", True), ("uniform", False)):
            config = counting_config(MatchConfig(leaf_decomposition=flag))
            outcomes = run_query_set(
                DAFMatcher(config), qs.queries, data, profile.limit, profile.time_limit
            )
            summary = summarize(name, qs.name, outcomes)
            rows.append(
                {
                    "dataset": dataset,
                    "query_set": qs.name,
                    "mode": name,
                    "solved_%": round(summary.solved_percent, 1),
                    "avg_calls": round(summary.avg_recursive_calls, 1),
                    "avg_time_ms": round(summary.avg_elapsed_ms, 2),
                }
            )
    return rows
