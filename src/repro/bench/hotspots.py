"""Search-effort hotspot reporting on the paper's worked example.

Arai et al. (*Fast Subgraph Matching by Exploiting Search Failures*,
PAPERS.md) make the case that knowing **which query vertices burn the
recursive calls** is what turns measurement into optimization targets.
This module packages that view: run a query with per-vertex attribution
on (:data:`repro.obs.VERTEX_COUNTERS`), then report each vertex's share
of recursive descents, emptyset failures, conflicts and failing-set
prunes — optionally alongside a ``flamegraph.pl``-compatible folded-stack
export from the :class:`~repro.obs.SamplingTracer`.

The default subject is the paper's §6 worked discussion (conflict cells
feeding failing sets): a square query whose two A-labelled corners are
forced onto the *same* data vertex in every decoy branch.  Injectivity
is the one constraint the candidate space cannot encode — the DP keeps
every decoy, so the search itself must discover each dead end, and the
effort visibly concentrates on the conflicting corner.  (Contrast the
§1/§4 non-tree blind spot of ``tests/test_paper_scenarios.py``, where
the CS prunes the decoys *before* search and attribution shows nothing.)
"""

from __future__ import annotations

from typing import Optional

from ..core.config import MatchConfig
from ..core.matcher import DAFMatcher
from ..graph.graph import Graph
from ..obs import MetricsRegistry, SamplingTracer, hotspot_rows, render_hotspots


def paper_worked_example(decoys: int = 10) -> tuple[Graph, Graph]:
    """The §6 conflict-cell instance (failing sets, Figure 8 discussion).

    Query: a square u0=R, u1=A, u2=B, u3=A with edges (0,1), (1,2),
    (2,3), (0,3) — both A-corners must attach to the hub *and* to the
    same B, and injectivity demands they differ.  Data: one genuine
    square (two hub-adjacent A's sharing a B) plus ``decoys`` branches
    where the B's second A-neighbor avoids the hub.  Refinement keeps
    every decoy B (it has *a* neighbor in each adjacent candidate set;
    the DP cannot know u1 and u3 need distinct ones), so each decoy dies
    only at search time as an injectivity conflict on the second corner
    — which is where ``hotspots`` shows the effort landing.
    """
    data = Graph()
    hub = data.add_vertex("R")
    a_good1 = data.add_vertex("A")
    a_good2 = data.add_vertex("A")
    b_good = data.add_vertex("B")
    data.add_edge(hub, a_good1)
    data.add_edge(hub, a_good2)
    data.add_edge(b_good, a_good1)
    data.add_edge(b_good, a_good2)
    for _ in range(decoys):
        a_hub = data.add_vertex("A")  # hub-adjacent: a valid corner
        a_far = data.add_vertex("A")  # not hub-adjacent: passes NLF only
        b_decoy = data.add_vertex("B")
        data.add_edge(hub, a_hub)
        data.add_edge(b_decoy, a_hub)
        data.add_edge(b_decoy, a_far)
    data.freeze()
    query = Graph(labels=["R", "A", "B", "A"], edges=[(0, 1), (1, 2), (2, 3), (0, 3)])
    return query.freeze(), data


def run_hotspots(
    query: Optional[Graph] = None,
    data: Optional[Graph] = None,
    use_failing_sets: bool = True,
    limit: int = 100_000,
    collect_folded: bool = False,
) -> dict:
    """Run one attributed search and return the hotspot report payload.

    Without ``query``/``data`` the paper worked example runs.  Returns
    ``{"result", "snapshot", "rows", "tracer"}`` where ``rows`` is the
    per-vertex attribution (hottest first) and ``tracer`` is the
    :class:`~repro.obs.SamplingTracer` (``None`` unless
    ``collect_folded``).
    """
    if query is None or data is None:
        query, data = paper_worked_example()
    registry = MetricsRegistry()
    config = MatchConfig(use_failing_sets=use_failing_sets, collect_embeddings=False)
    matcher = DAFMatcher(config).with_observer(registry)
    tracer = SamplingTracer(sample_every=1) if collect_folded else None
    prepared = matcher.prepare(query, data)
    result = matcher.search(prepared, limit=limit, tracer=tracer)
    snapshot = result.stats.metrics or registry.snapshot()
    return {
        "result": result,
        "snapshot": snapshot,
        "rows": hotspot_rows(snapshot),
        "tracer": tracer,
    }


def render_hotspot_report(payload: dict, top: int = 5) -> str:
    """The CLI's ``repro bench hotspots`` text block."""
    from .report import render_table

    result = payload["result"]
    lines = [
        f"embeddings={result.count} recursive_calls={result.stats.recursive_calls}",
        "",
        render_table(payload["rows"][:top], "per-vertex search effort"),
        render_hotspots(payload["snapshot"], top=top),
    ]
    tracer = payload.get("tracer")
    if tracer is not None and tracer.folded:
        lines.append("")
        lines.append(f"folded stacks: {len(tracer.folded)} distinct (flamegraph.pl format)")
    return "\n".join(lines)
