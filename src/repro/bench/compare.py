"""Manifest diffing: the deterministic-counter regression gate.

Two manifests are compared cell by cell, where a *cell* is one
(figure, identity) pair — identity being the row's key columns (dataset,
query set, algorithm, axis/value, workers...).  Each numeric column in a
cell yields a :class:`CellDelta` classified as improved / regressed /
neutral:

- **deterministic counters** (recursive calls, candidate sizes, solved
  counts — everything that does not measure the clock) are compared with
  a tight threshold, because given a fixed seed and profile they are
  bit-reproducible and any drift is a real behavior change;
- **wall-clock columns** (``*_ms`` / ``*_seconds``) get a wide noise
  threshold and never trip the gate — timer noise across machines is
  exactly what the empirical-study literature warns comparisons about.

The CI gate (``repro bench compare --gate``, wired into scripts/ci.sh)
fails only on deterministic-counter regressions beyond threshold, so a
loaded CI box cannot fail the build, but a search that suddenly burns 10%
more recursive calls will.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .report import format_number, render_sparkline, render_table

#: Columns that identify a cell rather than measure it (strings always
#: identify; these names identify even when numeric, e.g. ``workers``).
KEY_COLUMNS = (
    "dataset",
    "query_set",
    "algorithm",
    "axis",
    "value",
    "perturbation",
    "workers",
    "query_size",
)

#: Metrics where larger is better; everything else regresses upward.
HIGHER_IS_BETTER = ("solved", "speedup", "positive", "compression")

#: Default relative thresholds per metric kind.
COUNTER_THRESHOLD = 0.02
TIME_THRESHOLD = 0.25


def is_time_metric(name: str) -> bool:
    return name.endswith("_ms") or name.endswith("_seconds") or name.endswith("_s")


def is_higher_better(name: str) -> bool:
    return any(name.startswith(prefix) for prefix in HIGHER_IS_BETTER)


def cell_key(row: dict) -> str:
    """The identity of a row within its figure: its key-column values."""
    parts = []
    for column in KEY_COLUMNS:
        if column in row:
            parts.append(f"{column}={row[column]}")
    for column, value in row.items():
        if column not in KEY_COLUMNS and isinstance(value, str):
            parts.append(f"{column}={value}")
    return " ".join(parts) if parts else "(single row)"


@dataclass
class CellDelta:
    """One metric of one cell, baseline vs current."""

    figure: str
    cell: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    kind: str  # "counter" | "time"
    classification: str  # improved | regressed | neutral | added | removed

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def delta_percent(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return 100.0 * (self.current - self.baseline) / abs(self.baseline)


@dataclass
class Comparison:
    """All cell deltas of one manifest pair, plus gate helpers."""

    baseline_name: str
    current_name: str
    cells: list[CellDelta] = field(default_factory=list)

    def of_class(self, classification: str) -> list[CellDelta]:
        return [c for c in self.cells if c.classification == classification]

    @property
    def counter_regressions(self) -> list[CellDelta]:
        """The deltas the CI gate fails on: deterministic counters only."""
        return [c for c in self.cells if c.classification == "regressed" and c.kind == "counter"]

    def summary_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for cell in self.cells:
            counts[cell.classification] = counts.get(cell.classification, 0) + 1
        return counts

    def render(self, only_changed: bool = False) -> str:
        """The delta table (precision-preserving number mode) + verdict."""
        rows = []
        for c in self.cells:
            if only_changed and c.classification == "neutral":
                continue
            rows.append(
                {
                    "figure": c.figure,
                    "cell": c.cell,
                    "metric": c.metric,
                    "baseline": "-" if c.baseline is None else format_number(c.baseline, precise=True),
                    "current": "-" if c.current is None else format_number(c.current, precise=True),
                    "delta_%": "-" if c.delta_percent is None else f"{c.delta_percent:+.2f}",
                    "kind": c.kind,
                    "class": c.classification,
                }
            )
        title = f"{self.baseline_name} -> {self.current_name}"
        table = render_table(rows, title, precise=True)
        counts = self.summary_counts()
        verdict = ", ".join(f"{counts[k]} {k}" for k in sorted(counts)) or "no comparable cells"
        gate = (
            f"GATE FAIL: {len(self.counter_regressions)} deterministic-counter regression(s)"
            if self.counter_regressions
            else "gate ok: no deterministic-counter regressions"
        )
        return f"{table}\n{verdict}\n{gate}\n"


def classify(
    metric: str,
    baseline: Optional[float],
    current: Optional[float],
    counter_threshold: float = COUNTER_THRESHOLD,
    time_threshold: float = TIME_THRESHOLD,
) -> CellDelta:
    """Classify one (figure-less) metric pair; figure/cell filled by caller."""
    kind = "time" if is_time_metric(metric) else "counter"
    if baseline is None or current is None:
        classification = "added" if baseline is None else "removed"
        return CellDelta("", "", metric, baseline, current, kind, classification)
    threshold = time_threshold if kind == "time" else counter_threshold
    if baseline == 0:
        relative = 0.0 if current == 0 else float("inf")
    else:
        relative = (current - baseline) / abs(baseline)
    if abs(relative) <= threshold:
        classification = "neutral"
    else:
        worse = relative < 0 if is_higher_better(metric) else relative > 0
        classification = "regressed" if worse else "improved"
    return CellDelta("", "", metric, baseline, current, kind, classification)


def _numeric_metrics(row: dict) -> dict[str, float]:
    out = {}
    for column, value in row.items():
        if column in KEY_COLUMNS or isinstance(value, (str, bool)):
            continue
        if isinstance(value, (int, float)):
            out[column] = float(value)
    return out


def _cells_of(manifest: dict) -> dict[tuple[str, str], dict[str, float]]:
    cells: dict[tuple[str, str], dict[str, float]] = {}
    for figure, entry in manifest.get("figures", {}).items():
        for row in entry.get("rows", []):
            key = (figure, cell_key(row))
            # Duplicate identities within a figure (shouldn't happen) keep
            # the last row, matching how a reader would scan the table.
            cells[key] = _numeric_metrics(row)
    return cells


def compare_manifests(
    baseline: dict,
    current: dict,
    counter_threshold: float = COUNTER_THRESHOLD,
    time_threshold: float = TIME_THRESHOLD,
    baseline_name: str = "baseline",
    current_name: str = "current",
) -> Comparison:
    """Diff two manifest documents cell by cell (see module docstring)."""
    comparison = Comparison(baseline_name=baseline_name, current_name=current_name)
    base_cells = _cells_of(baseline)
    new_cells = _cells_of(current)
    for key in sorted(set(base_cells) | set(new_cells)):
        figure, cell = key
        base_metrics = base_cells.get(key)
        new_metrics = new_cells.get(key)
        metrics = sorted(set(base_metrics or {}) | set(new_metrics or {}))
        for metric in metrics:
            delta = classify(
                metric,
                None if base_metrics is None else base_metrics.get(metric),
                None if new_metrics is None else new_metrics.get(metric),
                counter_threshold=counter_threshold,
                time_threshold=time_threshold,
            )
            delta.figure = figure
            delta.cell = cell
            comparison.cells.append(delta)
    return comparison


def history_rows(
    manifests: Sequence[dict],
    metric: str = "avg_calls",
    figure: Optional[str] = None,
) -> list[dict[str, object]]:
    """Trend rows over a manifest sequence: one row per cell that ever
    reported ``metric``, with an ASCII sparkline across the history and
    the first/last values (precision preserved by the caller's table)."""
    series: dict[tuple[str, str], list[Optional[float]]] = {}
    for position, manifest in enumerate(manifests):
        for key, metrics in _cells_of(manifest).items():
            if figure is not None and key[0] != figure:
                continue
            if metric not in metrics:
                continue
            slot = series.setdefault(key, [None] * len(manifests))
            slot[position] = metrics[metric]
    rows = []
    for (fig, cell), values in sorted(series.items()):
        present = [v for v in values if v is not None]
        rows.append(
            {
                "figure": fig,
                "cell": cell,
                "trend": render_sparkline(values),
                "first": present[0],
                "last": present[-1],
                "runs": len(present),
            }
        )
    return rows
