"""Run manifests: the machine-readable benchmark trajectory.

A *manifest* wraps one benchmark session into a single schema-validated
JSON document — environment fingerprint, git SHA, the
:class:`~repro.bench.experiments.BenchProfile` that scaled the workload,
and per-figure result rows plus optional
:meth:`~repro.obs.MetricsRegistry.snapshot` payloads.  Manifests persist
as ``BENCH_<n>.json`` at the repository root (next index auto-assigned)
and are committed, so ``repro bench compare`` / ``history`` can judge any
later run against the recorded trajectory.  The empirical-study
literature's lesson (Deep Analysis on Subgraph Isomorphism, PAPERS.md):
cross-run comparisons are only trustworthy when the protocol and the
environment travel with the numbers — hence the fingerprint, and hence
the emphasis on *deterministic* counters (recursive calls, candidate
sizes) over wall clock in :mod:`repro.bench.compare`.

Writing a manifest also mirrors it into the JSONL event stream: one
``bench.run`` event (identity + environment) and one ``bench.summary``
per figure, both part of :data:`repro.obs.schema.EVENT_SCHEMAS` and
validated by ``scripts/check_metrics_schema.py`` — which also validates
manifest files themselves via :func:`validate_manifest`.
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import time
from pathlib import Path
from typing import Optional

MANIFEST_SCHEMA = "repro.bench.manifest"
MANIFEST_SCHEMA_VERSION = 1
MANIFEST_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")


def environment_fingerprint() -> dict:
    """The environment facts a fair cross-run comparison must check."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def git_sha(root: Optional[Path] = None) -> str:
    """HEAD commit of ``root`` (or cwd), ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def manifest_index(path) -> Optional[int]:
    """The ``<n>`` of a ``BENCH_<n>.json`` filename, else ``None``."""
    match = MANIFEST_PATTERN.match(Path(path).name)
    return int(match.group(1)) if match else None


def list_manifests(root) -> list[Path]:
    """All ``BENCH_<n>.json`` files under ``root``, ordered by index."""
    found = [p for p in Path(root).glob("BENCH_*.json") if manifest_index(p) is not None]
    return sorted(found, key=manifest_index)


def next_manifest_index(root) -> int:
    existing = list_manifests(root)
    return manifest_index(existing[-1]) + 1 if existing else 0


def load_manifest(path) -> dict:
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)


def _profile_payload(profile) -> dict:
    """A BenchProfile (or already-dict) as a JSON-safe mapping."""
    if profile is None:
        return {"name": "unknown"}
    if isinstance(profile, dict):
        return dict(profile)
    import dataclasses

    payload = dataclasses.asdict(profile)
    for key, value in payload.items():
        if isinstance(value, tuple):
            payload[key] = list(value)
    return payload


class ManifestWriter:
    """Accumulates one benchmark session and writes its manifest.

    The benchmark conftest (and ``repro bench run``) funnel every
    recorded figure through :meth:`add_figure`; the same payload feeds
    the per-figure ``<figure>.metrics.json`` sidecar (when a
    ``results_dir`` is given) and the manifest, so the two cannot drift
    apart.  ``sink`` (a :class:`repro.obs.EventSink`) receives the
    mirrored ``bench.run`` / ``bench.summary`` events.
    """

    def __init__(
        self,
        root=None,
        profile=None,
        sink=None,
        results_dir=None,
    ) -> None:
        self.root = Path(root) if root is not None else Path.cwd()
        self.profile = profile
        self.sink = sink
        self.results_dir = Path(results_dir) if results_dir is not None else None
        self.figures: dict[str, dict] = {}

    def add_figure(self, name: str, rows, metrics: Optional[dict] = None, title: str = "") -> None:
        """Record one figure's result rows (and optional metrics snapshot).

        Re-recording a figure overwrites it — reruns within a session
        supersede, they do not duplicate.  When ``results_dir`` is set, a
        ``<name>.metrics.json`` sidecar is written from the very payload
        stored in the manifest.
        """
        entry: dict = {"title": title or name, "rows": [dict(r) for r in rows]}
        if metrics is not None:
            entry["metrics"] = metrics
        self.figures[name] = entry
        if self.sink is not None:
            self.sink.emit(
                {
                    "event": "bench.summary",
                    "figure": name,
                    "rows": len(entry["rows"]),
                    "title": entry["title"],
                    "has_metrics": metrics is not None,
                }
            )
        if self.results_dir is not None and metrics is not None:
            self.results_dir.mkdir(exist_ok=True)
            sidecar = self.results_dir / f"{name}.metrics.json"
            sidecar.write_text(json.dumps(metrics, indent=2), encoding="utf-8")

    def build(self) -> dict:
        """The manifest document (validates clean by construction)."""
        return {
            "schema": MANIFEST_SCHEMA,
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "created": round(time.time(), 3),
            "git_sha": git_sha(self.root),
            "environment": environment_fingerprint(),
            "profile": _profile_payload(self.profile),
            "figures": self.figures,
        }

    def write(self, path=None) -> Path:
        """Write the manifest; default path auto-assigns ``BENCH_<n>.json``."""
        manifest = self.build()
        errors = validate_manifest(manifest)
        if errors:  # defensive: build() should never produce these
            raise ValueError("manifest failed self-validation: " + "; ".join(errors))
        if path is None:
            index = next_manifest_index(self.root)
            path = self.root / f"BENCH_{index}.json"
        else:
            path = Path(path)
            index = manifest_index(path)
        path.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
        if self.sink is not None:
            event = {
                "event": "bench.run",
                "manifest": path.name,
                "profile": manifest["profile"].get("name", "unknown"),
                "git_sha": manifest["git_sha"],
                "figures": len(self.figures),
                "python": manifest["environment"]["python"],
                "platform": manifest["environment"]["platform"],
                "cpu_count": manifest["environment"]["cpu_count"],
            }
            if index is not None:
                event["index"] = index
            self.sink.emit(event)
        return path


def validate_manifest(obj: object) -> list[str]:
    """Validate a parsed manifest document; returns human-readable errors
    (empty list = valid), mirroring :func:`repro.obs.schema.validate_event`."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"manifest is not an object: {type(obj).__name__}"]
    if obj.get("schema") != MANIFEST_SCHEMA:
        errors.append(f"schema tag must be {MANIFEST_SCHEMA!r}, got {obj.get('schema')!r}")
    version = obj.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        errors.append("schema_version must be an int")
    elif version > MANIFEST_SCHEMA_VERSION:
        errors.append(f"schema_version {version} is newer than supported {MANIFEST_SCHEMA_VERSION}")
    created = obj.get("created")
    if not isinstance(created, (int, float)) or isinstance(created, bool):
        errors.append("created must be a timestamp")
    if not isinstance(obj.get("git_sha"), str):
        errors.append("git_sha must be a string")
    env = obj.get("environment")
    if not isinstance(env, dict):
        errors.append("environment must be an object")
    else:
        for field in ("python", "platform", "machine"):
            if not isinstance(env.get(field), str):
                errors.append(f"environment.{field} must be a string")
        if not isinstance(env.get("cpu_count"), int) or isinstance(env.get("cpu_count"), bool):
            errors.append("environment.cpu_count must be an int")
    prof = obj.get("profile")
    if not isinstance(prof, dict) or not isinstance(prof.get("name"), str):
        errors.append("profile must be an object with a string 'name'")
    figures = obj.get("figures")
    if not isinstance(figures, dict):
        errors.append("figures must be an object")
        return errors
    for name, entry in figures.items():
        if not isinstance(entry, dict):
            errors.append(f"figures.{name} must be an object")
            continue
        rows = entry.get("rows")
        if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
            errors.append(f"figures.{name}.rows must be a list of row objects")
        if "metrics" in entry and not isinstance(entry["metrics"], dict):
            errors.append(f"figures.{name}.metrics must be an object when present")
    return errors


def validate_manifest_file(path) -> list[str]:
    """Load + validate one manifest file (unreadable JSON is an error)."""
    try:
        manifest = load_manifest(path)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"not a readable JSON document ({exc})"]
    return validate_manifest(manifest)
