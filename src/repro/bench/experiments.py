"""Experiment drivers — one per table/figure of the paper's evaluation.

Every driver takes a :class:`BenchProfile` (workload scale knobs) and
returns printable row dicts; the ``benchmarks/`` pytest-benchmark targets
call these with the default profile and the test suite calls them with
the smoke profile.  DESIGN.md's per-experiment index maps figures to the
functions here; EXPERIMENTS.md records paper-shape vs measured-shape.

Scaling note (DESIGN.md substitution 3): query sizes, query counts, the
embedding cap k and the per-query time limit are all scaled down by the
Python-vs-C++ cost factor; each driver's docstring states the paper's
original parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..baselines import ALL_BASELINES, CFLMatcher, build_cpi
from ..core.matcher import DAFMatcher
from ..datasets import load, table2_rows, upscale
from ..datasets.registry import SPECS
from ..extensions import BoostedDAFMatcher, ParallelDAFMatcher, compression_ratio
from ..graph.generators import power_law_labels
from ..graph.graph import Graph
from ..graph.properties import diameter
from ..workloads import (
    QuerySet,
    add_random_edges,
    classify_queries,
    complete_query,
    generate_query_set,
    paper_query_sizes,
    perturb_labels,
)
from .runner import compare_matchers, counting_config, daf_variant, run_query


@dataclass(frozen=True)
class BenchProfile:
    """Workload-scale knobs shared by all experiment drivers."""

    name: str
    queries_per_set: int
    limit: int  # the paper's k = 10^5, scaled
    time_limit: float  # the paper's 10 min, scaled
    seed: int = 2019
    datasets: tuple[str, ...] = ("yeast", "human", "hprd", "email", "dblp", "yago")
    #: Number of query sizes taken from each dataset's ladder.
    sizes_per_dataset: int = 2
    densities: tuple[str, ...] = ("sparse", "nonsparse")


#: Tiny profile for the test suite (seconds in total).
SMOKE = BenchProfile(
    name="smoke",
    queries_per_set=2,
    limit=100,
    time_limit=2.0,
    datasets=("yeast",),
    sizes_per_dataset=1,
    densities=("nonsparse",),
)

#: The profile the ``benchmarks/`` targets run (minutes in total).
DEFAULT = BenchProfile(
    name="default",
    queries_per_set=4,
    limit=1000,
    time_limit=3.0,
)


_query_cache: dict[tuple, QuerySet] = {}


def dataset_sizes(dataset: str, profile: BenchProfile) -> tuple[int, ...]:
    """The first ``sizes_per_dataset`` entries of the dataset's scaled
    query-size ladder (paper §7 sizes divided by the Python factor)."""
    ladder = paper_query_sizes(dataset, scaled=True)
    return ladder[: profile.sizes_per_dataset]


def queries_for(
    dataset: str,
    size: int,
    density: str,
    profile: BenchProfile,
    data: Optional[Graph] = None,
) -> QuerySet:
    """Cached query-set generation (deterministic per profile seed)."""
    key = (dataset, size, density, profile.queries_per_set, profile.seed)
    if key not in _query_cache:
        graph = data if data is not None else load(dataset)
        # zlib.crc32 is stable across processes (Python's hash() is salted
        # per process, which would make every run draw different queries).
        import zlib

        stable = zlib.crc32(repr(key).encode())
        rng = random.Random(profile.seed * 7919 + stable)
        _query_cache[key] = generate_query_set(
            graph, size, density, profile.queries_per_set, rng, dataset=dataset
        )
    return _query_cache[key]


def _main_matchers() -> dict:
    """CFL-Match vs DA vs DAF — the trio of §7.1."""
    return {
        "CFL-Match": CFLMatcher(),
        "DA": daf_variant("DA"),
        "DAF": daf_variant("DAF"),
    }


# ---------------------------------------------------------------------
# Table 2 — dataset characteristics
# ---------------------------------------------------------------------
def table2(profile: BenchProfile = DEFAULT) -> list[dict[str, object]]:
    """Table 2: |V|, |E|, |Sigma|, avg-deg per dataset (synthetic vs paper)."""
    return table2_rows()


# ---------------------------------------------------------------------
# Figure 9 — auxiliary data structure sizes (CPI vs CS)
# ---------------------------------------------------------------------
def figure9(profile: BenchProfile = DEFAULT) -> list[dict[str, object]]:
    """Fig. 9: average sum of candidate-set sizes, CFL-Match's CPI vs
    DAF's CS, per query set.  Paper: CS is consistently smaller (~3x on
    DBLP)."""
    daf = DAFMatcher(counting_config())
    rows: list[dict[str, object]] = []
    for dataset in profile.datasets:
        data = load(dataset)
        for size in dataset_sizes(dataset, profile):
            for density in profile.densities:
                qs = queries_for(dataset, size, density, profile, data)
                cpi_sizes = []
                cs_sizes = []
                for query in qs.queries:
                    cpi_sizes.append(build_cpi(query, data).size)
                    cs_sizes.append(daf.prepare(query, data).cs.size)
                count = max(1, len(qs.queries))
                rows.append(
                    {
                        "dataset": dataset,
                        "query_set": qs.name,
                        "avg_CPI_size": round(sum(cpi_sizes) / count, 1),
                        "avg_CS_size": round(sum(cs_sizes) / count, 1),
                        "CS/CPI": round(
                            (sum(cs_sizes) / count) / max(1e-9, sum(cpi_sizes) / count), 3
                        ),
                    }
                )
    return rows


# ---------------------------------------------------------------------
# Figure 10 — main comparison: CFL-Match vs DA vs DAF
# ---------------------------------------------------------------------
def figure10(profile: BenchProfile = DEFAULT) -> list[dict[str, object]]:
    """Fig. 10: elapsed time, recursive calls and solved % per query set.
    Paper: DAF > DA > CFL-Match overall, up to 4 orders of magnitude in
    time and 6 in recursive calls on Yeast."""
    rows: list[dict[str, object]] = []
    for dataset in profile.datasets:
        data = load(dataset)
        for size in dataset_sizes(dataset, profile):
            for density in profile.densities:
                qs = queries_for(dataset, size, density, profile, data)
                summaries = compare_matchers(
                    _main_matchers(),
                    f"{dataset}:{qs.name}",
                    qs.queries,
                    data,
                    limit=profile.limit,
                    time_limit=profile.time_limit,
                )
                for name in ("CFL-Match", "DA", "DAF"):
                    s = summaries[name]
                    rows.append(
                        {
                            "dataset": dataset,
                            "query_set": qs.name,
                            "algorithm": name,
                            "solved_%": round(s.solved_percent, 1),
                            "avg_time_ms": round(s.avg_elapsed_ms, 2),
                            "avg_calls": round(s.avg_recursive_calls, 1),
                        }
                    )
    return rows


# ---------------------------------------------------------------------
# Figure 11 — sensitivity analysis
# ---------------------------------------------------------------------
def _sensitivity_base_graph(
    scale_factor: int, num_labels: int, seed: int
) -> Graph:
    """The Fig. 11 substrate: Yeast upscaled with power-law labels.

    Paper: EvoGraph-upscaled Yeast; here the yeast stand-in is upscaled by
    the degree-preserving swapper and (when |Sigma| differs from Yeast's)
    relabeled with a power-law over the requested alphabet."""
    rng = random.Random(seed)
    base = load("yeast")
    graph = upscale(base, scale_factor, rng) if scale_factor > 1 else base
    if num_labels != SPECS["yeast"].num_labels:
        labels = power_law_labels(graph.num_vertices, num_labels, rng)
        graph = graph.relabeled(labels)
    return graph


def figure11(
    profile: BenchProfile = DEFAULT,
    axes: Sequence[str] = ("qsize", "avgdeg", "diam", "scale", "labels"),
) -> list[dict[str, object]]:
    """Fig. 11: solved % and elapsed time while varying one parameter.

    Paper axes (scaled here in parentheses): |V(q)| in 50..400 (6..24),
    avg-deg(q) bands <=3 / 3-5 / >5 (<=2.2 / 2.2-2.5 / >2.5), diam(q)
    bands <=9 / 10-12 / >=13 (<=4 / 5-6 / >=7), scale(G) in 2..16 (1..4),
    |Sigma| in 35..280 (18..140).  Defaults: |V(q)|=10, non-sparse,
    scale 1, |Sigma|=70.
    """
    rows: list[dict[str, object]] = []
    rng = random.Random(profile.seed + 11)
    default_qsize = 10
    matchers_factory = _main_matchers

    def run_point(axis: str, value: str, data: Graph, queries: list[Graph]) -> None:
        if not queries:
            rows.append({"axis": axis, "value": value, "algorithm": "-", "solved_%": 0.0,
                         "avg_time_ms": 0.0, "avg_calls": 0.0, "queries": 0})
            return
        summaries = compare_matchers(
            matchers_factory(), f"{axis}={value}", queries, data,
            limit=profile.limit, time_limit=profile.time_limit,
        )
        for name in ("CFL-Match", "DA", "DAF"):
            s = summaries[name]
            rows.append(
                {
                    "axis": axis,
                    "value": value,
                    "algorithm": name,
                    "solved_%": round(s.solved_percent, 1),
                    "avg_time_ms": round(s.avg_elapsed_ms, 2),
                    "avg_calls": round(s.avg_recursive_calls, 1),
                    "queries": len(queries),
                }
            )

    default_graph = _sensitivity_base_graph(1, 70, profile.seed + 41)

    if "qsize" in axes:
        for qsize in (6, 10, 16, 24):
            qs = generate_query_set(
                default_graph, qsize, "nonsparse", profile.queries_per_set, rng, dataset="sens"
            )
            run_point("qsize", str(qsize), default_graph, qs.queries)

    if "avgdeg" in axes:
        # Scaled bands: size-10 walk-induced subgraphs of the Yeast-like
        # graph span avg-deg ~1.8-2.8, so the paper's sparse/medium/dense
        # terciles (<=3, 3-5, >5) become (<=2.2, 2.2-2.5, >2.5) here; the
        # qualitative axis (sparser vs denser queries) is preserved.
        for band, (lo, hi) in (
            ("<=2.2", (0.0, 2.2)),
            ("2.2-2.5", (2.2, 2.5)),
            (">2.5", (2.5, 99.0)),
        ):
            queries: list[Graph] = []
            attempts = 0
            while len(queries) < profile.queries_per_set and attempts < 300:
                attempts += 1
                density = "sparse" if hi <= 2.5 else "nonsparse"
                qs = generate_query_set(default_graph, default_qsize, density, 1, rng, dataset="sens")
                q = qs.queries[0]
                if lo < q.average_degree() <= hi or (lo == 0.0 and q.average_degree() <= hi):
                    queries.append(q)
            run_point("avgdeg", band, default_graph, queries)

    if "diam" in axes:
        # Scaled bands: the paper's (<=9, 10-12, >=13) at |V(q)| = 100
        # becomes (<=4, 5-6, >=7) at |V(q)| = 10.
        for band, (lo, hi) in (("<=4", (0, 4)), ("5-6", (5, 6)), (">=7", (7, 10**9))):
            queries = []
            attempts = 0
            while len(queries) < profile.queries_per_set and attempts < 300:
                attempts += 1
                qs = generate_query_set(default_graph, default_qsize, "nonsparse", 1, rng, dataset="sens")
                q = qs.queries[0]
                if lo <= diameter(q) <= hi:
                    queries.append(q)
            run_point("diam", band, default_graph, queries)

    if "scale" in axes:
        for factor in (1, 2, 4):
            graph = _sensitivity_base_graph(factor, 70, profile.seed + 41)
            qs = generate_query_set(
                graph, default_qsize, "nonsparse", profile.queries_per_set, rng, dataset="sens"
            )
            run_point("scale", str(factor), graph, qs.queries)

    if "labels" in axes:
        for num_labels in (18, 35, 70, 140):
            graph = _sensitivity_base_graph(1, num_labels, profile.seed + 41)
            qs = generate_query_set(
                graph, default_qsize, "nonsparse", profile.queries_per_set, rng, dataset="sens"
            )
            run_point("labels", str(num_labels), graph, qs.queries)

    return rows


# ---------------------------------------------------------------------
# Figure 12 — the large ("billion-scale") graph
# ---------------------------------------------------------------------
def figure12(profile: BenchProfile = DEFAULT) -> list[dict[str, object]]:
    """Fig. 12 (Appendix A.1): CFL vs DA vs DAF on the Twitter stand-in,
    elapsed time split into preprocessing and search.  Paper: DAF up to
    14x faster total, up to 3 orders of magnitude in search time."""
    data = load("twitter")
    rows: list[dict[str, object]] = []
    for size in dataset_sizes("twitter", profile):
        for density in profile.densities:
            qs = queries_for("twitter", size, density, profile, data)
            summaries = compare_matchers(
                _main_matchers(), f"twitter:{qs.name}", qs.queries, data,
                limit=profile.limit, time_limit=profile.time_limit,
            )
            for name in ("CFL-Match", "DA", "DAF"):
                s = summaries[name]
                rows.append(
                    {
                        "query_set": qs.name,
                        "algorithm": name,
                        "solved_%": round(s.solved_percent, 1),
                        "preprocess_ms": round(s.avg_preprocess_ms, 2),
                        "search_ms": round(s.avg_search_ms, 2),
                        "total_ms": round(s.avg_elapsed_ms, 2),
                        "avg_calls": round(s.avg_recursive_calls, 1),
                    }
                )
    return rows


# ---------------------------------------------------------------------
# Figure 13 — comparison with the other existing algorithms
# ---------------------------------------------------------------------
def figure13(
    profile: BenchProfile = DEFAULT,
    algorithms: Sequence[str] = ("VF2", "QuickSI", "GraphQL", "GADDI", "SPath", "TurboISO"),
) -> list[dict[str, object]]:
    """Fig. 13 (Appendix A.2): DAF vs the pre-CFL algorithms.
    Paper: DAF always best, Turbo_iso runner-up."""
    matchers = {"DAF": daf_variant("DAF")}
    for name in algorithms:
        matchers[name] = ALL_BASELINES[name]()
    rows: list[dict[str, object]] = []
    for dataset in profile.datasets[: max(1, len(profile.datasets) // 3)]:
        data = load(dataset)
        size = dataset_sizes(dataset, profile)[0]
        for density in profile.densities:
            qs = queries_for(dataset, size, density, profile, data)
            summaries = compare_matchers(
                matchers, f"{dataset}:{qs.name}", qs.queries, data,
                limit=profile.limit, time_limit=profile.time_limit,
            )
            for name, s in summaries.items():
                rows.append(
                    {
                        "dataset": dataset,
                        "query_set": qs.name,
                        "algorithm": name,
                        "solved_%": round(s.solved_percent, 1),
                        "avg_time_ms": round(s.avg_elapsed_ms, 2),
                        "avg_calls": round(s.avg_recursive_calls, 1),
                    }
                )
    return rows


# ---------------------------------------------------------------------
# Figure 14 — negative queries
# ---------------------------------------------------------------------
def figure14(profile: BenchProfile = DEFAULT) -> list[dict[str, object]]:
    """Fig. 14 (Appendix A.3): behaviour on perturbed (possibly negative)
    queries — label changes and edge additions on non-sparse Human
    queries.  Paper: most negatives are proven by an empty CS with zero
    search; edge additions saturate while label changes drive the
    negative share to ~100%."""
    data = load("human")
    size = dataset_sizes("human", profile)[0]
    qs = queries_for("human", size, "nonsparse", profile, data)
    alphabet = sorted(data.distinct_labels())
    rng = random.Random(profile.seed + 14)
    rows: list[dict[str, object]] = []

    for k in (1, 2, 4, 8):
        perturbed = [perturb_labels(q, k, alphabet, rng) for q in qs.queries]
        b = classify_queries(perturbed, data, limit=profile.limit, time_limit=profile.time_limit)
        rows.append(
            {
                "perturbation": f"labels:{k}",
                "positive": b.positive,
                "negative_empty_CS": b.negative_empty_cs,
                "negative_searched": b.negative_searched,
                "unsolved": b.unsolved,
                "pos_avg_ms": round(1000 * b.positive_elapsed / max(1, b.positive), 2),
                "neg_avg_ms": round(1000 * b.negative_elapsed / max(1, b.negative), 2),
            }
        )
    for k in (1, 4, 16):
        perturbed = [add_random_edges(q, k, rng) for q in qs.queries]
        b = classify_queries(perturbed, data, limit=profile.limit, time_limit=profile.time_limit)
        rows.append(
            {
                "perturbation": f"edges:{k}",
                "positive": b.positive,
                "negative_empty_CS": b.negative_empty_cs,
                "negative_searched": b.negative_searched,
                "unsolved": b.unsolved,
                "pos_avg_ms": round(1000 * b.positive_elapsed / max(1, b.positive), 2),
                "neg_avg_ms": round(1000 * b.negative_elapsed / max(1, b.negative), 2),
            }
        )
    complete = [complete_query(q) for q in qs.queries]
    b = classify_queries(complete, data, limit=profile.limit, time_limit=profile.time_limit)
    rows.append(
        {
            "perturbation": "edges:C",
            "positive": b.positive,
            "negative_empty_CS": b.negative_empty_cs,
            "negative_searched": b.negative_searched,
            "unsolved": b.unsolved,
            "pos_avg_ms": round(1000 * b.positive_elapsed / max(1, b.positive), 2),
            "neg_avg_ms": round(1000 * b.negative_elapsed / max(1, b.negative), 2),
        }
    )
    return rows


# ---------------------------------------------------------------------
# Figures 15/16 — parallel DAF
# ---------------------------------------------------------------------
def figure15(
    profile: BenchProfile = DEFAULT, worker_counts: Sequence[int] = (1, 2, 4)
) -> list[dict[str, object]]:
    """Fig. 15 (Appendix A.4): elapsed time finding k embeddings on Human
    with 1..16 threads (1..4 workers here).  Paper: large drop from 1 to
    2 threads; wall-clock gains need real cores, worker scaling is
    recorded regardless."""
    data = load("human")
    size = dataset_sizes("human", profile)[0]
    rows: list[dict[str, object]] = []
    for density in profile.densities:
        qs = queries_for("human", size, density, profile, data)
        for workers in worker_counts:
            matcher = ParallelDAFMatcher(num_workers=workers, config=counting_config())
            elapsed = []
            for q in qs.queries:
                outcome = run_query(matcher, q, data, profile.limit, profile.time_limit)
                if outcome.solved:
                    elapsed.append(outcome.elapsed)
            rows.append(
                {
                    "query_set": qs.name,
                    "workers": workers,
                    "solved": len(elapsed),
                    "avg_time_ms": round(1000 * sum(elapsed) / max(1, len(elapsed)), 2),
                }
            )
    return rows


def figure16(
    profile: BenchProfile = DEFAULT,
    worker_counts: Sequence[int] = (1, 2, 4),
    query_size: int = 6,
) -> list[dict[str, object]]:
    """Fig. 16 (Appendix A.4): speedup finding *all* embeddings of size-6
    Human queries (total work independent of worker count).  Paper:
    speedup 12.7 at p=16 on non-sparse queries."""
    data = load("human")
    rows: list[dict[str, object]] = []
    for density in profile.densities:
        qs = queries_for("human", query_size, density, profile, data)
        # Per-query elapsed per worker count; the speedup averages only
        # over queries solved by *every* configuration, so a timeout
        # cannot masquerade as a speedup.
        per_worker: dict[int, dict[int, float]] = {}
        for workers in worker_counts:
            matcher = ParallelDAFMatcher(num_workers=workers, config=counting_config())
            solved_times: dict[int, float] = {}
            for qi, q in enumerate(qs.queries):
                outcome = run_query(
                    matcher, q, data, limit=10**9, time_limit=profile.time_limit * 4
                )
                if outcome.solved:
                    solved_times[qi] = outcome.elapsed
            per_worker[workers] = solved_times
        common = set.intersection(*(set(t) for t in per_worker.values()))
        base_avg: Optional[float] = None
        for workers in worker_counts:
            times = per_worker[workers]
            if common:
                avg = sum(times[qi] for qi in common) / len(common)
            else:
                avg = sum(times.values()) / max(1, len(times))
            if workers == worker_counts[0]:
                base_avg = avg
            rows.append(
                {
                    "query_set": qs.name,
                    "workers": workers,
                    "solved": len(times),
                    "common_queries": len(common),
                    "avg_time_ms": round(1000 * avg, 2),
                    "speedup": round((base_avg or avg) / max(1e-9, avg), 2),
                }
            )
    return rows


# ---------------------------------------------------------------------
# Figure 17 — DAF-Boost
# ---------------------------------------------------------------------
def figure17(
    profile: BenchProfile = DEFAULT, datasets: Sequence[str] = ("human", "email", "hprd")
) -> list[dict[str, object]]:
    """Fig. 17 (Appendix A.5): DAF vs DAF-Boost.  Paper: the gain tracks
    the data graph's SE compression ratio (Human 53% -> big win, HPRD
    1.4% -> none)."""
    rows: list[dict[str, object]] = []
    for dataset in datasets:
        data = load(dataset)
        ratio = compression_ratio(data)
        size = dataset_sizes(dataset, profile)[0]
        for density in profile.densities:
            qs = queries_for(dataset, size, density, profile, data)
            matchers = {
                "DAF": daf_variant("DAF"),
                "DAF-Boost": BoostedDAFMatcher(counting_config()),
            }
            summaries = compare_matchers(
                matchers, f"{dataset}:{qs.name}", qs.queries, data,
                limit=profile.limit, time_limit=profile.time_limit,
            )
            for name, s in summaries.items():
                rows.append(
                    {
                        "dataset": dataset,
                        "compression_%": round(100 * ratio, 1),
                        "query_set": qs.name,
                        "algorithm": name,
                        "solved_%": round(s.solved_percent, 1),
                        "avg_time_ms": round(s.avg_elapsed_ms, 2),
                        "avg_calls": round(s.avg_recursive_calls, 1),
                    }
                )
    return rows


# ---------------------------------------------------------------------
# Figure 18 — the four DAF variants
# ---------------------------------------------------------------------
def figure18(profile: BenchProfile = DEFAULT) -> list[dict[str, object]]:
    """Fig. 18 (Appendix A.6): DA-cand vs DA-path vs DAF-cand vs DAF-path.
    Paper: failing sets help almost everywhere; the order gap is marginal
    with path slightly ahead — hence DAF = DAF-path."""
    variants = ("DA-cand", "DA-path", "DAF-cand", "DAF-path")
    rows: list[dict[str, object]] = []
    for dataset in profile.datasets:
        data = load(dataset)
        size = dataset_sizes(dataset, profile)[0]
        for density in profile.densities:
            qs = queries_for(dataset, size, density, profile, data)
            matchers = {name: daf_variant(name) for name in variants}
            summaries = compare_matchers(
                matchers, f"{dataset}:{qs.name}", qs.queries, data,
                limit=profile.limit, time_limit=profile.time_limit,
            )
            for name in variants:
                s = summaries[name]
                rows.append(
                    {
                        "dataset": dataset,
                        "query_set": qs.name,
                        "algorithm": name,
                        "solved_%": round(s.solved_percent, 1),
                        "avg_time_ms": round(s.avg_elapsed_ms, 2),
                        "avg_calls": round(s.avg_recursive_calls, 1),
                    }
                )
    return rows
