"""Reusable data-graph indexes for the serving layer.

Every ``match()`` call re-derives the same data-graph statistics: the
label+degree scan behind C_ini (paper §3), the per-vertex neighbor-label
multiset behind the NLF filter, and the max-neighbor-degree behind MND
(§4, "Optimizing CS").  For a single ad-hoc query that is the right
trade-off — the scan is linear and building anything fancier costs more
than it saves.  A *serving* workload inverts the economics: one data
graph answers thousands of queries, so `repro.service.DataGraphSession`
builds a :class:`GraphIndex` once and every subsequent filter evaluation
becomes a bucket lookup.

The index is attached to the graph itself (``Graph.ensure_index()``)
rather than passed around, so the fast paths in ``repro.core.filters``
and ``repro.core.candidate_space`` light up transparently for every
consumer — DAF preprocessing, all baseline filters, and forked parallel
workers (which inherit the built index copy-on-write).

Contents, per frozen graph:

- **degree-sorted label buckets**: for each label, the vertices carrying
  it sorted by ``(degree, id)`` plus the parallel degree array, so
  ``C_ini(u)`` = a ``bisect`` + slice instead of a filtered scan and
  ``|C_ini(u)|`` (root selection) is O(log n);
- **NLF signatures**: ``neighbor_label_counts(v)`` precomputed for every
  vertex (the per-call version builds a fresh dict per invocation);
- **MND array**: ``max_neighbor_degree(v)`` for every vertex.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import Graph, Label


class GraphIndex:
    """Immutable derived statistics of one frozen :class:`Graph`.

    Construction is O(V log V + E); every query-time operation is a
    dictionary lookup, a bisect, or an array read.  The returned
    containers are shared, not copied — callers must treat them as
    read-only (the NLF dicts in particular are handed out by reference
    on the hot filter path).
    """

    __slots__ = ("_buckets", "_nlf", "_max_nbr_deg", "build_seconds")

    def __init__(self, graph: "Graph") -> None:
        graph._require_frozen()
        start = time.perf_counter()
        degrees = graph.degrees
        labels = graph.labels

        # Label buckets in first-seen vertex order (deterministic without
        # requiring labels of mixed types to be sortable against each other).
        seen: dict["Label", None] = {}
        for lab in labels:
            if lab not in seen:
                seen[lab] = None
        buckets: dict["Label", tuple[tuple[int, ...], tuple[int, ...]]] = {}
        for lab in seen:
            verts = sorted(graph.vertices_with_label(lab), key=lambda v: (degrees[v], v))
            buckets[lab] = (tuple(verts), tuple(degrees[v] for v in verts))
        self._buckets = buckets

        nlf: list[dict["Label", int]] = []
        max_nbr_deg: list[int] = []
        for v in graph.vertices():
            counts: dict["Label", int] = {}
            best = 0
            for w in graph.neighbors(v):
                lab = labels[w]
                counts[lab] = counts.get(lab, 0) + 1
                if degrees[w] > best:
                    best = degrees[w]
            nlf.append(counts)
            max_nbr_deg.append(best)
        self._nlf = tuple(nlf)
        self._max_nbr_deg = tuple(max_nbr_deg)
        self.build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    # C_ini support (label + degree threshold)
    # ------------------------------------------------------------------
    def candidates_with_min_degree(self, label: "Label", min_degree: int) -> list[int]:
        """``{ v : L(v) = label, deg(v) >= min_degree }`` in ascending
        vertex-id order (the same order the unindexed scan produces)."""
        bucket = self._buckets.get(label)
        if bucket is None:
            return []
        verts, degs = bucket
        return sorted(verts[bisect_left(degs, min_degree):])

    def count_with_min_degree(self, label: "Label", min_degree: int) -> int:
        bucket = self._buckets.get(label)
        if bucket is None:
            return 0
        verts, degs = bucket
        return len(verts) - bisect_left(degs, min_degree)

    # ------------------------------------------------------------------
    # Local-filter support (NLF / MND)
    # ------------------------------------------------------------------
    def neighbor_label_counts(self, v: int) -> dict["Label", int]:
        """Precomputed NLF signature of ``v`` — shared dict, do not mutate."""
        return self._nlf[v]

    def max_neighbor_degree(self, v: int) -> int:
        return self._max_nbr_deg[v]

    def __repr__(self) -> str:
        return (
            f"GraphIndex(labels={len(self._buckets)}, "
            f"vertices={len(self._nlf)}, built in {self.build_seconds * 1e3:.1f}ms)"
        )


def refresh_index(
    old_graph: "Graph", old_index: GraphIndex, new_graph: "Graph", footprint
) -> GraphIndex:
    """Incrementally rebuild a :class:`GraphIndex` after a delta batch.

    ``footprint`` is the :class:`repro.graph.mutate.DeltaFootprint` of the
    batch that turned ``old_graph`` into ``new_graph``.  Only the slices
    the batch could have perturbed are recomputed; everything else is
    shared with ``old_index`` by reference:

    - a label bucket is rebuilt iff some dirty vertex carries that label
      in the old or new graph (bucket contents depend only on the label's
      membership and its members' degrees, and a degree can only change
      at an ``edge_touched`` vertex — whose label is then dirty);
    - NLF/MND entries are recomputed for dirty vertices and their new-
      graph neighborhoods (a vertex that lost a neighbor entirely is
      itself ``edge_touched``).

    The result is content-identical to ``GraphIndex(new_graph)``.
    """
    start = time.perf_counter()
    degrees = new_graph.degrees
    labels = new_graph.labels

    dirty = footprint.dirty
    dirty_labels = {labels[v] for v in dirty}
    old_vertex_count = old_graph.num_vertices
    for v in dirty:
        if v < old_vertex_count:
            dirty_labels.add(old_graph.label(v))

    index = object.__new__(GraphIndex)
    buckets: dict["Label", tuple[tuple[int, ...], tuple[int, ...]]] = {}
    for lab in dict.fromkeys(labels):
        if lab in dirty_labels or lab not in old_index._buckets:
            verts = sorted(
                new_graph.vertices_with_label(lab), key=lambda v: (degrees[v], v)
            )
            buckets[lab] = (tuple(verts), tuple(degrees[v] for v in verts))
        else:
            buckets[lab] = old_index._buckets[lab]
    index._buckets = buckets

    recompute = set(dirty)
    for v in dirty:
        recompute.update(new_graph.neighbors(v))
    nlf = list(old_index._nlf)
    max_nbr_deg = list(old_index._max_nbr_deg)
    grown = new_graph.num_vertices - len(nlf)
    if grown > 0:
        nlf.extend({} for _ in range(grown))
        max_nbr_deg.extend(0 for _ in range(grown))
    for v in recompute:
        counts: dict["Label", int] = {}
        best = 0
        for w in new_graph.neighbors(v):
            lab = labels[w]
            counts[lab] = counts.get(lab, 0) + 1
            if degrees[w] > best:
                best = degrees[w]
        nlf[v] = counts
        max_nbr_deg[v] = best
    index._nlf = tuple(nlf)
    index._max_nbr_deg = tuple(max_nbr_deg)
    index.build_seconds = time.perf_counter() - start
    return index
