"""Label-aware canonical hashing of query graphs (serving-layer cache keys).

The prepared-query cache in ``repro.service`` needs a key under which two
*isomorphic* query graphs — same structure, possibly relabeled vertex ids —
collide, so a repeated query shape skips preprocessing no matter how its
vertices happen to be numbered.  We use the classic 1-dimensional
Weisfeiler–Lehman color refinement: every vertex starts from its label,
then repeatedly absorbs the sorted multiset of its neighbors' colors; the
graph key is a digest of the final color multiset plus the vertex/edge
counts.

Two properties matter for the cache:

- **soundness of collisions is NOT guaranteed** — WL is a complete
  isomorphism invariant for trees but not for general graphs (the classic
  counterexamples are strongly regular graphs).  Isomorphic graphs always
  collide; colliding graphs are *probably* isomorphic.  The cache
  therefore verifies every hit with an actual isomorphism search (VF2)
  before reusing a prepared structure, and stores colliding
  non-isomorphic shapes in separate slots under the same hash.
- **process stability** — the digest must agree across interpreter runs
  and worker processes, so nothing here may touch the salted builtin
  ``hash()``.  All hashing goes through BLAKE2 over ``repr()``-ed labels
  (``repr`` is stable for the str/int label types the loaders produce).
"""

from __future__ import annotations

import hashlib

from .graph import Graph


def _digest(*parts: bytes) -> bytes:
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part)
        h.update(b"\x00")
    return h.digest()


def wl_colors(graph: Graph, iterations: int = 3) -> list[bytes]:
    """Per-vertex WL colors after ``iterations`` refinement rounds.

    Round 0 colors a vertex by its label; each subsequent round hashes
    the vertex's own color with the sorted list of its neighbors'
    colors.  ``iterations`` is capped at ``|V|`` — refinement provably
    stabilizes by then.
    """
    graph._require_frozen()
    colors = [_digest(repr(graph.label(v)).encode()) for v in graph.vertices()]
    for _ in range(min(iterations, graph.num_vertices)):
        colors = [
            _digest(colors[v], *sorted(colors[w] for w in graph.neighbors(v)))
            for v in graph.vertices()
        ]
    return colors


def canonical_hash(graph: Graph, iterations: int = 3) -> str:
    """A hex digest identical for isomorphic graphs (WL-stable key).

    Vertex/edge counts are folded in explicitly so the trivial
    collisions (empty color lists etc.) cannot conflate different sizes.
    Collisions between non-isomorphic graphs are possible and must be
    handled by the caller (see module docstring).
    """
    colors = wl_colors(graph, iterations=iterations)
    return _digest(
        str(graph.num_vertices).encode(),
        str(graph.num_edges).encode(),
        *sorted(colors),
    ).hex()
