"""Rooted directed acyclic graphs over query vertices.

A :class:`RootedDAG` is the orientation of a query graph produced by
BuildDAG (paper §3): it keeps the *same* vertex ids and labels as the
underlying query graph and assigns a direction to every query edge so that
there is a single root with no incoming edges.  Matching-order machinery
(topological orders, parents/children, ancestors, tree-like paths) lives
here; the BuildDAG *policy* (how to pick the root and the BFS order, which
needs data-graph statistics) lives in :mod:`repro.core.dag`.
"""

from __future__ import annotations

from collections.abc import Iterable

from .graph import Graph, GraphError


class RootedDAG:
    """A rooted DAG sharing vertex ids with a query graph.

    Parameters
    ----------
    query:
        The undirected query graph this DAG orients.
    edges:
        Directed edges ``(parent, child)``; must cover *every* edge of
        ``query`` exactly once (one direction each) so that the DAG carries
        the full pruning power of the query (paper §1 challenge 1).
    root:
        The unique vertex with no incoming edges.
    """

    __slots__ = (
        "query",
        "root",
        "_children",
        "_parents",
        "_topological",
        "_topo_rank",
        "_ancestor_mask",
    )

    def __init__(self, query: Graph, edges: Iterable[tuple[int, int]], root: int) -> None:
        query._require_frozen()
        n = query.num_vertices
        children: list[list[int]] = [[] for _ in range(n)]
        parents: list[list[int]] = [[] for _ in range(n)]
        seen: set[tuple[int, int]] = set()
        for parent, child in edges:
            key = (parent, child) if parent < child else (child, parent)
            if key in seen:
                raise GraphError(f"edge {key} oriented twice")
            if not query.has_edge(parent, child):
                raise GraphError(f"directed edge ({parent}, {child}) is not a query edge")
            seen.add(key)
            children[parent].append(child)
            parents[child].append(parent)
        if len(seen) != query.num_edges:
            raise GraphError(
                f"DAG covers {len(seen)} of {query.num_edges} query edges; "
                "every query edge must be oriented"
            )
        self.query = query
        self.root = root
        self._children = tuple(tuple(c) for c in children)
        self._parents = tuple(tuple(p) for p in parents)
        self._topological = self._compute_topological_order()
        if self._topological[0] != root or self._parents[root]:
            raise GraphError(f"vertex {root} is not the unique root")
        roots = [v for v in range(n) if not self._parents[v]]
        if roots != [root]:
            raise GraphError(f"expected single root {root}, found roots {roots}")
        self._topo_rank = tuple(
            rank for rank, _ in sorted(enumerate(self._topological), key=lambda rv: rv[1])
        )
        self._ancestor_mask = self._compute_ancestor_masks()

    # ------------------------------------------------------------------
    def _compute_topological_order(self) -> tuple[int, ...]:
        """Kahn's algorithm; raises if the orientation has a cycle."""
        n = self.query.num_vertices
        indegree = [len(self._parents[v]) for v in range(n)]
        # A deterministic order keeps every run (and every test) identical:
        # among ready vertices, smaller ids first.
        ready = sorted(v for v in range(n) if indegree[v] == 0)
        order: list[int] = []
        import heapq

        heapq.heapify(ready)
        while ready:
            v = heapq.heappop(ready)
            order.append(v)
            for c in self._children[v]:
                indegree[c] -= 1
                if indegree[c] == 0:
                    heapq.heappush(ready, c)
        if len(order) != n:
            raise GraphError("edge orientation contains a cycle")
        return tuple(order)

    def _compute_ancestor_masks(self) -> tuple[int, ...]:
        """Bitmask per vertex of all its ancestors *including itself*.

        anc(u) in the paper (§6.1) includes u; unions of these masks are the
        failing sets, so we precompute them once per query.
        """
        masks = [0] * self.query.num_vertices
        for v in self._topological:
            mask = 1 << v
            for p in self._parents[v]:
                mask |= masks[p]
            masks[v] = mask
        return tuple(masks)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.query.num_vertices

    def children(self, v: int) -> tuple[int, ...]:
        return self._children[v]

    def parents(self, v: int) -> tuple[int, ...]:
        return self._parents[v]

    def topological_order(self) -> tuple[int, ...]:
        return self._topological

    def topo_rank(self, v: int) -> int:
        """Position of ``v`` in the canonical topological order."""
        return self._topo_rank[v]

    def ancestor_mask(self, v: int) -> int:
        """Bitmask of ancestors of ``v`` in the DAG, including ``v``."""
        return self._ancestor_mask[v]

    def ancestors(self, v: int) -> frozenset[int]:
        """anc(v): all ancestors of ``v`` including ``v`` itself."""
        mask = self._ancestor_mask[v]
        return frozenset(u for u in range(self.num_vertices) if mask >> u & 1)

    def is_leaf(self, v: int) -> bool:
        """A DAG leaf has no outgoing edges."""
        return not self._children[v]

    def edges(self) -> Iterable[tuple[int, int]]:
        for parent in range(self.num_vertices):
            for child in self._children[parent]:
                yield (parent, child)

    def reverse(self) -> "ReversedDAG":
        """The reverse DAG q_D^{-1} used by alternating refinement (§4)."""
        return ReversedDAG(self)

    # ------------------------------------------------------------------
    # Tree-like paths (paper §5.2, Definition 5.3)
    # ------------------------------------------------------------------
    def single_parent_children(self, v: int) -> tuple[int, ...]:
        """Children of ``v`` whose only parent is ``v``.

        These are the vertices a tree-like path may continue through.
        """
        return tuple(c for c in self._children[v] if len(self._parents[c]) == 1)

    def maximal_tree_like_paths(self, start: int) -> list[tuple[int, ...]]:
        """All maximal tree-like paths starting at ``start`` (Def. 5.3).

        A path is tree-like when every vertex after the leading one has
        exactly one parent; it is maximal when no tree-like extension
        exists.  Exposed mainly for tests and for explaining the weight
        array — the weight computation itself (ordering.py) uses the same
        recursion without materializing paths.
        """
        paths: list[tuple[int, ...]] = []

        def extend(path: list[int]) -> None:
            tip = path[-1]
            extensions = self.single_parent_children(tip)
            if not extensions:
                paths.append(tuple(path))
                return
            for c in extensions:
                path.append(c)
                extend(path)
                path.pop()

        extend([start])
        return paths

    def __repr__(self) -> str:
        return (
            f"RootedDAG(root={self.root}, |V|={self.num_vertices}, "
            f"|E|={self.query.num_edges})"
        )


class ReversedDAG:
    """Read-only reverse view of a :class:`RootedDAG` (q_D^{-1}, §4).

    The reverse of a rooted DAG generally has several sources, so it is not
    itself a RootedDAG; DAG-graph DP only needs children and a reverse
    topological order, which this view provides.
    """

    __slots__ = ("base",)

    def __init__(self, base: RootedDAG) -> None:
        self.base = base

    @property
    def query(self) -> Graph:
        return self.base.query

    @property
    def num_vertices(self) -> int:
        return self.base.num_vertices

    def children(self, v: int) -> tuple[int, ...]:
        return self.base.parents(v)

    def parents(self, v: int) -> tuple[int, ...]:
        return self.base.children(v)

    def topological_order(self) -> tuple[int, ...]:
        return tuple(reversed(self.base.topological_order()))

    def edges(self) -> Iterable[tuple[int, int]]:
        for parent, child in self.base.edges():
            yield (child, parent)

    def __repr__(self) -> str:
        return f"ReversedDAG(of={self.base!r})"


def path_tree_size(dag: RootedDAG) -> int:
    """Number of vertices of the path tree of ``dag`` (Definition 4.4).

    The path tree shares common prefixes of root-to-leaf paths; its size is
    exponential in the worst case, so this is for analysis/tests only and
    never used by matching itself.
    """
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def subtree(v: int) -> int:
        return 1 + sum(subtree(c) for c in dag.children(v))

    return subtree(dag.root)
