"""Random labeled graph generators.

These produce the synthetic data graphs the benchmark suite runs on.  The
paper evaluates on six real protein/social/bibliographic graphs; offline we
generate graphs that match their published vertex/edge/label statistics
(see :mod:`repro.datasets.registry`), built on the primitives here:

- :func:`gnm_random_graph` — uniform G(n, m), the simplest substrate.
- :func:`power_law_graph` — preferential-attachment-style graphs whose
  heavy-tailed degree distribution matches real networks (the statistic
  that drives candidate-set skew and therefore matching difficulty).
- :func:`random_labels` / :func:`power_law_labels` — uniform and Zipfian
  label assignment (the paper assigns random labels to Email/DBLP/Twitter
  and the sensitivity analysis uses power-law labels).

Every generator takes an explicit ``random.Random`` so workloads are
reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from .graph import Graph


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def random_labels(
    num_vertices: int, num_labels: int, rng: random.Random
) -> list[int]:
    """Uniform labels ``0..num_labels-1``, one per vertex."""
    _require(num_labels >= 1, "need at least one label")
    return [rng.randrange(num_labels) for _ in range(num_vertices)]


def power_law_labels(
    num_vertices: int,
    num_labels: int,
    rng: random.Random,
    exponent: float = 1.5,
) -> list[int]:
    """Zipf-distributed labels: label ``i`` has weight ``(i+1)^-exponent``.

    The sensitivity analysis (Fig. 11) assigns labels "according to
    power-laws"; skewed label frequencies are also what make the initial
    candidate sets of real datasets skewed.
    """
    _require(num_labels >= 1, "need at least one label")
    weights = [(i + 1) ** -exponent for i in range(num_labels)]
    return rng.choices(range(num_labels), weights=weights, k=num_vertices)


def gnm_random_graph(
    num_vertices: int,
    num_edges: int,
    labels: Sequence[object],
    rng: random.Random,
) -> Graph:
    """A uniform simple graph with exactly ``num_edges`` edges."""
    _require(len(labels) == num_vertices, "one label per vertex required")
    max_edges = num_vertices * (num_vertices - 1) // 2
    _require(num_edges <= max_edges, f"at most {max_edges} edges fit in a simple graph")
    graph = Graph()
    for label in labels:
        graph.add_vertex(label)
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key not in chosen:
            chosen.add(key)
            graph.add_edge(*key)
    return graph.freeze()


def power_law_graph(
    num_vertices: int,
    num_edges: int,
    labels: Sequence[object],
    rng: random.Random,
    clustering: float = 0.3,
) -> Graph:
    """A heavy-tailed, clustered simple graph with exactly ``num_edges``
    edges.

    Endpoints are drawn from a growing repeated-endpoint pool (Chung-Lu /
    preferential-attachment flavour): each inserted edge re-adds both
    endpoints to the pool, so high-degree vertices keep attracting edges.
    A ``clustering`` fraction of edges instead *close wedges* — they
    connect two neighbors of a pool vertex — giving the high clustering
    coefficients of real protein/social networks (without it, small
    walk-induced subgraphs are locally tree-like and dense query classes
    cannot exist).  A uniform draw is mixed in so low-degree vertices
    stay reachable and the generator cannot stall on small dense graphs.
    """
    _require(len(labels) == num_vertices, "one label per vertex required")
    _require(0.0 <= clustering <= 1.0, "clustering must be in [0, 1]")
    max_edges = num_vertices * (num_vertices - 1) // 2
    _require(num_edges <= max_edges, f"at most {max_edges} edges fit in a simple graph")
    graph = Graph()
    for label in labels:
        graph.add_vertex(label)
    pool: list[int] = list(range(num_vertices))
    adjacency: list[list[int]] = [[] for _ in range(num_vertices)]
    chosen: set[tuple[int, int]] = set()
    stall = 0
    while len(chosen) < num_edges:
        # Escalating uniform mixing defeats stalls near the dense limit.
        if stall > 20:
            u = rng.randrange(num_vertices)
            v = rng.randrange(num_vertices)
        elif rng.random() < clustering:
            # Triangle closure: connect two neighbors of a pool vertex.
            w = pool[rng.randrange(len(pool))]
            neighbors = adjacency[w]
            if len(neighbors) < 2:
                stall += 1
                continue
            u = neighbors[rng.randrange(len(neighbors))]
            v = neighbors[rng.randrange(len(neighbors))]
        else:
            u = pool[rng.randrange(len(pool))]
            v = pool[rng.randrange(len(pool))] if rng.random() < 0.7 else rng.randrange(num_vertices)
        if u == v:
            stall += 1
            continue
        key = (u, v) if u < v else (v, u)
        if key in chosen:
            stall += 1
            continue
        stall = 0
        chosen.add(key)
        graph.add_edge(*key)
        adjacency[u].append(v)
        adjacency[v].append(u)
        pool.append(u)
        pool.append(v)
    return graph.freeze()


def ensure_connected(graph: Graph, rng: random.Random) -> Graph:
    """Return a connected variant of ``graph``.

    Components are linked by adding one random edge between consecutive
    components (edge count grows by ``#components - 1``).  The input graph
    is not modified.
    """
    from .properties import connected_components

    components = connected_components(graph)
    if len(components) <= 1:
        return graph
    patched = graph.copy()
    anchor_component = components[0]
    for component in components[1:]:
        u = rng.choice(anchor_component)
        v = rng.choice(component)
        patched.add_edge(u, v)
        anchor_component = anchor_component + component
    return patched.freeze()


def complete_graph(labels: Sequence[object]) -> Graph:
    """K_n over the given labels (negative-query experiments add edges
    until queries become complete graphs, Fig. 14)."""
    n = len(labels)
    return Graph(labels=labels, edges=[(u, v) for u in range(n) for v in range(u + 1, n)])


def cycle_graph(labels: Sequence[object]) -> Graph:
    """C_n over the given labels."""
    n = len(labels)
    _require(n >= 3, "a cycle needs at least 3 vertices")
    return Graph(labels=labels, edges=[(i, (i + 1) % n) for i in range(n)])


def path_graph(labels: Sequence[object]) -> Graph:
    """P_n over the given labels."""
    n = len(labels)
    _require(n >= 1, "a path needs at least 1 vertex")
    return Graph(labels=labels, edges=[(i, i + 1) for i in range(n - 1)])


def star_graph(center_label: object, leaf_labels: Sequence[object]) -> Graph:
    """A star: vertex 0 is the center."""
    labels = [center_label, *leaf_labels]
    return Graph(labels=labels, edges=[(0, i) for i in range(1, len(labels))])
