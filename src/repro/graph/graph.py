"""Vertex-labeled undirected graphs.

This module provides the :class:`Graph` substrate that every matcher in the
library operates on.  Vertices are dense integers ``0..n-1`` and labels are
arbitrary hashable values (strings in file formats, small ints in generated
workloads).  A graph is built incrementally with :meth:`Graph.add_vertex`
and :meth:`Graph.add_edge` and then *frozen*; freezing sorts the adjacency
lists, builds the label index and makes the graph safe to share between
matchers and worker processes.

The representation is chosen for pure-Python matching speed:

- per-vertex adjacency as a sorted ``tuple`` (cheap iteration, cache-friendly)
- per-vertex adjacency ``frozenset`` (O(1) edge membership tests)
- label index ``label -> tuple of vertices`` (initial candidate generation)
- degree array (filter checks without recomputation)
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

Label = Hashable
Vertex = int
Edge = tuple[int, int]


class GraphError(ValueError):
    """Raised for structurally invalid graph operations."""


class Graph:
    """An undirected graph with one label per vertex.

    Parameters
    ----------
    labels:
        Optional iterable of labels; vertex ``i`` receives the i-th label.
    edges:
        Optional iterable of ``(u, v)`` pairs over those vertices.

    Examples
    --------
    >>> g = Graph(labels=["A", "B", "A"], edges=[(0, 1), (1, 2)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> g.label(2)
    'A'
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = (
        "_labels",
        "_adj_sets",
        "_adj",
        "_num_edges",
        "_frozen",
        "_label_index",
        "_degrees",
        "_index",
    )

    def __init__(
        self,
        labels: Optional[Iterable[Label]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        self._labels: list[Label] = []
        self._adj_sets: list[set[int]] = []
        self._adj: list[tuple[int, ...]] = []
        self._num_edges = 0
        self._frozen = False
        self._label_index: dict[Label, tuple[int, ...]] = {}
        self._degrees: tuple[int, ...] = ()
        self._index = None
        if labels is not None:
            for label in labels:
                self.add_vertex(label)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)
        if labels is not None or edges is not None:
            self.freeze()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, label: Label) -> int:
        """Add a vertex with the given label and return its id."""
        if self._frozen:
            raise GraphError("cannot add vertices to a frozen graph")
        self._labels.append(label)
        self._adj_sets.append(set())
        return len(self._labels) - 1

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``(u, v)``.

        Self-loops and duplicate edges are rejected: neither occurs in the
        paper's (simple-graph) setting and silently ignoring them hides
        workload-generation bugs.
        """
        if self._frozen:
            raise GraphError("cannot add edges to a frozen graph")
        if u == v:
            raise GraphError(f"self-loop at vertex {u} is not allowed")
        n = len(self._labels)
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) references unknown vertex")
        if v in self._adj_sets[u]:
            raise GraphError(f"duplicate edge ({u}, {v})")
        self._adj_sets[u].add(v)
        self._adj_sets[v].add(u)
        self._num_edges += 1

    def freeze(self) -> "Graph":
        """Finalize the graph: sort adjacency, build indexes.

        Idempotent; returns ``self`` for chaining.
        """
        if self._frozen:
            return self
        self._adj = [tuple(sorted(s)) for s in self._adj_sets]
        self._adj_sets = [frozenset(s) for s in self._adj_sets]  # type: ignore[misc]
        self._degrees = tuple(len(a) for a in self._adj)
        index: dict[Label, list[int]] = {}
        for v, label in enumerate(self._labels):
            index.setdefault(label, []).append(v)
        self._label_index = {lab: tuple(vs) for lab, vs in index.items()}
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise GraphError("graph must be frozen first (call freeze())")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> range:
        return range(len(self._labels))

    def label(self, v: int) -> Label:
        return self._labels[v]

    @property
    def labels(self) -> tuple[Label, ...]:
        """Labels of all vertices, indexed by vertex id."""
        return tuple(self._labels)

    def degree(self, v: int) -> int:
        self._require_frozen()
        return self._degrees[v]

    @property
    def degrees(self) -> tuple[int, ...]:
        self._require_frozen()
        return self._degrees

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted neighbors of ``v``."""
        self._require_frozen()
        return self._adj[v]

    def neighbor_set(self, v: int) -> frozenset[int]:
        self._require_frozen()
        return self._adj_sets[v]  # type: ignore[return-value]

    def has_edge(self, u: int, v: int) -> bool:
        self._require_frozen()
        return v in self._adj_sets[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate each undirected edge once, as ``(u, v)`` with ``u < v``."""
        self._require_frozen()
        for u in self.vertices():
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Label statistics
    # ------------------------------------------------------------------
    def vertices_with_label(self, label: Label) -> tuple[int, ...]:
        self._require_frozen()
        return self._label_index.get(label, ())

    def label_frequency(self, label: Label) -> int:
        """Number of vertices carrying ``label``."""
        self._require_frozen()
        return len(self._label_index.get(label, ()))

    def distinct_labels(self) -> frozenset[Label]:
        self._require_frozen()
        return frozenset(self._label_index)

    @property
    def num_labels(self) -> int:
        self._require_frozen()
        return len(self._label_index)

    def average_degree(self) -> float:
        """avg-deg(g) = sum of degrees / number of vertices (paper §2)."""
        if not self._labels:
            return 0.0
        return 2.0 * self._num_edges / len(self._labels)

    def neighbor_label_counts(self, v: int) -> dict[Label, int]:
        """Multiset of labels among v's neighbors (the NLF signature)."""
        self._require_frozen()
        counts: dict[Label, int] = {}
        for w in self._adj[v]:
            lab = self._labels[w]
            counts[lab] = counts.get(lab, 0) + 1
        return counts

    def max_neighbor_degree(self, v: int) -> int:
        """Largest degree among v's neighbors (0 for isolated v)."""
        self._require_frozen()
        if not self._adj[v]:
            return 0
        return max(self._degrees[w] for w in self._adj[v])

    # ------------------------------------------------------------------
    # Serving-layer index
    # ------------------------------------------------------------------
    def ensure_index(self):
        """Build (once) and return this graph's :class:`GraphIndex`.

        The index precomputes degree-sorted label buckets, NLF signatures
        and max-neighbor degrees so the C_ini/MND/NLF filters become
        lookups instead of scans.  It is *not* built automatically on
        freeze — a one-shot ``match()`` would pay more for the build than
        the lookups save — but ``repro.service.DataGraphSession`` calls
        this on its data graph and every filter fast path then engages
        via :attr:`cached_index`.
        """
        self._require_frozen()
        if self._index is None:
            from .index import GraphIndex

            self._index = GraphIndex(self)
        return self._index

    def adopt_index(self, index) -> None:
        """Attach a pre-built :class:`GraphIndex` to this frozen graph.

        Used by the dynamic serving layer, which refreshes the previous
        graph's index incrementally after a delta batch instead of paying
        a full :meth:`ensure_index` build on the replacement graph.  The
        caller is responsible for the index actually describing this
        graph; an index for a different vertex count is rejected.
        """
        self._require_frozen()
        if index is not None and len(index._nlf) != self.num_vertices:
            raise GraphError("index does not describe this graph (vertex count differs)")
        self._index = index

    @property
    def cached_index(self):
        """The built :class:`GraphIndex`, or ``None`` if ``ensure_index``
        was never called.  Filter fast paths check this and fall back to
        the per-call scans when absent."""
        return self._index if self._frozen else None

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: Iterable[int]) -> tuple["Graph", dict[int, int]]:
        """Return ``(g[S], old->new vertex map)`` for ``S = vertices``.

        The subgraph keeps all edges of this graph with both endpoints in
        ``S`` (paper §2 g[S]); new vertex ids are assigned in the iteration
        order of ``vertices``.
        """
        self._require_frozen()
        order = list(dict.fromkeys(vertices))
        mapping = {old: new for new, old in enumerate(order)}
        sub = Graph()
        for old in order:
            sub.add_vertex(self._labels[old])
        chosen = set(order)
        for old in order:
            for w in self._adj[old]:
                if w in chosen and old < w:
                    sub.add_edge(mapping[old], mapping[w])
        return sub.freeze(), mapping

    def relabeled(self, labels: Mapping[int, Label] | list[Label]) -> "Graph":
        """A copy of this graph with new vertex labels, same edges."""
        self._require_frozen()
        if isinstance(labels, Mapping):
            new_labels = [labels.get(v, self._labels[v]) for v in self.vertices()]
        else:
            if len(labels) != self.num_vertices:
                raise GraphError("label list length must equal vertex count")
            new_labels = list(labels)
        return Graph(labels=new_labels, edges=self.edges())

    def copy(self) -> "Graph":
        """An unfrozen, independently mutable copy."""
        g = Graph()
        for label in self._labels:
            g.add_vertex(label)
        if self._frozen:
            edge_iter: Iterable[Edge] = self.edges()
        else:
            edge_iter = (
                (u, v) for u in range(len(self._labels)) for v in self._adj_sets[u] if u < v
            )
        for u, v in edge_iter:
            g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "building"
        return (
            f"Graph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"labels={len(set(self._labels))}, {state})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality: same labels, same edge set."""
        if not isinstance(other, Graph):
            return NotImplemented
        if self._labels != other._labels or self._num_edges != other._num_edges:
            return False
        self._require_frozen()
        other._require_frozen()
        return self._adj == other._adj

    def __hash__(self) -> int:
        self._require_frozen()
        return hash((tuple(self._labels), self._adj and tuple(self._adj)))
