"""Structural graph properties used across the library.

All functions take frozen :class:`~repro.graph.graph.Graph` objects.  These
are the properties the paper's workload generation and evaluation rely on:
connectivity (query graphs must be connected), diameter (a Fig. 11
sensitivity axis), the 2-core (CFL-Match's core-forest-leaf decomposition),
and degree-one vertex sets (DAF's leaf decomposition, §3).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from .graph import Graph


def connected_components(graph: Graph) -> list[list[int]]:
    """Connected components, each a sorted vertex list, in id order."""
    graph._require_frozen()
    seen = [False] * graph.num_vertices
    components: list[list[int]] = []
    for start in graph.vertices():
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                if not seen[w]:
                    seen[w] = True
                    component.append(w)
                    queue.append(w)
        components.append(sorted(component))
    return components


def is_connected(graph: Graph) -> bool:
    """True iff the graph has exactly one connected component.

    The empty graph is considered disconnected (it has no component),
    matching the paper's setting of non-empty connected query graphs.
    """
    if graph.num_vertices == 0:
        return False
    return len(connected_components(graph)) == 1


def bfs_levels(graph: Graph, root: int) -> list[list[int]]:
    """Vertices grouped by BFS distance from ``root`` (level 0 = root).

    Unreachable vertices are omitted.
    """
    graph._require_frozen()
    dist = {root: 0}
    levels: list[list[int]] = [[root]]
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                if dist[w] == len(levels):
                    levels.append([])
                levels[dist[w]].append(w)
                queue.append(w)
    return levels


def eccentricity(graph: Graph, v: int) -> int:
    """Largest BFS distance from ``v`` to any reachable vertex."""
    return len(bfs_levels(graph, v)) - 1


def diameter(graph: Graph) -> int:
    """Exact diameter of a connected graph (max pairwise distance).

    O(|V| * |E|); fine for query graphs and the scaled data graphs used in
    tests.  Raises ``ValueError`` on disconnected input, where the diameter
    is undefined.
    """
    if not is_connected(graph):
        raise ValueError("diameter is undefined for disconnected graphs")
    return max(eccentricity(graph, v) for v in graph.vertices())


def degree_one_vertices(graph: Graph) -> tuple[int, ...]:
    """Vertices with degree exactly one (DAF's leaf decomposition, §3)."""
    graph._require_frozen()
    return tuple(v for v in graph.vertices() if graph.degree(v) == 1)


def k_core_vertices(graph: Graph, k: int) -> frozenset[int]:
    """Vertices of the maximal subgraph with minimum degree >= k.

    ``k_core_vertices(g, 2)`` is the *core* of CFL-Match's core-forest-leaf
    decomposition: repeatedly delete vertices of degree < k.
    """
    graph._require_frozen()
    degree = list(graph.degrees)
    removed = [False] * graph.num_vertices
    queue = deque(v for v in graph.vertices() if degree[v] < k)
    while queue:
        v = queue.popleft()
        if removed[v]:
            continue
        removed[v] = True
        for w in graph.neighbors(v):
            if not removed[w]:
                degree[w] -= 1
                if degree[w] < k:
                    queue.append(w)
    return frozenset(v for v in graph.vertices() if not removed[v])


def spanning_tree_edges(graph: Graph, root: int) -> list[tuple[int, int]]:
    """BFS spanning-tree edges ``(parent, child)`` from ``root``.

    Used by the spanning-tree-based baselines (Turbo_iso, CFL-Match,
    QuickSI's default tree).
    """
    graph._require_frozen()
    parent = {root: root}
    edges: list[tuple[int, int]] = []
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if w not in parent:
                parent[w] = v
                edges.append((v, w))
                queue.append(w)
    return edges


def non_tree_edges(
    graph: Graph, tree_edges: Iterable[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Edges of ``graph`` absent from ``tree_edges`` (as undirected pairs)."""
    tree = {(min(u, v), max(u, v)) for u, v in tree_edges}
    return [(u, v) for u, v in graph.edges() if (u, v) not in tree]


def density_class(graph: Graph, threshold: float = 3.0) -> str:
    """The paper's sparse/non-sparse query split (§7): avg-deg <= 3 is sparse."""
    return "sparse" if graph.average_degree() <= threshold else "non-sparse"
