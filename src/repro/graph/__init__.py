"""Graph substrate: labeled graphs, rooted DAGs, I/O, generators, sampling."""

from .canonical import canonical_hash, wl_colors
from .digraph import ReversedDAG, RootedDAG, path_tree_size
from .generators import (
    complete_graph,
    cycle_graph,
    ensure_connected,
    gnm_random_graph,
    path_graph,
    power_law_graph,
    power_law_labels,
    random_labels,
    star_graph,
)
from .graph import Graph, GraphError
from .index import GraphIndex
from .io import (
    GraphFormatError,
    graph_from_string,
    graph_to_string,
    read_cfl,
    read_edge_list,
    write_cfl,
    write_edge_list,
)
from .properties import (
    bfs_levels,
    connected_components,
    degree_one_vertices,
    density_class,
    diameter,
    eccentricity,
    is_connected,
    k_core_vertices,
    non_tree_edges,
    spanning_tree_edges,
)
from .sampling import (
    SamplingError,
    extract_query,
    extract_query_with_degree,
    random_walk_vertices,
)

__all__ = [
    "Graph",
    "GraphError",
    "GraphFormatError",
    "GraphIndex",
    "ReversedDAG",
    "RootedDAG",
    "SamplingError",
    "bfs_levels",
    "canonical_hash",
    "complete_graph",
    "connected_components",
    "cycle_graph",
    "degree_one_vertices",
    "density_class",
    "diameter",
    "eccentricity",
    "ensure_connected",
    "extract_query",
    "extract_query_with_degree",
    "gnm_random_graph",
    "graph_from_string",
    "graph_to_string",
    "is_connected",
    "k_core_vertices",
    "non_tree_edges",
    "path_graph",
    "path_tree_size",
    "power_law_graph",
    "power_law_labels",
    "random_labels",
    "random_walk_vertices",
    "read_cfl",
    "read_edge_list",
    "spanning_tree_edges",
    "star_graph",
    "wl_colors",
    "write_cfl",
    "write_edge_list",
]
