"""Graph file I/O.

Two formats are supported:

1. The community subgraph-matching format used by the datasets of
   Turbo_iso / CFL-Match / DAF and most follow-up studies::

       t <num-vertices> <num-edges>
       v <vertex-id> <label> <degree>
       ...
       e <src> <dst>
       ...

   The degree column is redundant (derivable from the edge list) and is
   validated, not trusted.  ``#`` starts a comment; blank lines are
   ignored.

2. A plain labeled edge list (``write_edge_list`` / ``read_edge_list``)::

       <num-vertices>
       <vertex-id> <label>           # one line per vertex
       <src> <dst>                   # one line per edge

Both readers return frozen :class:`~repro.graph.graph.Graph` objects and
raise :class:`GraphFormatError` with line numbers on malformed input.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

from .graph import Graph

PathLike = Union[str, Path]


class GraphFormatError(ValueError):
    """Raised when a graph file is malformed."""


def _open_for_read(source: Union[PathLike, TextIO]) -> tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _significant_lines(stream: TextIO):
    for lineno, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            yield lineno, line


def read_cfl(source: Union[PathLike, TextIO]) -> Graph:
    """Read a graph in the ``t/v/e`` community format."""
    stream, owned = _open_for_read(source)
    try:
        lines = _significant_lines(stream)
        try:
            lineno, header = next(lines)
        except StopIteration:
            raise GraphFormatError("empty graph file") from None
        parts = header.split()
        if parts[0] != "t" or len(parts) != 3:
            raise GraphFormatError(f"line {lineno}: expected 't <n> <m>' header, got {header!r}")
        try:
            num_vertices, num_edges = int(parts[1]), int(parts[2])
        except ValueError:
            raise GraphFormatError(f"line {lineno}: non-integer counts in header") from None

        graph = Graph()
        declared_degrees: list[int] = []
        edges_seen = 0
        for lineno, line in lines:
            parts = line.split()
            if parts[0] == "v":
                if len(parts) not in (3, 4):
                    raise GraphFormatError(f"line {lineno}: expected 'v <id> <label> [deg]'")
                vid = int(parts[1])
                if vid != len(declared_degrees):
                    raise GraphFormatError(
                        f"line {lineno}: vertex ids must be consecutive from 0, got {vid}"
                    )
                graph.add_vertex(parts[2])
                declared_degrees.append(int(parts[3]) if len(parts) == 4 else -1)
            elif parts[0] == "e":
                if len(parts) < 3:
                    raise GraphFormatError(f"line {lineno}: expected 'e <src> <dst>'")
                graph.add_edge(int(parts[1]), int(parts[2]))
                edges_seen += 1
            else:
                raise GraphFormatError(f"line {lineno}: unknown record type {parts[0]!r}")

        if graph.num_vertices != num_vertices:
            raise GraphFormatError(
                f"header declares {num_vertices} vertices, file has {graph.num_vertices}"
            )
        if edges_seen != num_edges:
            raise GraphFormatError(f"header declares {num_edges} edges, file has {edges_seen}")
        graph.freeze()
        for v, declared in enumerate(declared_degrees):
            if declared >= 0 and graph.degree(v) != declared:
                raise GraphFormatError(
                    f"vertex {v}: declared degree {declared} != actual {graph.degree(v)}"
                )
        return graph
    finally:
        if owned:
            stream.close()


def write_cfl(graph: Graph, target: Union[PathLike, TextIO]) -> None:
    """Write ``graph`` in the ``t/v/e`` community format."""
    graph._require_frozen()
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as stream:
            write_cfl(graph, stream)
        return
    target.write(f"t {graph.num_vertices} {graph.num_edges}\n")
    for v in graph.vertices():
        target.write(f"v {v} {graph.label(v)} {graph.degree(v)}\n")
    for u, v in graph.edges():
        target.write(f"e {u} {v}\n")


def read_edge_list(source: Union[PathLike, TextIO]) -> Graph:
    """Read a graph from the plain labeled edge-list format."""
    stream, owned = _open_for_read(source)
    try:
        lines = _significant_lines(stream)
        try:
            lineno, first = next(lines)
            num_vertices = int(first)
        except StopIteration:
            raise GraphFormatError("empty graph file") from None
        except ValueError:
            raise GraphFormatError(f"line {lineno}: expected vertex count") from None
        graph = Graph()
        for _ in range(num_vertices):
            try:
                lineno, line = next(lines)
            except StopIteration:
                raise GraphFormatError("truncated vertex section") from None
            parts = line.split()
            if len(parts) != 2:
                raise GraphFormatError(f"line {lineno}: expected '<id> <label>'")
            if int(parts[0]) != graph.num_vertices:
                raise GraphFormatError(f"line {lineno}: vertex ids must be consecutive from 0")
            graph.add_vertex(parts[1])
        for lineno, line in lines:
            parts = line.split()
            if len(parts) != 2:
                raise GraphFormatError(f"line {lineno}: expected '<src> <dst>'")
            graph.add_edge(int(parts[0]), int(parts[1]))
        return graph.freeze()
    finally:
        if owned:
            stream.close()


def write_edge_list(graph: Graph, target: Union[PathLike, TextIO]) -> None:
    """Write ``graph`` in the plain labeled edge-list format."""
    graph._require_frozen()
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as stream:
            write_edge_list(graph, stream)
        return
    target.write(f"{graph.num_vertices}\n")
    for v in graph.vertices():
        target.write(f"{v} {graph.label(v)}\n")
    for u, v in graph.edges():
        target.write(f"{u} {v}\n")


def graph_from_string(text: str) -> Graph:
    """Parse a ``t/v/e`` graph from an inline string (tests, examples)."""
    return read_cfl(io.StringIO(text))


def graph_to_string(graph: Graph) -> str:
    """Serialize ``graph`` to a ``t/v/e`` string."""
    buffer = io.StringIO()
    write_cfl(graph, buffer)
    return buffer.getvalue()
