"""Applying :class:`repro.interfaces.UpdateBatch` deltas to a data graph.

:class:`Graph` is deliberately immutable once frozen — every matcher,
cached prepared query, and forked worker shares it by reference.  Dynamic
serving therefore mutates by *replacement*: :func:`apply_update` builds a
fresh frozen graph from the old one plus a batch of deltas and reports the
batch's :class:`DeltaFootprint` (which vertices could possibly have
changed label, degree, adjacency, or local-filter signature).  The
serving layer uses the footprint to refresh the :class:`GraphIndex` and
every cached candidate space incrementally instead of rebuilding them.

Two representation rules keep downstream id-based structures stable:

- **Vertex ids never move.**  New vertices append after the current ones
  (ids assigned in batch order); removed vertices are *tombstoned* — all
  incident edges are dropped and the label becomes
  :data:`TOMBSTONE_LABEL`, a reserved sentinel no query may use, so the
  vertex can never re-enter any candidate set.
- **Batches are atomic.**  Deltas are validated against a working copy in
  order; any invalid delta raises :class:`repro.interfaces.UpdateError`
  and the original graph is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interfaces import Delta, UpdateBatch, UpdateError
from .graph import Graph

#: Reserved label given to deleted vertices.  Ordinary graphs must never
#: use it: queries carrying it match nothing by construction, and
#: :func:`apply_update` rejects ``insert-vertex`` deltas that claim it.
TOMBSTONE_LABEL = "__tombstone__"


@dataclass(frozen=True)
class DeltaFootprint:
    """Which vertices an applied batch could possibly have perturbed.

    All sets are *gross* (an edge inserted and deleted within one batch
    contributes to both sides): supersets are sound everywhere the
    footprint is consumed — incremental refresh re-evaluates footprint
    vertices from scratch, and the standing-query delta search only uses
    the footprint to *anchor* enumeration, subtracting the old embedding
    set afterwards.

    Attributes
    ----------
    edge_touched:
        Endpoints of every inserted or deleted edge, including the edges
        stripped by vertex tombstoning.  Exactly the vertices whose
        degree or adjacency may differ.
    added:
        Ids of vertices created by ``insert-vertex`` deltas.
    tombstoned:
        Ids of vertices removed by ``delete-vertex`` deltas.
    inserted_edges / deleted_edges:
        The touched edges themselves as ``(u, v)`` with ``u < v``.
    """

    edge_touched: frozenset[int]
    added: frozenset[int]
    tombstoned: frozenset[int]
    inserted_edges: frozenset[tuple[int, int]]
    deleted_edges: frozenset[tuple[int, int]]

    @property
    def dirty(self) -> frozenset[int]:
        """Vertices whose label, degree, or adjacency may have changed."""
        return self.edge_touched | self.added | self.tombstoned

    def local_dirty(self, graph: Graph) -> set[int]:
        """Vertices whose *local-filter signature* (NLF/MND — a function
        of the neighbors' labels and degrees) may have changed: the dirty
        vertices plus their neighborhoods in the mutated ``graph``.

        Sound because a vertex that lost a neighbor outright is itself
        ``edge_touched``; every other affected vertex still borders a
        dirty vertex in the new graph.
        """
        out = set(self.dirty)
        for v in self.dirty:
            out.update(graph.neighbors(v))
        return out


def apply_update(graph: Graph, batch: UpdateBatch) -> tuple[Graph, DeltaFootprint]:
    """Apply ``batch`` to frozen ``graph``; return the new frozen graph
    and the batch's :class:`DeltaFootprint`.

    Deltas are validated and applied in order against a working copy, so
    later deltas may reference vertices or edges created earlier in the
    same batch.  Raises :class:`UpdateError` (naming the delta and its
    position) on the first invalid delta, leaving ``graph`` untouched.
    """
    graph._require_frozen()
    labels = list(graph.labels)
    adjacency = [set(graph.neighbor_set(v)) for v in graph.vertices()]

    edge_touched: set[int] = set()
    added: set[int] = set()
    tombstoned: set[int] = set()
    inserted_edges: set[tuple[int, int]] = set()
    deleted_edges: set[tuple[int, int]] = set()

    def fail(position: int, delta: Delta, why: str) -> UpdateError:
        return UpdateError(f"deltas[{position}] ({delta.op}): {why}")

    def check_endpoint(position: int, delta: Delta, v: int) -> None:
        if not 0 <= v < len(labels):
            raise fail(position, delta, f"vertex {v} does not exist")
        if labels[v] == TOMBSTONE_LABEL:
            raise fail(position, delta, f"vertex {v} was deleted")

    for position, delta in enumerate(batch):
        if delta.op == "insert-edge":
            u, v = delta.u, delta.v
            check_endpoint(position, delta, u)
            check_endpoint(position, delta, v)
            if v in adjacency[u]:
                raise fail(position, delta, f"edge ({u}, {v}) already exists")
            adjacency[u].add(v)
            adjacency[v].add(u)
            edge_touched.update((u, v))
            inserted_edges.add((u, v) if u < v else (v, u))
        elif delta.op == "delete-edge":
            u, v = delta.u, delta.v
            check_endpoint(position, delta, u)
            check_endpoint(position, delta, v)
            if v not in adjacency[u]:
                raise fail(position, delta, f"edge ({u}, {v}) does not exist")
            adjacency[u].discard(v)
            adjacency[v].discard(u)
            edge_touched.update((u, v))
            deleted_edges.add((u, v) if u < v else (v, u))
        elif delta.op == "insert-vertex":
            if delta.label == TOMBSTONE_LABEL:
                raise fail(position, delta, f"label {TOMBSTONE_LABEL!r} is reserved")
            labels.append(delta.label)
            adjacency.append(set())
            added.add(len(labels) - 1)
        else:  # delete-vertex
            u = delta.u
            check_endpoint(position, delta, u)
            for w in sorted(adjacency[u]):
                adjacency[w].discard(u)
                edge_touched.update((u, w))
                deleted_edges.add((u, w) if u < w else (w, u))
            adjacency[u].clear()
            labels[u] = TOMBSTONE_LABEL
            tombstoned.add(u)

    new_graph = Graph()
    for label in labels:
        new_graph.add_vertex(label)
    for u, neighbors in enumerate(adjacency):
        for v in sorted(neighbors):
            if u < v:
                new_graph.add_edge(u, v)
    new_graph.freeze()

    footprint = DeltaFootprint(
        edge_touched=frozenset(edge_touched),
        added=frozenset(added),
        tombstoned=frozenset(tombstoned),
        inserted_edges=frozenset(inserted_edges),
        deleted_edges=frozenset(deleted_edges),
    )
    return new_graph, footprint
