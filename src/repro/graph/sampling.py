"""Query extraction by random walk (paper §7, "Query Graphs").

The paper generates each query as a connected subgraph of the data graph:
perform a random walk until ``i`` distinct vertices are visited, then take
those vertices and *some* edges between them.  Sampling from the data graph
guarantees every (positive) query has at least one embedding.

:func:`random_walk_vertices` implements the walk, and
:func:`extract_query` builds a query graph over the walked vertices with a
controllable edge density so the sparse (avg-deg <= 3) and non-sparse
query classes Q_iS / Q_iN can both be hit.
"""

from __future__ import annotations

import random
from typing import Optional

from .graph import Graph
from .properties import is_connected


class SamplingError(RuntimeError):
    """Raised when a walk or density target cannot be satisfied."""


def random_walk_vertices(
    graph: Graph,
    num_vertices: int,
    rng: random.Random,
    start: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> list[int]:
    """Distinct vertices collected by a random walk on ``graph``.

    The walk restarts from a fresh random vertex if it gets stuck in a
    small component.  Raises :class:`SamplingError` if ``num_vertices``
    distinct vertices cannot be collected within ``max_steps`` steps
    (default ``200 * num_vertices``).
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be positive")
    if num_vertices > graph.num_vertices:
        raise SamplingError(
            f"cannot sample {num_vertices} vertices from a graph with "
            f"{graph.num_vertices}"
        )
    if max_steps is None:
        max_steps = 200 * num_vertices
    current = start if start is not None else rng.randrange(graph.num_vertices)
    visited: dict[int, None] = {current: None}  # insertion-ordered set
    steps = 0
    while len(visited) < num_vertices:
        steps += 1
        if steps > max_steps:
            raise SamplingError(
                f"random walk collected only {len(visited)} of {num_vertices} "
                f"vertices in {max_steps} steps"
            )
        neighbors = graph.neighbors(current)
        if not neighbors:
            current = rng.randrange(graph.num_vertices)
            visited.setdefault(current, None)
            continue
        current = neighbors[rng.randrange(len(neighbors))]
        visited.setdefault(current, None)
    return list(visited)


def extract_query(
    graph: Graph,
    num_vertices: int,
    rng: random.Random,
    keep_edge_probability: float = 1.0,
    max_attempts: int = 50,
) -> tuple[Graph, dict[int, int]]:
    """Extract a connected query of ``num_vertices`` vertices from ``graph``.

    Returns ``(query, query_vertex -> data_vertex map)``.  The query's
    vertex set comes from a random walk; its edge set is the induced edge
    set thinned by ``keep_edge_probability`` (1.0 keeps the full induced
    subgraph).  Thinning that disconnects the query is retried, and a BFS
    spanning tree of the induced subgraph is always kept so connectivity
    survives aggressive thinning.
    """
    if not 0.0 <= keep_edge_probability <= 1.0:
        raise ValueError("keep_edge_probability must be in [0, 1]")
    last_error: Optional[Exception] = None
    for _ in range(max_attempts):
        try:
            walked = random_walk_vertices(graph, num_vertices, rng)
        except SamplingError as exc:
            last_error = exc
            continue
        induced, old_to_new = graph.induced_subgraph(walked)
        if not is_connected(induced):
            # The walk itself is connected through walk edges, but the
            # *induced* subgraph is connected too since walk edges are
            # induced edges.  This branch guards against future sampling
            # strategies; it cannot trigger for random walks.
            last_error = SamplingError("induced subgraph disconnected")
            continue
        query = _thin_edges(induced, keep_edge_probability, rng)
        new_to_old = {new: old for old, new in old_to_new.items()}
        return query, new_to_old
    raise SamplingError(f"query extraction failed after {max_attempts} attempts: {last_error}")


def _thin_edges(induced: Graph, keep_probability: float, rng: random.Random) -> Graph:
    """Drop non-spanning-tree edges with probability ``1 - keep_probability``."""
    if keep_probability >= 1.0:
        return induced
    from .properties import non_tree_edges, spanning_tree_edges

    tree = spanning_tree_edges(induced, root=0)
    optional = non_tree_edges(induced, tree)
    thinned = Graph()
    for v in induced.vertices():
        thinned.add_vertex(induced.label(v))
    for u, v in tree:
        thinned.add_edge(min(u, v), max(u, v))
    for u, v in optional:
        if rng.random() < keep_probability:
            thinned.add_edge(u, v)
    return thinned.freeze()


def extract_query_with_degree(
    graph: Graph,
    num_vertices: int,
    rng: random.Random,
    min_avg_degree: float = 0.0,
    max_avg_degree: float = float("inf"),
    max_attempts: int = 200,
) -> tuple[Graph, dict[int, int]]:
    """Extract a query whose average degree falls in the requested band.

    This is how the paper's sparse (avg-deg <= 3) and non-sparse
    (avg-deg > 3) query sets are produced: sample, then accept/reject on
    density, adjusting edge thinning to steer toward the band.
    """
    for attempt in range(max_attempts):
        # Sweep the thinning knob: start with the full induced subgraph
        # (densest) and progressively thin if we keep overshooting.
        keep = max(0.0, 1.0 - (attempt % 10) * 0.1)
        query, mapping = extract_query(graph, num_vertices, rng, keep_edge_probability=keep)
        if min_avg_degree <= query.average_degree() <= max_avg_degree:
            return query, mapping
    raise SamplingError(
        f"no query of {num_vertices} vertices with avg degree in "
        f"[{min_avg_degree}, {max_avg_degree}] found in {max_attempts} attempts"
    )
