"""NetworkX interoperability.

Most Python graph pipelines live in networkx; these converters bridge to
and from :class:`repro.graph.graph.Graph` so downstream users can feed
existing graphs straight into the matchers.

networkx is an *optional* dependency: it is imported lazily, and the rest
of the library never touches it.
"""

from __future__ import annotations

from typing import Hashable, Optional

from .graph import Graph


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - env-dependent
        raise ImportError(
            "networkx is required for the interop helpers; install it or "
            "build repro.Graph objects directly"
        ) from exc
    return networkx


def from_networkx(
    nx_graph,
    label_attribute: str = "label",
    default_label: Hashable = "_",
) -> tuple[Graph, dict[Hashable, int]]:
    """Convert an undirected networkx graph to a frozen :class:`Graph`.

    Vertex labels come from the ``label_attribute`` node attribute
    (``default_label`` when missing).  Node names may be arbitrary
    hashables; the returned mapping takes each networkx node to its dense
    vertex id.  Directed graphs, multigraphs and self-loops are rejected
    — the matchers operate on simple undirected graphs (paper §2).
    """
    networkx = _require_networkx()
    if nx_graph.is_directed():
        raise ValueError("directed graphs are not supported; use .to_undirected() first")
    if nx_graph.is_multigraph():
        raise ValueError("multigraphs are not supported; collapse parallel edges first")
    if any(u == v for u, v in nx_graph.edges()):
        raise ValueError("self-loops are not supported; remove them first")
    graph = Graph()
    node_to_id: dict[Hashable, int] = {}
    for node in nx_graph.nodes():
        label = nx_graph.nodes[node].get(label_attribute, default_label)
        node_to_id[node] = graph.add_vertex(label)
    for u, v in nx_graph.edges():
        graph.add_edge(node_to_id[u], node_to_id[v])
    return graph.freeze(), node_to_id


def to_networkx(graph: Graph, label_attribute: str = "label"):
    """Convert a frozen :class:`Graph` to a networkx ``Graph``.

    Vertex ids become node names; labels land in ``label_attribute``.
    """
    networkx = _require_networkx()
    graph._require_frozen()
    nx_graph = networkx.Graph()
    for v in graph.vertices():
        nx_graph.add_node(v, **{label_attribute: graph.label(v)})
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


def match_networkx(
    query,
    data,
    limit: int = 100_000,
    time_limit: Optional[float] = None,
    label_attribute: str = "label",
    config=None,
) -> list[dict[Hashable, Hashable]]:
    """Find embeddings between two networkx graphs directly.

    Returns a list of dicts mapping query node names to data node names.
    """
    from ..core.matcher import DAFMatcher

    q, q_map = from_networkx(query, label_attribute=label_attribute)
    d, d_map = from_networkx(data, label_attribute=label_attribute)
    q_names = {i: name for name, i in q_map.items()}
    d_names = {i: name for name, i in d_map.items()}
    from ..interfaces import MatchOptions, MatchRequest

    request = MatchRequest(q, d, options=MatchOptions(limit=limit, time_limit=time_limit))
    result = DAFMatcher(config).run_request(request)
    return [
        {q_names[u]: d_names[v] for u, v in enumerate(embedding)}
        for embedding in result.embeddings
    ]
