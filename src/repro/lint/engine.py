"""The lint engine: select checkers, run them, filter suppressions.

:func:`run_lint` is the single entry point both the CLI subcommand and
the test suite use.  It is deliberately free of I/O besides reading the
tree under ``root``: rendering and exit codes belong to the caller.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional

from .base import ALL_CHECKERS, Checker
from .context import LintContext
from .findings import Finding

from . import checkers as _checkers  # noqa: F401  — populate the registry


class UnknownCheckError(ValueError):
    """A ``--select``/``--ignore`` id that no registered checker claims."""


def _resolve_ids(ids: Optional[Iterable[str]]) -> Optional[set[str]]:
    if ids is None:
        return None
    resolved = {i.strip() for i in ids if i.strip()}
    unknown = resolved - set(ALL_CHECKERS)
    if unknown:
        raise UnknownCheckError(
            f"unknown check id(s) {sorted(unknown)}; known: {sorted(ALL_CHECKERS)}"
        )
    return resolved


def run_lint(
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Run the (selected) checkers over the repository at ``root``.

    Returns the sorted, deduplicated, suppression-filtered findings.
    ``select`` limits the run to those ids; ``ignore`` drops ids from
    whatever ``select`` produced.  Unknown ids raise
    :class:`UnknownCheckError` — a typo in CI must not silently pass.
    """
    selected = _resolve_ids(select)
    ignored = _resolve_ids(ignore) or set()
    ctx = LintContext(root)
    findings: set[Finding] = set()
    for check_id, checker_cls in ALL_CHECKERS.items():
        if selected is not None and check_id not in selected:
            continue
        if check_id in ignored:
            continue
        checker: Checker = checker_cls()
        for finding in checker.check(ctx):
            module = ctx.module(finding.path)
            if module is not None and ctx.is_suppressed(
                module, finding.line, finding.check_id
            ):
                continue
            findings.add(finding)
    return sorted(findings)


def catalog() -> list[tuple[str, str]]:
    """``(id, description)`` for every registered checker, in catalogue
    order — the source of truth behind ``repro lint --list`` and the
    table in docs/static-analysis.md."""
    return [(check_id, cls.description) for check_id, cls in ALL_CHECKERS.items()]
