"""The lint engine: select checkers, run them, filter suppressions.

:func:`run_lint` is the single entry point both the CLI subcommand and
the test suite use.  It is deliberately free of I/O besides reading the
tree under ``root``: rendering and exit codes belong to the caller.
:func:`run_lint_report` is the richer form behind the CLI — same
findings, plus run metadata (file/checker counts, baseline accounting,
wall time) for the ``lint.run`` observability event and the JSON report.

Parallelism
-----------
With ``jobs > 1``, checkers implementing the map-reduce protocol
(:class:`~repro.lint.base.MapReduceChecker`) fan their per-module
``scan_module`` passes out over a process pool: each worker process
builds its own :class:`LintContext` once (pool initializer), then scans
whole files — one task per module, every parallel checker applied while
the tree is hot in cache.  ``reduce`` runs in the parent, over facts
ordered by the parent's module order, so the merged output is
byte-identical to a serial run regardless of worker scheduling.  Serial
checkers and suppression filtering always run in the parent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from .base import ALL_CHECKERS, Checker, MapReduceChecker
from .baseline import Baseline, BaselineError
from .context import LintContext
from .findings import Finding

from . import checkers as _checkers  # noqa: F401  — populate the registry


class UnknownCheckError(ValueError):
    """A ``--select``/``--ignore`` id that no registered checker claims."""


def _resolve_ids(ids: Optional[Iterable[str]]) -> Optional[set[str]]:
    if ids is None:
        return None
    resolved = {i.strip() for i in ids if i.strip()}
    unknown = resolved - set(ALL_CHECKERS)
    if unknown:
        raise UnknownCheckError(
            f"unknown check id(s) {sorted(unknown)}; known: {sorted(ALL_CHECKERS)}"
        )
    return resolved


@dataclass
class LintReport:
    """One lint run's findings plus the metadata the CLI reports."""

    findings: list[Finding]
    files: int = 0
    checkers: list[str] = field(default_factory=list)
    by_check: dict[str, int] = field(default_factory=dict)
    baseline_suppressed: int = 0
    stale_baseline: int = 0
    elapsed_seconds: float = 0.0
    jobs: int = 1


# -- process-pool worker side -------------------------------------------
#
# Workers are handed (root, check ids) once via the pool initializer and
# module relpaths per task.  Each worker rebuilds its own context and
# checker instances — LintContext is derived purely from the tree on
# disk, so worker state is reproducible by construction.

_WORKER_CTX: Optional[LintContext] = None
_WORKER_CHECKERS: list[MapReduceChecker] = []


def _pool_init(root: str, check_ids: list[str]) -> None:
    global _WORKER_CTX, _WORKER_CHECKERS
    _WORKER_CTX = LintContext(Path(root))
    _WORKER_CHECKERS = []
    for check_id in check_ids:
        checker = ALL_CHECKERS[check_id]()
        checker.setup(_WORKER_CTX)
        _WORKER_CHECKERS.append(checker)


def _pool_scan(relpath: str) -> dict[str, tuple[list[Finding], object]]:
    assert _WORKER_CTX is not None
    module = _WORKER_CTX.module(relpath)
    assert module is not None, relpath
    return {
        checker.id: checker.scan_module(_WORKER_CTX, module)
        for checker in _WORKER_CHECKERS
    }


def _run_parallel(
    ctx: LintContext, checkers: list[MapReduceChecker], jobs: int
) -> Iterable[Finding]:
    """Fan ``scan_module`` out over a process pool; reduce in-parent."""
    from concurrent.futures import ProcessPoolExecutor

    modules = ctx.modules()
    check_ids = [checker.id for checker in checkers]
    for checker in checkers:  # parent-side setup: reduce() needs it
        checker.setup(ctx)
    scans: dict[str, dict[str, tuple[list[Finding], object]]] = {}
    with ProcessPoolExecutor(
        max_workers=jobs, initializer=_pool_init, initargs=(str(ctx.root), check_ids)
    ) as pool:
        for module, result in zip(
            modules, pool.map(_pool_scan, [m.relpath for m in modules])
        ):
            scans[module.relpath] = result
    # Deterministic merge: parent module order, not completion order.
    for checker in checkers:
        facts: list[object] = []
        for module in modules:
            findings, fact = scans[module.relpath][checker.id]
            yield from findings
            facts.append(fact)
        yield from checker.reduce(ctx, facts)


# -- entry points --------------------------------------------------------


def run_lint_report(
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    jobs: int = 1,
    baseline: Optional[Path] = None,
    update_baseline: bool = False,
) -> LintReport:
    """Run the (selected) checkers and return findings plus run metadata.

    Findings are sorted, deduplicated, and suppression-filtered.
    ``select`` limits the run to those ids; ``ignore`` drops ids from
    whatever ``select`` produced; unknown ids raise
    :class:`UnknownCheckError` — a typo in CI must not silently pass.
    ``jobs > 1`` parallelizes map-reduce checkers per file.  With
    ``baseline``, findings matching the baseline's fingerprints are
    suppressed and counted; stale entries surface as ``BASELINE``
    errors.  ``update_baseline`` instead rewrites the baseline to accept
    exactly the current findings (carrying over existing reasons).
    """
    started = time.perf_counter()
    selected = _resolve_ids(select)
    ignored = _resolve_ids(ignore) or set()
    ctx = LintContext(root)
    ran: list[str] = [
        check_id
        for check_id in ALL_CHECKERS
        if (selected is None or check_id in selected) and check_id not in ignored
    ]
    parallel: list[MapReduceChecker] = []
    raw: set[Finding] = set()
    for check_id in ran:
        checker: Checker = ALL_CHECKERS[check_id]()
        if jobs > 1 and checker.parallel and isinstance(checker, MapReduceChecker):
            parallel.append(checker)
        else:
            raw.update(checker.check(ctx))
    if parallel:
        raw.update(_run_parallel(ctx, parallel, jobs))
    findings = sorted(
        finding
        for finding in raw
        if not (
            (module := ctx.module(finding.path)) is not None
            and ctx.is_suppressed(module, finding.line, finding.check_id)
        )
    )
    report = LintReport(
        findings=findings,
        files=len(ctx.modules()),
        checkers=ran,
        jobs=max(1, jobs),
    )
    if baseline is not None:
        _apply_baseline(report, baseline, ctx, update_baseline)
    report.by_check = {}
    for finding in report.findings:
        report.by_check[finding.check_id] = report.by_check.get(finding.check_id, 0) + 1
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _apply_baseline(
    report: LintReport, path: Path, ctx: LintContext, update: bool
) -> None:
    previous: Optional[Baseline] = None
    if path.exists():
        previous = Baseline.load(path)  # BaselineError propagates: CI must fail
    if update:
        Baseline.from_findings(report.findings, previous).save(path)
        report.baseline_suppressed = len(report.findings)
        report.findings = []
        return
    if previous is None:
        raise BaselineError(f"baseline file not found: {path}")
    try:
        relpath = str(path.resolve().relative_to(ctx.root))
    except ValueError:
        relpath = str(path)
    result = previous.apply(report.findings, set(report.checkers), relpath)
    report.findings = result.active
    report.baseline_suppressed = result.suppressed
    report.stale_baseline = result.stale


def run_lint(
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    jobs: int = 1,
    baseline: Optional[Path] = None,
    update_baseline: bool = False,
) -> list[Finding]:
    """Findings-only form of :func:`run_lint_report` (same arguments)."""
    return run_lint_report(
        root,
        select=select,
        ignore=ignore,
        jobs=jobs,
        baseline=baseline,
        update_baseline=update_baseline,
    ).findings


def catalog() -> list[tuple[str, str]]:
    """``(id, description)`` for every registered checker, in catalogue
    order — the source of truth behind ``repro lint --list`` and the
    table in docs/static-analysis.md."""
    return [(check_id, cls.description) for check_id, cls in ALL_CHECKERS.items()]
