"""Forward dataflow over :class:`~repro.lint.flow.cfg.CFG` graphs.

The solver propagates *environments* — mappings from local variable
names to checker-defined facts — through a function's CFG with a
standard worklist iteration until fixpoint.  A :class:`Domain` supplies
the lattice: how two facts join at a control merge, what fact an
expression evaluates to, and how calls act as sources or sanitizers.

Environments join by key union (a fact survives a merge with a branch
that never bound the variable).  For may-style taint this is exactly
right; for evidence domains (SCH002) it is the optimistic choice that
keeps ``if obs: event = ... / if obs: obs.emit(event)`` quiet.
Termination holds because every domain here draws facts from a finite
set (source sites in the function / evidence tags), so environments
only grow toward a finite ceiling.

:class:`TaintDomain` is the shared may-taint instantiation: facts are
frozen sets of :class:`Source` records (label, line, description), and
subclasses override :meth:`TaintDomain.call_source` /
:meth:`TaintDomain.expr_source` / :meth:`TaintDomain.is_sanitizer` to
describe their sources and sanitizers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from .cfg import CFG, Block, Element

Env = dict  # var name -> fact


class Domain:
    """Fact lattice + transfer hooks.  Facts must be hashable; ``None``
    is bottom ("no fact") and is never stored in an environment."""

    # -- lattice --------------------------------------------------------
    def join(self, a: object, b: object) -> Optional[object]:
        raise NotImplementedError

    def join2(self, a: Optional[object], b: Optional[object]) -> Optional[object]:
        if a is None:
            return b
        if b is None:
            return a
        if a == b:
            return a
        return self.join(a, b)

    def join_env(self, into: Env, other: Env) -> bool:
        changed = False
        for name, fact in other.items():
            merged = self.join2(into.get(name), fact)
            if merged is not None and merged != into.get(name):
                into[name] = merged
                changed = True
        return changed

    # -- expression evaluation ------------------------------------------
    def eval(self, expr: Optional[ast.AST], env: Env) -> Optional[object]:
        """Fact of ``expr`` under ``env``.  Conservative structural
        recursion; hook points for calls and literal expressions."""
        if expr is None or isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.NamedExpr):
            fact = self.eval(expr.value, env)
            if isinstance(expr.target, ast.Name):
                self.bind(env, expr.target.id, fact)
            return fact
        if isinstance(expr, ast.Call):
            return self.call_fact(expr, env)
        if isinstance(expr, ast.Attribute):
            return self.attribute_fact(expr, env)
        if isinstance(expr, ast.Subscript):
            return self.join2(self.eval(expr.value, env), self.eval(expr.slice, env))
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test, env)
            return self.join2(self.eval(expr.body, env), self.eval(expr.orelse, env))
        if isinstance(expr, (ast.Lambda,)):
            return self.lambda_fact(expr, env)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return self.comp_fact(expr, env)
        if isinstance(expr, ast.Dict):
            return self.dict_fact(expr, env)
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            return self.sequence_fact(expr, env)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env)
        # BoolOp / BinOp / Compare / UnaryOp / JoinedStr / anything else:
        # join the facts of all child expressions.
        fact: Optional[object] = None
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                fact = self.join2(fact, self.eval(child, env))
        return fact

    def call_fact(self, call: ast.Call, env: Env) -> Optional[object]:
        fact: Optional[object] = None
        if isinstance(call.func, ast.Attribute):
            fact = self.join2(fact, self.eval(call.func.value, env))
        for arg in call.args:
            fact = self.join2(fact, self.eval(arg, env))
        for keyword in call.keywords:
            fact = self.join2(fact, self.eval(keyword.value, env))
        return fact

    def attribute_fact(self, expr: ast.Attribute, env: Env) -> Optional[object]:
        return self.eval(expr.value, env)

    def lambda_fact(self, expr: ast.Lambda, env: Env) -> Optional[object]:
        return None

    def comp_fact(self, expr: ast.AST, env: Env) -> Optional[object]:
        fact: Optional[object] = None
        for gen in expr.generators:  # type: ignore[attr-defined]
            fact = self.join2(fact, self.eval(gen.iter, env))
        return fact

    def dict_fact(self, expr: ast.Dict, env: Env) -> Optional[object]:
        fact: Optional[object] = None
        for key, value in zip(expr.keys, expr.values):
            fact = self.join2(fact, self.eval(key, env))
            fact = self.join2(fact, self.eval(value, env))
        return fact

    def sequence_fact(self, expr: ast.AST, env: Env) -> Optional[object]:
        fact: Optional[object] = None
        for elt in expr.elts:  # type: ignore[attr-defined]
            fact = self.join2(fact, self.eval(elt, env))
        return fact

    def iterate_fact(
        self, iter_fact: Optional[object], iter_expr: ast.AST, env: Env
    ) -> Optional[object]:
        """Fact bound to a ``for`` target given the iterable's fact."""
        return iter_fact

    # -- binding --------------------------------------------------------
    def bind(self, env: Env, name: str, fact: Optional[object]) -> None:
        if fact is None:
            env.pop(name, None)
        else:
            env[name] = fact

    def bind_weak(self, env: Env, name: str, fact: Optional[object]) -> None:
        """Mutation through a subscript: merge, never kill — a container
        holding one tainted element is a tainted container."""
        merged = self.join2(env.get(name), fact)
        if merged is not None:
            env[name] = merged

    def bind_attr_store(self, env: Env, name: str, fact: Optional[object]) -> None:
        """Mutation through an attribute (``obj.field = v``).  Default:
        taint the object like a container.  Domains whose sinks are
        themselves attribute fields (DET002) override this to a no-op —
        otherwise one exempt store (``stats.preprocess_seconds = clock``)
        would launder taint onto every other field of the object."""
        self.bind_weak(env, name, fact)

    def initial_env(self, cfg: CFG) -> Env:
        return {}


def _assign_target(domain: Domain, target: ast.AST, fact: Optional[object], env: Env) -> None:
    if isinstance(target, ast.Name):
        domain.bind(env, target.id, fact)
    elif isinstance(target, ast.Starred):
        _assign_target(domain, target.value, fact, env)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _assign_target(domain, elt, fact, env)
    elif isinstance(target, (ast.Attribute, ast.Subscript)):
        root = target
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name):
            if isinstance(target, ast.Attribute):
                domain.bind_attr_store(env, root.id, fact)
            else:
                domain.bind_weak(env, root.id, fact)


def transfer_element(domain: Domain, element: Element, env: Env) -> None:
    """Apply one element's effect to ``env`` in place."""
    node = element.node
    if element.role == "test":
        domain.eval(node.test, env)  # type: ignore[attr-defined]
        return
    if element.role == "for":
        iter_fact = domain.eval(node.iter, env)  # type: ignore[attr-defined]
        bound = domain.iterate_fact(iter_fact, node.iter, env)  # type: ignore[attr-defined]
        _assign_target(domain, node.target, bound, env)  # type: ignore[attr-defined]
        return
    if element.role == "with":
        for item in node.items:  # type: ignore[attr-defined]
            fact = domain.eval(item.context_expr, env)
            if item.optional_vars is not None:
                _assign_target(domain, item.optional_vars, fact, env)
        return
    if element.role == "except":
        if node.name:  # type: ignore[attr-defined]
            env.pop(node.name, None)  # type: ignore[attr-defined]
        return
    if isinstance(node, ast.Assign):
        fact = domain.eval(node.value, env)
        for target in node.targets:
            _assign_target(domain, target, fact, env)
    elif isinstance(node, ast.AnnAssign):
        if node.value is not None:
            fact = domain.eval(node.value, env)
            _assign_target(domain, node.target, fact, env)
    elif isinstance(node, ast.AugAssign):
        fact = domain.join2(
            domain.eval(node.value, env),
            env.get(node.target.id) if isinstance(node.target, ast.Name) else None,
        )
        _assign_target(domain, node.target, fact, env)
    elif isinstance(node, ast.Expr):
        domain.eval(node.value, env)
    elif isinstance(node, (ast.Return,)):
        if node.value is not None:
            domain.eval(node.value, env)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Name):
                env.pop(target.id, None)
    elif isinstance(node, (ast.Raise, ast.Assert)):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                domain.eval(child, env)
    # Import / Global / Nonlocal / Pass / nested defs: no env effect.


class Solution:
    """Solved block-entry environments plus replay helpers."""

    def __init__(self, cfg: CFG, domain: Domain, entry_envs: list[Env]) -> None:
        self.cfg = cfg
        self.domain = domain
        self.entry_envs = entry_envs

    def iter_elements(self) -> Iterator[tuple[Block, Element, Env]]:
        """Yield every element with the environment *before* it runs,
        re-applying transfers within each block (deterministic order)."""
        for block in self.cfg.blocks:
            env = dict(self.entry_envs[block.index])
            for element in block.elements:
                yield block, element, dict(env)
                transfer_element(self.domain, element, env)

    def env_after(self, block: Block) -> Env:
        env = dict(self.entry_envs[block.index])
        for element in block.elements:
            transfer_element(self.domain, element, env)
        return env


def solve(cfg: CFG, domain: Domain, max_passes: int = 64) -> Solution:
    """Worklist iteration to fixpoint.  ``max_passes`` bounds total
    block visits per block as a belt-and-braces guard against a domain
    with an unbounded lattice; real domains converge in a few passes."""
    envs: list[Env] = [dict() for _ in cfg.blocks]
    envs[cfg.entry] = domain.initial_env(cfg)
    visits = [0] * len(cfg.blocks)
    # Seed every block (entry first): a block must be processed at least
    # once even when its entry environment never changes from {} — its
    # *exit* environment still has to reach its successors.
    work = [cfg.entry] + [b.index for b in cfg.blocks if b.index != cfg.entry]
    queued = set(work)
    while work:
        index = work.pop(0)
        queued.discard(index)
        if visits[index] >= max_passes:
            continue
        visits[index] += 1
        block = cfg.blocks[index]
        env = dict(envs[index])
        for element in block.elements:
            transfer_element(domain, element, env)
        for succ in block.succs:
            if domain.join_env(envs[succ], env) and succ not in queued:
                work.append(succ)
                queued.add(succ)
    return Solution(cfg, domain, envs)


# ---------------------------------------------------------------------------
# Shared may-taint instantiation


@dataclass(frozen=True, order=True)
class Source:
    """One taint origin: a short label, where it was introduced, and a
    human-readable description used in finding messages."""

    label: str
    lineno: int
    text: str


Taint = frozenset  # of Source


class TaintDomain(Domain):
    """May-taint: facts are frozen sets of :class:`Source`, joined by
    union; calls and literal expressions can introduce taint, sanitizer
    calls erase it."""

    def join(self, a: object, b: object) -> object:
        return a | b  # type: ignore[operator]

    # Subclass hooks -----------------------------------------------------
    def call_source(self, call: ast.Call, env: Env) -> Optional[Source]:
        """A Source if this call introduces taint, else None."""
        return None

    def expr_source(self, expr: ast.AST, env: Env) -> Optional[Source]:
        """A Source if this non-call expression introduces taint."""
        return None

    def is_sanitizer(self, call: ast.Call) -> bool:
        return False

    # Wiring -------------------------------------------------------------
    def call_fact(self, call: ast.Call, env: Env) -> Optional[object]:
        if self.is_sanitizer(call):
            for arg in call.args:
                self.eval(arg, env)
            return None
        source = self.call_source(call, env)
        base = super().call_fact(call, env)
        if source is not None:
            return self.join2(base, frozenset((source,)))
        return base

    def eval(self, expr: Optional[ast.AST], env: Env) -> Optional[object]:
        fact = super().eval(expr, env)
        if expr is not None and not isinstance(expr, ast.Call):
            source = self.expr_source(expr, env)
            if source is not None:
                fact = self.join2(fact, frozenset((source,)))
        return fact


def describe_taint(fact: object, limit: int = 2) -> str:
    """Render a taint fact's provenance for a finding message."""
    sources = sorted(fact)  # type: ignore[arg-type]
    parts = [f"{source.text} (line {source.lineno})" for source in sources[:limit]]
    if len(sources) > limit:
        parts.append(f"+{len(sources) - limit} more")
    return ", ".join(parts)
