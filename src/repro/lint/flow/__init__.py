"""Flow analysis for the lint engine: CFGs, call graph, dataflow.

Three layers, each pure-stdlib over :mod:`ast`:

* :mod:`.cfg` — per-function control-flow graphs with loop records and
  short-circuit-aware "guaranteed evaluation" queries;
* :mod:`.callgraph` — a project-wide, name-resolved call graph with
  recursion-cycle (SCC) detection;
* :mod:`.dataflow` — a forward worklist solver over checker-defined
  fact lattices, with a shared may-taint domain.

Checkers obtain cached instances through
:meth:`repro.lint.context.LintContext` accessors (``ctx.cfg(func)`` and
``ctx.call_graph()``) so one lint run builds each graph at most once.
"""

from .callgraph import CallGraph, FunctionInfo
from .cfg import (
    CFG,
    Block,
    Element,
    Loop,
    build_cfg,
    element_guaranteed_exprs,
    guaranteed_subexprs,
)
from .dataflow import (
    Domain,
    Solution,
    Source,
    TaintDomain,
    describe_taint,
    solve,
    transfer_element,
)

__all__ = [
    "CFG",
    "Block",
    "CallGraph",
    "Domain",
    "Element",
    "FunctionInfo",
    "Loop",
    "Solution",
    "Source",
    "TaintDomain",
    "build_cfg",
    "describe_taint",
    "element_guaranteed_exprs",
    "guaranteed_subexprs",
    "solve",
    "transfer_element",
]
