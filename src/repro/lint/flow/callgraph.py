"""A project-wide call graph resolved statically from the module cache.

Functions are keyed by ``(relpath, qualname)``.  Call resolution is
deliberately conservative and name-based — no type inference, just the
handful of binding forms this codebase actually uses:

* ``f(...)``                  -> a module-level function ``f`` in the same
  module, an enclosing-scope nested function, or a ``from m import f``
  import target;
* ``self.m(...)`` / ``cls.m(...)`` -> method ``m`` of the enclosing class;
* ``self.attr.m(...)``        -> method ``m`` of ``ClassName`` when
  ``__init__`` contains ``self.attr = ClassName(...)`` (same module or
  imported);
* ``mod.f(...)``              -> function ``f`` of an imported module alias.

:meth:`CallGraph.resolve_unique` additionally resolves a bare method
name project-wide when exactly one function in the repository bears it.
That fallback is reserved for *positive* evidence (e.g. "this helper
returns a schema-valid event"), never for negative verdicts — a wrong
unique match can only make a checker quieter, not noisier.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Union

from ..context import LintContext, ParsedModule

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]
Key = tuple[str, str]  # (relpath, qualname)


@dataclass
class FunctionInfo:
    """One function definition and its resolution context."""

    key: Key
    module: ParsedModule
    qualname: str
    node: FuncDef
    class_name: Optional[str] = None
    is_generator: bool = False

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class _ModuleScope:
    """Per-module name-resolution tables."""

    functions: dict[str, Key] = field(default_factory=dict)  # top-level name -> key
    methods: dict[str, dict[str, Key]] = field(default_factory=dict)  # class -> name -> key
    # import alias -> dotted module ("repro.obs.metrics") for `import x` /
    # `from pkg import mod`; symbol alias -> (dotted module, symbol) for
    # `from m import f`.
    module_aliases: dict[str, str] = field(default_factory=dict)
    symbol_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    # self.attr -> class name, from `self.attr = ClassName(...)` in __init__.
    attr_types: dict[str, dict[str, str]] = field(default_factory=dict)  # class -> attr -> type


class CallGraph:
    """Function table + edges for one :class:`LintContext`."""

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx
        self.functions: dict[Key, FunctionInfo] = {}
        self._scopes: dict[str, _ModuleScope] = {}
        self._by_name: dict[str, list[Key]] = {}
        self._relpath_by_dotted: dict[str, str] = {}
        for module in ctx.modules():
            self._relpath_by_dotted[module.name] = module.relpath
        for module in ctx.modules():
            self._index_module(module)
        self._edges: Optional[dict[Key, tuple[Key, ...]]] = None

    # -- indexing --------------------------------------------------------
    def _index_module(self, module: ParsedModule) -> None:
        scope = _ModuleScope()
        self._scopes[module.relpath] = scope
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    scope.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(stmt, ast.ImportFrom) and stmt.names[0].name != "*":
                base = self._absolute_module(module, stmt)
                if base is None:
                    continue
                for alias in stmt.names:
                    target = alias.asname or alias.name
                    dotted = f"{base}.{alias.name}"
                    if dotted in self._relpath_by_dotted:
                        scope.module_aliases[target] = dotted
                    else:
                        scope.symbol_imports[target] = (base, alias.name)
        self._walk_defs(module, scope, module.tree, prefix="", class_name=None)

    def _absolute_module(self, module: ParsedModule, stmt: ast.ImportFrom) -> Optional[str]:
        if stmt.level == 0:
            return stmt.module
        parts = module.name.split(".")
        # For a package __init__, `.` refers to the package itself.
        is_package = module.relpath.endswith("__init__.py")
        drop = stmt.level - (1 if is_package else 0)
        if drop > len(parts):
            return None
        base = parts[: len(parts) - drop] if drop else parts
        if stmt.module:
            base = base + stmt.module.split(".")
        return ".".join(base) if base else None

    def _walk_defs(
        self,
        module: ParsedModule,
        scope: _ModuleScope,
        node: ast.AST,
        prefix: str,
        class_name: Optional[str],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                key = (module.relpath, qualname)
                info = FunctionInfo(
                    key=key,
                    module=module,
                    qualname=qualname,
                    node=child,
                    class_name=class_name,
                    is_generator=_is_generator(child),
                )
                self.functions[key] = info
                self._by_name.setdefault(child.name, []).append(key)
                if class_name is None and not prefix.count("."):
                    scope.functions[child.name] = key
                elif class_name is not None and prefix == f"{class_name}.":
                    scope.methods.setdefault(class_name, {})[child.name] = key
                    if child.name == "__init__":
                        self._index_attr_types(scope, class_name, child)
                self._walk_defs(module, scope, child, f"{qualname}.", class_name)
            elif isinstance(child, ast.ClassDef):
                self._walk_defs(
                    module, scope, child, f"{prefix}{child.name}.", child.name
                )
            else:
                self._walk_defs(module, scope, child, prefix, class_name)

    def _index_attr_types(
        self, scope: _ModuleScope, class_name: str, init: FuncDef
    ) -> None:
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
                continue
            ctor = stmt.value.func
            type_name = None
            if isinstance(ctor, ast.Name):
                type_name = ctor.id
            elif isinstance(ctor, ast.Attribute):
                type_name = ctor.attr
            if type_name is None or not type_name[:1].isupper():
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    scope.attr_types.setdefault(class_name, {})[target.attr] = type_name

    # -- resolution ------------------------------------------------------
    def lookup(self, key: Key) -> Optional[FunctionInfo]:
        return self.functions.get(key)

    def module_functions(self, relpath: str) -> list[FunctionInfo]:
        return [info for key, info in sorted(self.functions.items()) if key[0] == relpath]

    def resolve_call(self, caller: FunctionInfo, call: ast.Call) -> Optional[FunctionInfo]:
        """The callee of ``call`` made inside ``caller``, or ``None``."""
        scope = self._scopes[caller.key[0]]
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(caller, scope, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(caller, scope, func)
        return None

    def _resolve_name(
        self, caller: FunctionInfo, scope: _ModuleScope, name: str
    ) -> Optional[FunctionInfo]:
        # Enclosing nested function (closure sibling or own nested def).
        parts = caller.qualname.split(".")
        for depth in range(len(parts), 0, -1):
            nested = (caller.key[0], ".".join(parts[:depth] + [name]))
            if nested in self.functions:
                return self.functions[nested]
        if name in scope.functions:
            return self.functions[scope.functions[name]]
        if name in scope.symbol_imports:
            dotted, symbol = scope.symbol_imports[name]
            return self._module_symbol(dotted, symbol)
        # A class method called unqualified inside its own class body is
        # not a form this codebase uses; stop here.
        return None

    def _resolve_attribute(
        self, caller: FunctionInfo, scope: _ModuleScope, func: ast.Attribute
    ) -> Optional[FunctionInfo]:
        value = func.value
        if isinstance(value, ast.Name):
            if value.id in ("self", "cls") and caller.class_name is not None:
                methods = scope.methods.get(caller.class_name, {})
                if func.attr in methods:
                    return self.functions[methods[func.attr]]
                return None
            if value.id in scope.module_aliases:
                return self._module_symbol(scope.module_aliases[value.id], func.attr)
            if value.id in scope.symbol_imports:
                # `from m import ClassName` then ClassName.method(...)
                dotted, symbol = scope.symbol_imports[value.id]
                return self._class_method(dotted, symbol, func.attr)
            return None
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and caller.class_name is not None
        ):
            # self.attr.m(...) via a typed __init__ assignment.
            attr_types = scope.attr_types.get(caller.class_name, {})
            type_name = attr_types.get(value.attr)
            if type_name is None:
                return None
            return self._class_method_anywhere(caller.key[0], scope, type_name, func.attr)
        return None

    def _module_symbol(self, dotted: str, symbol: str) -> Optional[FunctionInfo]:
        relpath = self._relpath_by_dotted.get(dotted)
        if relpath is None:
            return None
        scope = self._scopes.get(relpath)
        if scope is None:
            return None
        if symbol in scope.functions:
            return self.functions[scope.functions[symbol]]
        return None

    def _class_method(self, dotted: str, class_name: str, method: str) -> Optional[FunctionInfo]:
        relpath = self._relpath_by_dotted.get(dotted)
        if relpath is None:
            return None
        scope = self._scopes.get(relpath)
        if scope is None:
            return None
        key = scope.methods.get(class_name, {}).get(method)
        return self.functions[key] if key else None

    def _class_method_anywhere(
        self, relpath: str, scope: _ModuleScope, class_name: str, method: str
    ) -> Optional[FunctionInfo]:
        key = scope.methods.get(class_name, {}).get(method)
        if key is not None:
            return self.functions[key]
        # The class may be imported: follow the symbol import.
        if class_name in scope.symbol_imports:
            dotted, symbol = scope.symbol_imports[class_name]
            return self._class_method(dotted, symbol, method)
        return None

    def resolve_unique(self, name: str) -> Optional[FunctionInfo]:
        """Project-wide unique-name resolution (positive evidence only)."""
        keys = self._by_name.get(name, [])
        if len(keys) == 1:
            return self.functions[keys[0]]
        return None

    # -- edges / cycles --------------------------------------------------
    def edges(self) -> dict[Key, tuple[Key, ...]]:
        """Resolved call edges for every function, sorted per caller."""
        if self._edges is None:
            out: dict[Key, tuple[Key, ...]] = {}
            from ..context import own_body_walk

            for key in sorted(self.functions):
                caller = self.functions[key]
                seen: set[Key] = set()
                # Own-body walk: a nested def's calls belong to the
                # nested function's row, not the parent's.
                for node in own_body_walk(caller.node):
                    if isinstance(node, ast.Call):
                        callee = self.resolve_call(caller, node)
                        if callee is not None:
                            seen.add(callee.key)
                out[key] = tuple(sorted(seen))
            self._edges = out
        return self._edges

    def sccs(self) -> list[frozenset[Key]]:
        """Strongly connected components of the call graph (iterative
        Tarjan), including self-recursive singletons."""
        edges = self.edges()
        index: dict[Key, int] = {}
        low: dict[Key, int] = {}
        on_stack: set[Key] = set()
        stack: list[Key] = []
        components: list[frozenset[Key]] = []
        counter = [0]

        for root in sorted(self.functions):
            if root in index:
                continue
            work: list[tuple[Key, int]] = [(root, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                succs = edges.get(node, ())
                for offset in range(child_index, len(succs)):
                    succ = succs[offset]
                    if succ not in index:
                        work[-1] = (node, offset + 1)
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if recurse:
                    continue
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    is_cycle = len(component) > 1 or node in edges.get(node, ())
                    if is_cycle:
                        components.append(frozenset(component))
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return components

    def recursive_components(self) -> dict[Key, frozenset[Key]]:
        """Map each function inside a recursion cycle to its component."""
        out: dict[Key, frozenset[Key]] = {}
        for component in self.sccs():
            for key in component:
                out[key] = component
        return out


def _is_generator(func: FuncDef) -> bool:
    """A yield in the function's *own* body (nested defs get their own
    walk; a yield inside a nested function does not count)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False
