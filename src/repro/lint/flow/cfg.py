"""Intraprocedural control-flow graphs over :mod:`ast` functions.

A :class:`CFG` decomposes one function body into basic blocks of
straight-line *elements* connected by control edges.  Branches, loops
(with explicit back-edge bookkeeping in :class:`Loop` records), ``try``
/ ``except`` / ``finally``, ``with``, ``break`` / ``continue`` /
``return`` / ``raise`` are all modeled; nested function and class
definitions are opaque single elements (their bodies are separate CFGs).

Exception modeling is a deliberate over-approximation: every block
created inside a ``try`` body gets an edge to each handler entry, and a
``finally`` suite flows both to the normal continuation and to the
function exit (covering the re-raise/return pass-through).  For the
analyses built on top — may-taint (:mod:`.dataflow`) and must-pass
path checks (BUD002) — extra edges only ever make the verdict more
conservative.

Boolean short-circuit lives at the *element* level, not the edge level:
:func:`guaranteed_subexprs` enumerates the sub-expressions an element is
certain to evaluate, so ``cond and obj.tick()`` never counts as a
guaranteed budget poll while ``obj.tick()`` does.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Element roles: how the transfer functions should read ``node``.
#: ``stmt``   — a simple statement, evaluated wholesale;
#: ``test``   — an ``If``/``While`` whose *test expression only* runs here;
#: ``for``    — a ``For`` whose iterable is evaluated and target bound;
#: ``with``   — a ``With`` whose context managers are entered here;
#: ``except`` — an ``ExceptHandler`` binding its exception name.
ROLES = ("stmt", "test", "for", "with", "except")


@dataclass
class Element:
    """One unit of straight-line execution inside a basic block."""

    node: ast.AST
    role: str = "stmt"

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class Block:
    """A basic block: elements executed in order, then a branch."""

    index: int
    elements: list[Element] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def first_line(self) -> int:
        for element in self.elements:
            if element.lineno:
                return element.lineno
        return 0


@dataclass
class Loop:
    """One syntactic loop: its header block, body blocks, back edges."""

    node: Union[ast.For, ast.While, ast.AsyncFor]
    header: int
    body: set[int] = field(default_factory=set)
    back_sources: set[int] = field(default_factory=set)
    after: int = -1


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: FunctionNode) -> None:
        builder = _Builder(func)
        self.func = func
        self.blocks: list[Block] = builder.blocks
        self.entry: int = builder.entry
        self.exit: int = builder.exit
        self.loops: list[Loop] = builder.loops

    def block(self, index: int) -> Block:
        return self.blocks[index]

    def elements(self) -> Iterator[tuple[Block, Element]]:
        """Every (block, element) pair in block order — a deterministic
        walk for checkers that scan elements with their solved facts."""
        for block in self.blocks:
            for element in block.elements:
                yield block, element

    def reachable(self) -> set[int]:
        """Block indices reachable from the entry."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen


class _Builder:
    """Single-pass recursive CFG construction."""

    def __init__(self, func: FunctionNode) -> None:
        self.blocks: list[Block] = []
        entry = self._new_block()
        self.entry = entry.index
        self.exit = self._new_block().index
        self.loops: list[Loop] = []
        # (header index, after index, Loop record) innermost-last.
        self._loop_stack: list[tuple[int, int, Loop]] = []
        # Handler entry blocks of every enclosing try, innermost-last.
        self._handler_stack: list[list[int]] = []
        self._current: Optional[Block] = entry
        self._build_body(func.body)
        if self._current is not None:
            self._edge(self._current.index, self.exit)
        self._wire_preds()
        self._record_loop_members()

    # -- plumbing -------------------------------------------------------
    def _new_block(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def _edge(self, src: int, dst: int) -> None:
        succs = self.blocks[src].succs
        if dst not in succs:
            succs.append(dst)

    def _start_block(self, *preds: int) -> Block:
        block = self._new_block()
        for pred in preds:
            self._edge(pred, block.index)
        return block

    def _append(self, node: ast.AST, role: str = "stmt") -> None:
        if self._current is None:
            # Unreachable code after a terminator still gets a block so
            # every statement is represented (with no predecessors).
            self._current = self._new_block()
        self._current.elements.append(Element(node, role))
        # Any element inside a try body may raise into each handler.
        for handlers in self._handler_stack:
            for handler in handlers:
                self._edge(self._current.index, handler)

    def _terminate(self, *targets: int) -> None:
        assert self._current is not None
        for target in targets:
            self._edge(self._current.index, target)
        self._current = None

    # -- statement dispatch ---------------------------------------------
    def _build_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._build_stmt(stmt)

    def _build_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.If,)):
            self._build_if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._build_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._build_for(stmt)
        elif isinstance(stmt, (ast.Try,)):
            self._build_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._append(stmt, role="with")
            self._build_body(stmt.body)
        elif isinstance(stmt, ast.Return):
            self._append(stmt)
            self._terminate(self.exit)
        elif isinstance(stmt, ast.Raise):
            self._append(stmt)
            targets = [self.exit]
            if self._handler_stack:
                targets = list(self._handler_stack[-1])
            self._terminate(*targets)
        elif isinstance(stmt, ast.Break):
            self._append(stmt)
            if self._loop_stack:
                self._terminate(self._loop_stack[-1][1])
            else:  # malformed source; keep the CFG well-formed
                self._terminate(self.exit)
        elif isinstance(stmt, ast.Continue):
            self._append(stmt)
            if self._loop_stack:
                header = self._loop_stack[-1][0]
                self._loop_stack[-1][2].back_sources.add(self._current_index())
                self._terminate(header)
            else:
                self._terminate(self.exit)
        else:
            # Simple statements — including nested FunctionDef/ClassDef,
            # which are opaque name bindings at this level.
            self._append(stmt)

    def _current_index(self) -> int:
        assert self._current is not None
        return self._current.index

    # -- structured statements ------------------------------------------
    def _build_if(self, stmt: ast.If) -> None:
        self._append(stmt, role="test")
        cond = self._current_index()
        self._current = None
        then_block = self._start_block(cond)
        self._current = then_block
        self._build_body(stmt.body)
        then_end = self._current
        else_end: Optional[Block] = None
        if stmt.orelse:
            self._current = self._start_block(cond)
            self._build_body(stmt.orelse)
            else_end = self._current
        join = self._new_block()
        if then_end is not None:
            self._edge(then_end.index, join.index)
        if stmt.orelse:
            if else_end is not None:
                self._edge(else_end.index, join.index)
        else:
            self._edge(cond, join.index)  # false edge falls through
        self._current = join

    def _build_while(self, stmt: ast.While) -> None:
        assert self._current is not None
        header = self._start_block(self._current_index())
        self._current = header
        self._append(stmt, role="test")
        after = self._new_block()
        loop = Loop(node=stmt, header=header.index, after=after.index)
        self.loops.append(loop)
        body = self._start_block(header.index)
        self._loop_stack.append((header.index, after.index, loop))
        self._current = body
        self._build_body(stmt.body)
        if self._current is not None:
            loop.back_sources.add(self._current_index())
            self._edge(self._current_index(), header.index)
        self._loop_stack.pop()
        if stmt.orelse:
            self._current = self._start_block(header.index)
            self._build_body(stmt.orelse)
            if self._current is not None:
                self._edge(self._current_index(), after.index)
        else:
            self._edge(header.index, after.index)
        self._current = after

    def _build_for(self, stmt: Union[ast.For, ast.AsyncFor]) -> None:
        assert self._current is not None
        header = self._start_block(self._current_index())
        self._current = header
        self._append(stmt, role="for")
        after = self._new_block()
        loop = Loop(node=stmt, header=header.index, after=after.index)
        self.loops.append(loop)
        body = self._start_block(header.index)
        self._loop_stack.append((header.index, after.index, loop))
        self._current = body
        self._build_body(stmt.body)
        if self._current is not None:
            loop.back_sources.add(self._current_index())
            self._edge(self._current_index(), header.index)
        self._loop_stack.pop()
        if stmt.orelse:
            self._current = self._start_block(header.index)
            self._build_body(stmt.orelse)
            if self._current is not None:
                self._edge(self._current_index(), after.index)
        else:
            self._edge(header.index, after.index)
        self._current = after

    def _build_try(self, stmt: ast.Try) -> None:
        assert self._current is not None
        before = self._current_index()
        handler_entries: list[int] = []
        handler_blocks: list[Block] = []
        for handler in stmt.handlers:
            block = self._new_block()
            block.elements.append(Element(handler, role="except"))
            handler_entries.append(block.index)
            handler_blocks.append(block)
        # Entering the try at all can raise before the first statement
        # completes (conservative, keeps handlers reachable even for an
        # empty-ish body).
        for entry in handler_entries:
            self._edge(before, entry)
        if handler_entries:
            self._handler_stack.append(handler_entries)
        body = self._start_block(before)
        self._current = body
        self._build_body(stmt.body)
        body_end = self._current
        if handler_entries:
            self._handler_stack.pop()
        # else-suite runs after a body that completed without raising.
        if stmt.orelse and body_end is not None:
            self._current = body_end
            self._build_body(stmt.orelse)
            body_end = self._current
        handler_ends: list[Block] = []
        for handler, block in zip(stmt.handlers, handler_blocks):
            self._current = block
            self._build_body(handler.body)
            if self._current is not None:
                handler_ends.append(self._current)
        if stmt.finalbody:
            final = self._new_block()
            if body_end is not None:
                self._edge(body_end.index, final.index)
            for end in handler_ends:
                self._edge(end.index, final.index)
            # A raise that no handler catches (or a bare try/finally)
            # still runs the finally suite on its way out.
            for entry in handler_entries or [body.index]:
                self._edge(entry, final.index)
            self._current = final
            self._build_body(stmt.finalbody)
            if self._current is not None:
                # The finally suite continues normally *and* forwards
                # pending returns/raises to the function exit.
                self._edge(self._current_index(), self.exit)
                after = self._start_block(self._current_index())
            else:
                after = self._new_block()
            self._current = after
        else:
            after = self._new_block()
            if body_end is not None:
                self._edge(body_end.index, after.index)
            for end in handler_ends:
                self._edge(end.index, after.index)
            self._current = after

    # -- post-passes ----------------------------------------------------
    def _wire_preds(self) -> None:
        for block in self.blocks:
            for succ in block.succs:
                preds = self.blocks[succ].preds
                if block.index not in preds:
                    preds.append(block.index)

    def _record_loop_members(self) -> None:
        """Body membership per loop: blocks on a path header -> header
        (found by walking back from the back-edge sources)."""
        for loop in self.loops:
            members: set[int] = set()
            stack = list(loop.back_sources)
            while stack:
                index = stack.pop()
                if index in members or index == loop.header:
                    continue
                members.add(index)
                stack.extend(self.blocks[index].preds)
            loop.body = members


def build_cfg(func: FunctionNode) -> CFG:
    """Build (and return) the CFG of one function definition."""
    return CFG(func)


def guaranteed_subexprs(node: ast.AST) -> Iterator[ast.AST]:
    """Sub-expressions *certain* to evaluate when ``node`` does.

    Skips the conditionally-evaluated regions: every operand of a
    boolean ``and``/``or`` after the first, both arms of a ternary
    ``IfExp``, comprehension element/condition expressions (they run
    zero or more times), and lambda bodies (they run when called, not
    here).  Used for must-style checks: a ``.tick()`` under a
    short-circuit is not a guaranteed budget poll.
    """
    yield node
    if isinstance(node, ast.BoolOp):
        yield from guaranteed_subexprs(node.values[0])
        return
    if isinstance(node, ast.IfExp):
        yield from guaranteed_subexprs(node.test)
        return
    if isinstance(node, ast.Lambda):
        return
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        if node.generators:
            yield from guaranteed_subexprs(node.generators[0].iter)
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    for child in ast.iter_child_nodes(node):
        yield from guaranteed_subexprs(child)


def element_guaranteed_exprs(element: Element) -> Iterator[ast.AST]:
    """The guaranteed sub-expressions of one CFG element, respecting its
    role (an ``If`` element only evaluates its test here, a ``For``
    element only its iterable, ...)."""
    node = element.node
    if element.role == "test":
        yield from guaranteed_subexprs(node.test)  # type: ignore[attr-defined]
    elif element.role == "for":
        yield from guaranteed_subexprs(node.iter)  # type: ignore[attr-defined]
    elif element.role == "with":
        for item in node.items:  # type: ignore[attr-defined]
            yield from guaranteed_subexprs(item.context_expr)
    elif element.role == "except":
        return
    else:
        yield from guaranteed_subexprs(node)
