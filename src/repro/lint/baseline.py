"""Baseline suppression: accepted findings, fingerprinted stably.

A baseline file lets a new checker land *gating-on* with existing
findings grandfathered instead of blocking the merge.  Each entry names
the checker id, the file, a content fingerprint, and a human-written
``reason`` — the justification is part of the record, reviewed like
code.

Fingerprints are line-number independent on purpose: a baseline full of
line numbers would go stale on every unrelated edit above the finding.
The fingerprint hashes ``check_id : path : normalized-message``, where
normalization strips digit runs (line references inside messages, path
counters) so the same finding re-reported a few lines lower still
matches.  The trade-off is deliberate: two *identical* findings in one
file share a fingerprint and are suppressed together — acceptable for a
grandfather list, which should be shrinking anyway.

Stale entries — entries matching no current finding of a checker that
actually ran — are reported as errors (check id ``BASELINE``): a fixed
finding must leave the baseline the same week it leaves the code.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from .findings import Finding

#: Tag identifying a baseline document (schema'd, versioned).
BASELINE_SCHEMA = "repro.lint.baseline"
BASELINE_VERSION = 1

#: Check id used for baseline bookkeeping errors (stale entries,
#: unreadable files).  Not a registered checker: it has no scan phase.
BASELINE_CHECK_ID = "BASELINE"

_DIGITS = re.compile(r"\d+")


def fingerprint(finding: Finding) -> str:
    """Stable content fingerprint of one finding (no line numbers)."""
    normalized = _DIGITS.sub("#", finding.message)
    payload = f"{finding.check_id}:{finding.path}:{normalized}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    check: str
    path: str
    fingerprint: str
    reason: str = ""


class BaselineError(ValueError):
    """The baseline file exists but cannot be parsed."""


@dataclass
class BaselineResult:
    """Outcome of applying a baseline to a run's findings."""

    active: list[Finding]  # findings NOT suppressed (including stale errors)
    suppressed: int  # findings matched by baseline entries
    stale: int  # entries that matched nothing


class Baseline:
    """An ordered set of accepted-finding entries."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    # -- I/O -------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
            raise BaselineError(
                f"{path} is not a lint baseline (missing schema tag "
                f"{BASELINE_SCHEMA!r})"
            )
        entries = []
        for raw in payload.get("entries", []):
            if not isinstance(raw, dict):
                raise BaselineError(f"{path}: malformed entry {raw!r}")
            try:
                entries.append(
                    BaselineEntry(
                        check=raw["check"],
                        path=raw["path"],
                        fingerprint=raw["fingerprint"],
                        reason=raw.get("reason", ""),
                    )
                )
            except KeyError as exc:
                raise BaselineError(f"{path}: entry missing field {exc}") from exc
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "schema": BASELINE_SCHEMA,
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "check": entry.check,
                    "path": entry.path,
                    "fingerprint": entry.fingerprint,
                    "reason": entry.reason,
                }
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.check, e.fingerprint)
                )
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # -- application -----------------------------------------------------
    def apply(
        self,
        findings: list[Finding],
        ran_ids: set[str],
        baseline_relpath: str,
    ) -> BaselineResult:
        """Split findings into suppressed/active and flag stale entries.

        An entry is *stale* only when its checker is among ``ran_ids``
        (a ``--select`` run must not misread out-of-scope entries as
        fixed) and no current finding matches its fingerprint.
        """
        matched: dict[BaselineEntry, int] = {entry: 0 for entry in self.entries}
        by_key: dict[tuple[str, str, str], BaselineEntry] = {
            (entry.check, entry.path, entry.fingerprint): entry
            for entry in self.entries
        }
        active: list[Finding] = []
        suppressed = 0
        for finding in findings:
            entry = by_key.get((finding.check_id, finding.path, fingerprint(finding)))
            if entry is not None:
                matched[entry] += 1
                suppressed += 1
            else:
                active.append(finding)
        stale = 0
        for entry in self.entries:
            if entry.check not in ran_ids or matched[entry]:
                continue
            stale += 1
            active.append(
                Finding(
                    path=baseline_relpath,
                    line=0,
                    check_id=BASELINE_CHECK_ID,
                    severity="error",
                    message=(
                        f"stale baseline entry: {entry.check} at {entry.path} "
                        f"(fingerprint {entry.fingerprint}) matches no current "
                        "finding — remove the entry (or re-run with "
                        "--update-baseline)"
                    ),
                )
            )
        return BaselineResult(active=sorted(active), suppressed=suppressed, stale=stale)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], previous: Optional["Baseline"] = None
    ) -> "Baseline":
        """A baseline accepting exactly ``findings``, preserving the
        ``reason`` of entries carried over from ``previous``."""
        reasons: dict[tuple[str, str, str], str] = {}
        if previous is not None:
            for entry in previous.entries:
                reasons[(entry.check, entry.path, entry.fingerprint)] = entry.reason
        entries: dict[tuple[str, str, str], BaselineEntry] = {}
        for finding in findings:
            key = (finding.check_id, finding.path, fingerprint(finding))
            entries[key] = BaselineEntry(
                check=key[0],
                path=key[1],
                fingerprint=key[2],
                reason=reasons.get(key, "TODO: justify this accepted finding"),
            )
        return cls(entries.values())
