"""Structured lint findings and their text/JSON renderings.

A :class:`Finding` is one violation of a codebase invariant, anchored to
a repository-relative path and line so editors and CI logs can jump to
it.  Findings order by location (then check id) so output is stable
across runs and dict-iteration orders — the linter holds itself to the
determinism bar it enforces (DET001).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation.

    Attributes
    ----------
    path:
        Repository-relative file path (``src/repro/...``, ``docs/...``).
    line:
        1-based line number the finding anchors to (0 for whole-file
        findings such as a missing anchor module).
    check_id:
        The checker's stable identifier (``SCH001``, ``DET001``, ...).
    severity:
        ``"error"`` or ``"warning"``; both fail the build — the split
        exists so downstream tooling can triage.
    message:
        Human-readable description of the violation and the fix.
    """

    path: str
    line: int
    check_id: str
    severity: str
    message: str

    def render(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: {self.check_id} [{self.severity}] {self.message}"


def render_text(findings: list[Finding]) -> str:
    """The ``--format text`` report: one line per finding plus a tally."""
    if not findings:
        return "repro lint: no findings"
    lines = [finding.render() for finding in findings]
    by_check: dict[str, int] = {}
    for finding in findings:
        by_check[finding.check_id] = by_check.get(finding.check_id, 0) + 1
    tally = ", ".join(f"{check}={count}" for check, count in sorted(by_check.items()))
    lines.append(f"repro lint: {len(findings)} finding(s) ({tally})")
    return "\n".join(lines)


#: Tag + version of the ``--format json`` report document, so downstream
#: tooling (scripts/check_metrics_schema.py) can route files by content.
LINT_SCHEMA = "repro.lint"
LINT_VERSION = 1


def report_document(report) -> dict:
    """The ``--format json`` payload for a :class:`LintReport`: a tagged,
    versioned document — findings plus the run summary, machine-checkable
    by :func:`validate_lint_report`."""
    return {
        "schema": LINT_SCHEMA,
        "version": LINT_VERSION,
        "findings": [asdict(finding) for finding in report.findings],
        "summary": {
            "files": report.files,
            "findings": len(report.findings),
            "checkers": list(report.checkers),
            "by_check": dict(report.by_check),
            "baseline_suppressed": report.baseline_suppressed,
            "stale_baseline": report.stale_baseline,
            "elapsed_seconds": report.elapsed_seconds,
            "jobs": report.jobs,
        },
    }


def validate_lint_report(payload: object) -> list[str]:
    """Structural problems with a ``--format json`` document ([] = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"lint report must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != LINT_SCHEMA:
        problems.append(f"schema tag is {payload.get('schema')!r}, want {LINT_SCHEMA!r}")
    if payload.get("version") != LINT_VERSION:
        problems.append(f"version is {payload.get('version')!r}, want {LINT_VERSION}")
    findings = payload.get("findings")
    if not isinstance(findings, list):
        problems.append("findings must be an array")
        findings = []
    for position, raw in enumerate(findings):
        if not isinstance(raw, dict):
            problems.append(f"findings[{position}] is not an object")
            continue
        for field_name, kind in (
            ("path", str),
            ("line", int),
            ("check_id", str),
            ("severity", str),
            ("message", str),
        ):
            if not isinstance(raw.get(field_name), kind):
                problems.append(
                    f"findings[{position}].{field_name} must be {kind.__name__}"
                )
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        problems.append("summary must be an object")
    else:
        for field_name, kind in (
            ("files", int),
            ("findings", int),
            ("checkers", list),
            ("by_check", dict),
            ("baseline_suppressed", int),
            ("stale_baseline", int),
            ("elapsed_seconds", (int, float)),
            ("jobs", int),
        ):
            if not isinstance(summary.get(field_name), kind):
                want = kind.__name__ if isinstance(kind, type) else "number"
                problems.append(f"summary.{field_name} must be {want}")
        if isinstance(summary.get("findings"), int) and isinstance(findings, list):
            if summary["findings"] != len(findings):
                problems.append(
                    f"summary.findings={summary['findings']} but the array has "
                    f"{len(findings)}"
                )
    return problems


def render_json(report) -> str:
    """The ``--format json`` report, rendered (see :func:`report_document`)."""
    return json.dumps(report_document(report), indent=2)
