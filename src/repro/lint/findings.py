"""Structured lint findings and their text/JSON renderings.

A :class:`Finding` is one violation of a codebase invariant, anchored to
a repository-relative path and line so editors and CI logs can jump to
it.  Findings order by location (then check id) so output is stable
across runs and dict-iteration orders — the linter holds itself to the
determinism bar it enforces (DET001).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation.

    Attributes
    ----------
    path:
        Repository-relative file path (``src/repro/...``, ``docs/...``).
    line:
        1-based line number the finding anchors to (0 for whole-file
        findings such as a missing anchor module).
    check_id:
        The checker's stable identifier (``SCH001``, ``DET001``, ...).
    severity:
        ``"error"`` or ``"warning"``; both fail the build — the split
        exists so downstream tooling can triage.
    message:
        Human-readable description of the violation and the fix.
    """

    path: str
    line: int
    check_id: str
    severity: str
    message: str

    def render(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: {self.check_id} [{self.severity}] {self.message}"


def render_text(findings: list[Finding]) -> str:
    """The ``--format text`` report: one line per finding plus a tally."""
    if not findings:
        return "repro lint: no findings"
    lines = [finding.render() for finding in findings]
    by_check: dict[str, int] = {}
    for finding in findings:
        by_check[finding.check_id] = by_check.get(finding.check_id, 0) + 1
    tally = ", ".join(f"{check}={count}" for check, count in sorted(by_check.items()))
    lines.append(f"repro lint: {len(findings)} finding(s) ({tally})")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """The ``--format json`` report: a stable, machine-readable array."""
    return json.dumps([asdict(finding) for finding in findings], indent=2)
