"""The pluggable ``Checker`` base and its registry.

A checker is one invariant with a stable id.  Adding a new one is three
steps (docs/static-analysis.md walks through an example):

1. subclass :class:`Checker` with a unique ``id`` and a ``describe()``;
2. implement ``check(ctx)`` yielding :class:`~repro.lint.Finding`
   records (the engine sorts, deduplicates and applies suppressions);
3. decorate the class with :func:`register` and import the module from
   ``repro.lint.checkers`` so the registry sees it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Type

from .context import LintContext
from .findings import Finding

#: Registry of all known checkers, keyed by check id, in registration
#: order (the catalogue order used by ``repro lint --list`` and docs).
ALL_CHECKERS: dict[str, Type["Checker"]] = {}


class Checker(ABC):
    """One statically-enforced codebase invariant."""

    #: Stable identifier (``SCH001``): three-letter family + number.
    id: str = ""
    #: One-line summary shown by ``repro lint --list`` and in docs.
    description: str = ""
    #: Whether the engine may fan this checker's per-module scans out to
    #: worker processes (``--jobs``).  Map/reduce checkers set this.
    parallel: bool = False

    @abstractmethod
    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Yield findings for every violation under ``ctx.root``."""

    # Convenience for uniform finding construction.
    def finding(self, path: str, line: int, message: str, severity: str = "error") -> Finding:
        return Finding(
            path=path, line=line, check_id=self.id, severity=severity, message=message
        )


class MapReduceChecker(Checker):
    """A checker whose work decomposes per module plus a global pass.

    Subclasses implement :meth:`scan_module` (pure per-module work whose
    findings and *facts* are picklable, so the engine can fan modules out
    to worker processes under ``--jobs``) and optionally :meth:`reduce`
    (a global pass over the collected facts, run in the parent — dead
    sweeps, cross-module tallies).  :meth:`setup` runs once per process
    before the first scan for shared-state initialization.

    The serial :meth:`check` path composes the same three hooks, so both
    execution modes produce identical findings by construction.
    """

    parallel = True

    def setup(self, ctx: LintContext) -> None:
        """Once-per-process initialization (anchor extraction, graphs)."""

    @abstractmethod
    def scan_module(self, ctx: LintContext, module) -> tuple[list[Finding], object]:
        """Findings anchored to ``module`` plus a picklable fact object
        (or ``None``) for :meth:`reduce`."""

    def reduce(self, ctx: LintContext, facts: list[object]) -> Iterable[Finding]:
        """Global findings from the per-module facts, given in sorted
        module order.  Default: none."""
        return ()

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        self.setup(ctx)
        facts: list[object] = []
        for module in ctx.modules():
            module_findings, fact = self.scan_module(ctx, module)
            yield from module_findings
            facts.append(fact)
        yield from self.reduce(ctx, facts)


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to :data:`ALL_CHECKERS`."""
    if not cls.id:
        raise ValueError(f"{cls.__name__} has no check id")
    if cls.id in ALL_CHECKERS:
        raise ValueError(f"duplicate check id {cls.id!r}")
    ALL_CHECKERS[cls.id] = cls
    return cls
