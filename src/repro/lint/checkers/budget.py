"""BUD001 — every backtracking recursion must poll its budget.

The resilience layer (docs/robustness.md) only bounds a search if every
recursive step ticks the ``Deadline``/``Budget`` governor.  A backtracker
that forgets ``deadline.tick()`` runs unbounded — exactly the class of
bug that only shows up under production load, never in unit tests with
friendly inputs.

What counts as a backtracking function, statically: a function that
participates in a recursion cycle (self-recursion included; cycles are
resolved by name within one module, which is how every engine in this
codebase is written) where some cycle member advances the paper's cost
accounting — ``<obj>.recursive_calls += 1`` or
``<obj>.embeddings_found += 1`` with a literal 1.  The constant matters:
aggregation code (``stats.recursive_calls += sub.recursive_calls``) sums
variables and is deliberately not matched.  Every function in such a
cycle must directly contain a zero-argument ``.tick()`` call (the
budget/deadline surface; ``progress.tick(calls, depth)`` takes arguments
and does not satisfy the check), so every recursive entry passes a
budget poll.  Independently, any function that increments
``recursive_calls`` by 1 must tick — counting a search step and not
metering it is the same bug in iterative form.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import MapReduceChecker, register
from ..context import LintContext
from ..findings import Finding
from ..context import call_name, iter_functions, own_body_walk

#: Repository-relative path prefixes/files holding search engines.
_SCOPE = (
    "src/repro/core/backtrack.py",
    "src/repro/baselines/",
    "src/repro/extensions/boost.py",
    "src/repro/directed/matcher.py",
    "src/repro/general/",
)


def _increments_cost_counter(func: ast.FunctionDef) -> bool:
    for node in own_body_walk(func):
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Attribute)
            and node.target.attr in ("recursive_calls", "embeddings_found")
            and isinstance(node.value, ast.Constant)
            and node.value.value == 1
        ):
            return True
    return False


def _has_budget_tick(func: ast.FunctionDef) -> bool:
    for node in own_body_walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "tick"
            and not node.args
            and not node.keywords
        ):
            return True
    return False


@register
class BudgetCoverageChecker(MapReduceChecker):
    id = "BUD001"
    description = (
        "every backtracking recursion cycle that counts search steps must "
        "poll the Deadline/Budget via a zero-argument .tick() in each member"
    )

    def scan_module(self, ctx: LintContext, module) -> tuple[list[Finding], object]:
        return list(self._scan(module)), None

    def _scan(self, module) -> Iterable[Finding]:
        if not module.relpath.startswith(_SCOPE):
            return
        functions = dict(iter_functions(module.tree))
        if not functions:
            return
        # Name-based call graph restricted to names defined here.
        short_names = {qual.rsplit(".", 1)[-1]: qual for qual in functions}
        edges: dict[str, set[str]] = {qual: set() for qual in functions}
        for qual, func in functions.items():
            for node in own_body_walk(func):
                if isinstance(node, ast.Call):
                    name = call_name(node)
                    if name in short_names:
                        edges[qual].add(short_names[name])

        reachable = {qual: self._reachable(qual, edges) for qual in functions}
        in_cycle = {qual for qual in functions if qual in reachable[qual]}

        flagged: set[str] = set()
        for qual in sorted(in_cycle):
            cycle = {
                other
                for other in in_cycle
                if other in reachable[qual] and qual in reachable[other]
            }
            if not any(_increments_cost_counter(functions[o]) for o in cycle):
                continue  # helper recursion (tree walks, renderers)
            for member in sorted(cycle):
                if member in flagged or _has_budget_tick(functions[member]):
                    continue
                flagged.add(member)
                yield self.finding(
                    module.relpath,
                    functions[member].lineno,
                    f"recursive backtracking function {member!r} never polls "
                    "its budget: add a deadline.tick() on the recursion path",
                )
        # Iterative form: counting a search step without metering it.
        for qual, func in sorted(functions.items()):
            if qual in flagged or qual in in_cycle:
                continue
            if _increments_cost_counter(func) and not _has_budget_tick(func):
                if self._counts_recursive_calls(func):
                    yield self.finding(
                        module.relpath,
                        func.lineno,
                        f"function {qual!r} increments recursive_calls but "
                        "never polls a budget: add a deadline.tick()",
                    )

    @staticmethod
    def _counts_recursive_calls(func: ast.FunctionDef) -> bool:
        for node in own_body_walk(func):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
                and node.target.attr == "recursive_calls"
                and isinstance(node.value, ast.Constant)
                and node.value.value == 1
            ):
                return True
        return False

    @staticmethod
    def _reachable(start: str, edges: dict[str, set[str]]) -> set[str]:
        seen: set[str] = set()
        stack = list(edges[start])
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(edges[qual])
        return seen
