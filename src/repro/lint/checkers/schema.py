"""SCH001 — the event schema and the code that emits events must agree.

The observability layer's comparability story (docs/observability.md)
rests on every event reaching a sink being valid against
``repro.obs.schema.EVENT_SCHEMAS`` and every counter being one of the
slots in ``repro.obs.metrics.COUNTERS``.  Runtime validation only covers
the events a given test run happens to emit; this checker closes the gap
at the source level, in both directions:

- every ``{"event": "<name>", ...}`` literal in the package names a
  schema'd event, and its constant keys are fields that event allows;
- every schema entry has at least one emission site (dead schema);
- every ``prune_*``-family counter increment targets a declared slot,
  and every declared slot (global and per-vertex) is incremented
  somewhere outside ``repro.obs`` (dead counter);
- every constant phase name passed to ``record_span``/``span`` is in
  ``PHASES``, and every declared phase is recorded somewhere.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import MapReduceChecker, register
from ..context import LintContext
from ..findings import Finding

#: Counter attribute names that must be declared in ``COUNTERS`` even
#: when they do not carry the ``prune_`` prefix.
_BARE_COUNTER_NAMES = frozenset(
    {
        "fs_cuts",
        "candidates_examined",
        "children_entered",
        "cache_hit",
        "cache_miss",
        "cache_eviction",
        "cache_invalidation",
        "resumes",
    }
)

#: Fields every event implicitly carries: the sink adds ``ts``, and a
#: bound :class:`repro.obs.TraceContext` stamps the trace triple.
_IMPLICIT_FIELDS = frozenset({"event", "ts", "trace_id", "span_id", "parent_span_id"})


@register
class SchemaEmissionChecker(MapReduceChecker):
    id = "SCH001"
    description = (
        "event literals, counter increments and phase names must match the "
        "repro.obs schema/catalogues, with no dead schema entries"
    )

    def setup(self, ctx: LintContext) -> None:
        self._schemas = ctx.event_schemas()
        self._counters = ctx.counters()
        self._vertex_counters = ctx.vertex_counters() or {}
        self._phases = ctx.phases()
        self._anchors_ok = not (
            self._schemas is None or self._counters is None or self._phases is None
        )

    def scan_module(self, ctx: LintContext, module) -> tuple[list[Finding], object]:
        """Per-module pass: literal/increment/phase checks, plus the
        ``seen_*`` name sets as picklable facts for the dead sweep."""
        if not self._anchors_ok:
            return [], None
        seen_events: set[str] = set()
        seen_counters: set[str] = set()
        seen_vertex: set[str] = set()
        seen_phases: set[str] = set()
        findings: list[Finding] = []
        in_obs = module.relpath.startswith("src/repro/obs/")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                findings.extend(
                    self._check_event_literal(module, node, self._schemas, seen_events)
                )
            elif isinstance(node, ast.AugAssign):
                findings.extend(
                    self._check_counter_increment(
                        module,
                        node,
                        self._counters,
                        self._vertex_counters,
                        seen_counters if not in_obs else set(),
                        seen_vertex if not in_obs else set(),
                    )
                )
            elif isinstance(node, ast.Call):
                findings.extend(
                    self._check_phase_name(module, node, self._phases, seen_phases)
                )
        return findings, (seen_events, seen_counters, seen_vertex, seen_phases)

    def reduce(self, ctx: LintContext, facts: list[object]) -> Iterable[Finding]:
        """Dead-definition sweep: every declared event/counter/phase
        needs at least one source-level use site across all modules."""
        if not self._anchors_ok:
            yield self.finding(
                "src/repro/obs/schema.py",
                0,
                "anchor definitions missing: could not extract EVENT_SCHEMAS "
                "from repro.obs.schema or COUNTERS/PHASES from repro.obs.metrics",
            )
            return
        seen_events: set[str] = set()
        seen_counters: set[str] = set()
        seen_vertex: set[str] = set()
        seen_phases: set[str] = set()
        for fact in facts:
            if fact is None:
                continue
            events, counters, vertex, phases = fact
            seen_events |= events
            seen_counters |= counters
            seen_vertex |= vertex
            seen_phases |= phases
        schemas = self._schemas
        counters = self._counters
        vertex_counters = self._vertex_counters
        phases = self._phases
        for event, (lineno, _required, _optional) in sorted(schemas.items()):
            if event not in seen_events:
                yield self.finding(
                    "src/repro/obs/schema.py",
                    lineno,
                    f"dead schema entry: event {event!r} has no emission site "
                    "in src/repro (delete it or emit it)",
                )
        for counter, lineno in sorted(counters.items()):
            if counter not in seen_counters:
                yield self.finding(
                    "src/repro/obs/metrics.py",
                    lineno,
                    f"dead counter slot: {counter!r} is declared in COUNTERS but "
                    "never incremented outside repro.obs",
                )
        for dimension, lineno in sorted(vertex_counters.items()):
            if dimension not in seen_vertex:
                yield self.finding(
                    "src/repro/obs/metrics.py",
                    lineno,
                    f"dead per-vertex dimension: vertex_{dimension!r} is declared "
                    "in VERTEX_COUNTERS but never incremented outside repro.obs",
                )
        for phase, lineno in sorted(phases.items()):
            if phase not in seen_phases:
                yield self.finding(
                    "src/repro/obs/metrics.py",
                    lineno,
                    f"dead phase: {phase!r} is declared in PHASES but never "
                    "recorded by any span site",
                )

    # -- event literals -------------------------------------------------
    def _check_event_literal(self, module, node: ast.Dict, schemas, seen_events):
        event_name = None
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "event"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                event_name = value.value
                break
        if event_name is None:
            return
        if event_name not in schemas:
            yield self.finding(
                module.relpath,
                node.lineno,
                f"emission of unknown event {event_name!r}: not in "
                "repro.obs.schema.EVENT_SCHEMAS",
            )
            return
        seen_events.add(event_name)
        _lineno, required, optional = schemas[event_name]
        allowed = required | optional | _IMPLICIT_FIELDS
        for key in node.keys:
            # Non-constant keys (e.g. a ``**{...}`` expansion, encoded as a
            # None key) cannot be checked statically; skip them.
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                if key.value not in allowed:
                    yield self.finding(
                        module.relpath,
                        key.lineno,
                        f"event {event_name!r} has no field {key.value!r} in its "
                        "schema (add it to EVENT_SCHEMAS or drop it)",
                    )

    # -- counter increments ---------------------------------------------
    def _check_counter_increment(
        self, module, node: ast.AugAssign, counters, vertex_counters, seen_counters, seen_vertex
    ):
        target = node.target
        if isinstance(target, ast.Attribute):
            name = target.attr
            if name in counters:
                seen_counters.add(name)
            elif name.startswith("prune_") or name in _BARE_COUNTER_NAMES:
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"increment of undeclared counter {name!r}: not a slot in "
                    "repro.obs.metrics.COUNTERS",
                )
        elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Attribute):
            name = target.value.attr
            if not name.startswith("vertex_"):
                return
            dimension = name[len("vertex_") :]
            if dimension in vertex_counters:
                seen_vertex.add(dimension)
            else:
                yield self.finding(
                    module.relpath,
                    node.lineno,
                    f"increment of undeclared per-vertex dimension {name!r}: "
                    f"{dimension!r} is not in repro.obs.metrics.VERTEX_COUNTERS",
                )

    # -- phase names ----------------------------------------------------
    def _check_phase_name(self, module, node: ast.Call, phases, seen_phases):
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in ("record_span", "span")):
            return
        if not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return  # dynamic phase names are forwarded values, not sites
        if first.value in phases:
            seen_phases.add(first.value)
        else:
            yield self.finding(
                module.relpath,
                node.lineno,
                f"span records unknown phase {first.value!r}: not in "
                "repro.obs.metrics.PHASES",
            )
