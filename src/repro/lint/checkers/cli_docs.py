"""CLI001 — every CLI flag must appear in the documentation.

``repro``'s flags are the public contract of the reproduction: EXPERIMENTS.md
tells a reader which invocations regenerate which figure, and an
undocumented flag is a feature nobody can discover without reading
argparse setup code.  This checker extracts every ``add_argument`` option
string from ``src/repro/cli.py`` and requires each long flag to occur —
as a word-bounded literal, so ``--metric`` is not satisfied by
``--metrics-out`` — somewhere in README.md, EXPERIMENTS.md, DESIGN.md or
``docs/**/*.md``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..base import Checker, register
from ..context import LintContext
from ..findings import Finding


@register
class CliDocsDriftChecker(Checker):
    id = "CLI001"
    description = (
        "every add_argument flag in src/repro/cli.py must be documented in "
        "README.md / EXPERIMENTS.md / docs/*.md"
    )

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        module = ctx.module("src/repro/cli.py")
        if module is None:
            yield self.finding(
                "src/repro/cli.py", 0, "anchor missing: no CLI module to check"
            )
            return
        flags: dict[str, int] = {}
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    flags.setdefault(arg.value, arg.lineno)
        if not flags:
            return
        corpus = "\n".join(text for _path, text in ctx.doc_corpus())
        for flag, lineno in sorted(flags.items()):
            pattern = re.compile(rf"(?<![\w-]){re.escape(flag)}(?![\w-])")
            if not pattern.search(corpus):
                yield self.finding(
                    module.relpath,
                    lineno,
                    f"CLI flag {flag} is not documented anywhere in README.md, "
                    "EXPERIMENTS.md, DESIGN.md or docs/ — add it to the docs",
                )
