"""FRK001 — nothing unpicklable or parent-bound crosses the fork boundary.

The parallel layer (``extensions/parallel.py``, ``service/batch.py``)
moves work between processes two ways: pre-fork module globals readable
by the child, and pickled traffic — ``Process(...)`` arguments and
everything written to a ``Pipe`` with ``.send(...)``.  Four value
classes must never enter the pickled channel:

- **lambdas** (unpicklable; also silently capture parent state);
- **open sinks** — ``open()`` file handles and stream-holding event
  sinks (``JsonlSink``): the child would inherit a dangling fd or write
  interleaved garbage into the parent's stream;
- **locks** — ``threading.Lock``/``RLock``/``Condition``/``Event``/
  ``Semaphore`` state is meaningless in another process;
- **generator state** — generator expressions and calls to generator
  functions cannot be pickled mid-iteration.

Taint is tracked flow-sensitively per function (assigning a lambda to a
local and sending the local later is the same bug), with provenance in
the finding message.  Additionally, *worker-side* code — any function
reachable (same module) from a ``Process(target=...)`` entry point —
must treat parent globals as read-only: a ``global`` rebind or a store
into a module-level dict only mutates the child's copy-on-write copy,
which is the classic silently-lost-update fork bug.

Scope: modules that import :mod:`multiprocessing` (so repo-shaped
fixture trees are checked identically).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..base import MapReduceChecker, register
from ..context import LintContext, call_name, own_body_walk
from ..findings import Finding
from ..flow.callgraph import CallGraph, FunctionInfo
from ..flow.dataflow import Env, Source, TaintDomain, describe_taint, solve

_LOCK_NAMES = frozenset(
    {"Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore", "Barrier"}
)
_STREAM_SINK_NAMES = frozenset({"JsonlSink"})

#: Pool-style methods whose function+argument payloads are pickled.
_POOL_METHODS = frozenset({"apply", "apply_async", "map", "starmap", "imap", "submit"})


def _imports_multiprocessing(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Import):
            if any(alias.name.split(".")[0] == "multiprocessing" for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".")[0] == "multiprocessing":
                return True
    return False


class _ForkTaintDomain(TaintDomain):
    def __init__(self, info: Optional[FunctionInfo], graph: Optional[CallGraph]) -> None:
        self._info = info
        self._graph = graph

    def call_source(self, call: ast.Call, env: Env) -> Optional[Source]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return Source("open-file", call.lineno, "open() file handle")
            if func.id in _STREAM_SINK_NAMES:
                return Source("open-sink", call.lineno, f"stream-holding {func.id}")
            if func.id in _LOCK_NAMES:
                return Source("lock", call.lineno, f"{func.id}() synchronization primitive")
        elif isinstance(func, ast.Attribute):
            if func.attr in _LOCK_NAMES:
                return Source("lock", call.lineno, f"{func.attr}() synchronization primitive")
            if func.attr in _STREAM_SINK_NAMES:
                return Source("open-sink", call.lineno, f"stream-holding {func.attr}")
        # Calling a local generator function yields pickling-hostile
        # generator state.
        if self._info is not None and self._graph is not None:
            callee = self._graph.resolve_call(self._info, call)
            if callee is not None and callee.is_generator:
                return Source(
                    "generator", call.lineno, f"generator state from {callee.name}()"
                )
        return None

    def lambda_fact(self, expr: ast.Lambda, env: Env):
        return frozenset((Source("lambda", expr.lineno, "lambda"),))

    def comp_fact(self, expr: ast.AST, env: Env):
        fact = super().comp_fact(expr, env)
        if isinstance(expr, ast.GeneratorExp):
            source = Source("generator", expr.lineno, "generator expression")
            fact = self.join2(fact, frozenset((source,)))
        return fact


@register
class ForkSafetyChecker(MapReduceChecker):
    id = "FRK001"
    description = (
        "no lambdas, open sinks, locks, or generator state across the "
        "multiprocessing pickle boundary; workers never mutate parent globals"
    )

    def scan_module(self, ctx: LintContext, module) -> tuple[list[Finding], object]:
        return list(self._scan(ctx, module)), None

    def _scan(self, ctx: LintContext, module) -> Iterable[Finding]:
        if not _imports_multiprocessing(module.tree):
            return
        graph = ctx.call_graph()
        module_globals = self._module_level_names(module.tree)
        worker_roots: list[str] = []
        for info in graph.module_functions(module.relpath):
            yield from self._check_pickle_taint(ctx, module, graph, info)
            worker_roots.extend(self._worker_targets(info.node))
        yield from self._check_worker_globals(
            module, graph, worker_roots, module_globals
        )

    # -- pickled-channel taint ------------------------------------------
    def _check_pickle_taint(self, ctx, module, graph, info: FunctionInfo):
        domain = _ForkTaintDomain(info, graph)
        solution = solve(ctx.cfg(info.node), domain)
        for _block, element, env in solution.iter_elements():
            for call in ast.walk(element.node):
                if not isinstance(call, ast.Call):
                    continue
                yield from self._check_boundary_call(module, domain, call, env)

    def _check_boundary_call(self, module, domain, call: ast.Call, env):
        func = call.func
        payloads: list[tuple[str, ast.AST]] = []
        if isinstance(func, ast.Attribute) and func.attr == "send":
            for arg in call.args:
                payloads.append(("pipe .send() payload", arg))
        elif call_name(call) == "Process":
            for keyword in call.keywords:
                if keyword.arg in ("target", "args", "kwargs"):
                    payloads.append((f"Process {keyword.arg}=", keyword.value))
        elif isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
            for arg in call.args:
                payloads.append((f"pool .{func.attr}() argument", arg))
        for what, expr in payloads:
            fact = domain.eval(expr, env)
            if not fact:
                continue
            yield self.finding(
                module.relpath,
                call.lineno,
                f"unpicklable value crosses the fork boundary via {what}: "
                f"{describe_taint(fact)}",
            )
            break  # one finding per boundary call

    # -- worker-side global mutation ------------------------------------
    @staticmethod
    def _worker_targets(func: ast.AST) -> list[str]:
        """Names passed as ``Process(target=...)`` inside ``func``."""
        roots = []
        for node in own_body_walk(func):
            if isinstance(node, ast.Call) and call_name(node) == "Process":
                for keyword in node.keywords:
                    if keyword.arg == "target" and isinstance(keyword.value, ast.Name):
                        roots.append(keyword.value.id)
        return roots

    @staticmethod
    def _module_level_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
        return names

    def _check_worker_globals(self, module, graph, roots, module_globals):
        if not roots:
            return
        # Worker-reachable set: the target functions plus every
        # same-module function they (transitively) call.
        worker_keys: set = set()
        stack = [
            (module.relpath, root)
            for root in roots
            if (module.relpath, root) in graph.functions
        ]
        edges = graph.edges()
        while stack:
            key = stack.pop()
            if key in worker_keys:
                continue
            worker_keys.add(key)
            for callee in edges.get(key, ()):
                if callee[0] == module.relpath:
                    stack.append(callee)
        for key in sorted(worker_keys):
            info = graph.functions[key]
            declared_global = {
                name
                for node in own_body_walk(info.node)
                if isinstance(node, ast.Global)
                for name in node.names
            }
            for node in own_body_walk(info.node):
                targets: list[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    yield from self._flag_global_store(
                        module, info, node, target, declared_global, module_globals
                    )

    def _flag_global_store(
        self, module, info, stmt, target, declared_global, module_globals
    ):
        if isinstance(target, ast.Name) and target.id in declared_global:
            yield self.finding(
                module.relpath,
                stmt.lineno,
                f"worker-side function {info.qualname!r} rebinds module global "
                f"{target.id!r}: the write only lands in the forked child's "
                "copy — return results over the pipe instead",
            )
        elif (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in module_globals
        ):
            yield self.finding(
                module.relpath,
                stmt.lineno,
                f"worker-side function {info.qualname!r} mutates module-level "
                f"container {target.value.id!r}: parent globals are read-only "
                "after fork — return results over the pipe instead",
            )
